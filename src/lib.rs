//! Reproduction of "Automatic Volume Management for Programmable
//! Microfluidics" (PLDI 2008): meta crate re-exporting the full stack.
#![warn(missing_docs)]

pub use aqua_ais as ais;
pub use aqua_assays as assays;
pub use aqua_compiler as compiler;
pub use aqua_dag as dag;
pub use aqua_lang as lang;
pub use aqua_lp as lp;
pub use aqua_rational as rational;
pub use aqua_sim as sim;
pub use aqua_volume as volume;
