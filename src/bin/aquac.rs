//! `aquac` — the AquaCore assay compiler driver.
//!
//! ```text
//! aquac compile <assay-file> [--emit ais|dot|volumes|log] [--machine CAP,LC]
//! aquac run     <assay-file> [--machine CAP,LC] [--yield FRACTION]
//! aquac check   <assay-file>
//! aquac exec    <assay-file> [--machine CAP,LC] [--yield FRACTION]
//!               [--parallel] [--instances N] [--threads N]
//! aquac serve   [--tcp ADDR] [--machine CAP,LC] [--cache-cap N]
//!               [--shards N] [--worker-shards N] [--workers N]
//!               [--queue-cap N] [--max-batch N] [--deadline-ms N]
//!               [--max-deadline-ms N] [--max-line-bytes N]
//!               [--store DIR] [--tenant-inflight N]
//!               [--tenant-queue N] [--obs]
//! aquac replay  record <assay-file> --log DIR [--name NAME]
//!               [--machine CAP,LC] [--runs N] [--seed-base S]
//!               [--fault-rate-ppm P]
//! aquac replay  run --log DIR --assay NAME=FILE [--assay ...]
//!               [--machine CAP,LC] [--threads N] [--obs]
//! ```
//!
//! * `compile` prints the requested artifact (default: AIS assembly);
//! * `run` compiles and executes on the simulated chip, reporting
//!   sensor readings and any constraint violations;
//! * `check` parses, lowers, and runs volume management, reporting how
//!   volumes were resolved (exit code 1 on compile errors);
//! * `exec` reports simulated wet time: sequentially by default, or
//!   under the plan schedule with `--parallel` (the chip gets extra
//!   storage for renaming; results are bit-identical to sequential).
//!   `--instances N` interleaves N copies of the assay on one chip
//!   (`--threads` workers replay them; thread count never changes
//!   results);
//! * `serve` starts the plan-compilation service: one JSON request per
//!   stdin line, one JSON response per stdout line (and the same
//!   protocol on `--tcp ADDR`), with content-addressed plan caching
//!   sharded over `--worker-shards` consistent-hash workers. `--store
//!   DIR` persists every compiled plan to a segment-log store and
//!   rehydrates the caches on restart; `--tenant-inflight` /
//!   `--tenant-queue` bound each tenant's share of the service;
//!   `--max-deadline-ms` and `--max-line-bytes` cap hostile requests.
//!   `--obs` attaches a lock-sharded fleet aggregator: the wire gains
//!   live `{"cmd":"obs.snapshot"}` / `{"cmd":"obs.reset"}` endpoints
//!   (the snapshot is deterministic, byte-stable JSON), and the final
//!   roll-up is printed at EOF;
//! * `replay record` compiles an assay once, executes `--runs` seeded
//!   runs (the recorded originals), and appends one compact run
//!   descriptor per run to the CRC-guarded descriptor log in `--log
//!   DIR`. `replay run` re-opens the log, recovers the intact
//!   descriptor prefix, and replays the whole fleet from cached plans
//!   — no recompilation — printing the order-invariant aggregate
//!   digest, which must equal the recorded one at any `--threads`.
//!
//! `--machine CAP,LC` sets capacity and least count in nanoliters
//! (default `100,0.1` — the paper's hardware).

use std::process::ExitCode;

use aqua_compiler::{compile, CompileOptions, PlannedVolume, VolumeResolution};
use aqua_rational::Ratio;
use aqua_sim::exec::{ExecConfig, Executor};
use aqua_volume::hierarchy::ManagedOutcome;
use aqua_volume::Machine;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("aquac: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    if cmd == "serve" {
        // `serve` takes no assay file; it reads requests from stdin.
        return serve_main(rest);
    }
    if cmd == "exec" {
        return exec_main(rest);
    }
    if cmd == "replay" {
        return replay_main(rest);
    }
    let mut file = None;
    let mut emit = "ais".to_owned();
    let mut machine_spec = "100,0.1".to_owned();
    let mut yield_frac = 0.5f64;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => emit = it.next().ok_or("--emit needs a value")?.clone(),
            "--machine" => machine_spec = it.next().ok_or("--machine needs a value")?.clone(),
            "--yield" => {
                yield_frac = it
                    .next()
                    .ok_or("--yield needs a value")?
                    .parse()
                    .map_err(|_| "--yield must be a number in (0,1]")?
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let file = file.ok_or_else(usage)?;
    let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let machine = parse_machine(&machine_spec)?;

    let out = compile(&src, &machine, &CompileOptions::default()).map_err(|e| e.to_string())?;

    match cmd.as_str() {
        "compile" => match emit.as_str() {
            "ais" => print!("{}", out.program),
            "dot" => print!("{}", out.dag.to_dot(out.program.name())),
            "volumes" => {
                for (i, instr) in out.program.instrs().iter().enumerate() {
                    let note = match out.volume_plan.get(i) {
                        Some(PlannedVolume::Static(pl)) => {
                            format!("{:.1} nl", *pl as f64 / 1000.0)
                        }
                        Some(PlannedVolume::Runtime { partition, .. }) => {
                            format!("run-time (partition {partition})")
                        }
                        Some(PlannedVolume::All) => "all".to_owned(),
                        None => String::new(),
                    };
                    println!("{:<40} {note}", instr.to_string());
                }
            }
            "log" => match &out.resolution {
                VolumeResolution::Static(
                    ManagedOutcome::Solved { log, .. }
                    | ManagedOutcome::NeedsRegeneration { log, .. }
                    | ManagedOutcome::ResourcesExceeded { log, .. },
                ) => {
                    for line in log {
                        println!("{line}");
                    }
                }
                VolumeResolution::Partitioned(plan) => {
                    println!("partitioned into {} run-time stages", plan.partitions.len());
                }
                VolumeResolution::None => println!("volume management skipped"),
            },
            other => return Err(format!("unknown --emit `{other}`")),
        },
        "check" => {
            let how = match &out.resolution {
                VolumeResolution::Static(ManagedOutcome::Solved { volumes, .. }) => {
                    format!("solved statically via {}", volumes.method)
                }
                VolumeResolution::Static(ManagedOutcome::NeedsRegeneration { .. }) => {
                    "compiles, but relies on run-time regeneration".to_owned()
                }
                VolumeResolution::Static(ManagedOutcome::ResourcesExceeded { reason, .. }) => {
                    format!("resources exceeded: {reason}")
                }
                VolumeResolution::Partitioned(plan) => format!(
                    "volumes resolved at run time over {} partitions",
                    plan.partitions.len()
                ),
                VolumeResolution::None => "volume management skipped".to_owned(),
            };
            println!(
                "{}: {} instructions, {} DAG nodes — {how}",
                out.program.name(),
                out.program.len_executable(),
                out.dag.num_nodes()
            );
        }
        "run" => {
            let config = ExecConfig {
                unknown_separation_yield: yield_frac,
                ..ExecConfig::default()
            };
            let report = Executor::new(&machine, config)
                .run(&out)
                .map_err(|e| e.to_string())?;
            for s in &report.sense_results {
                let mut parts: Vec<String> = s
                    .composition
                    .iter()
                    .map(|(k, v)| format!("{k} {:.2} nl", v / 1000.0))
                    .collect();
                parts.sort();
                println!(
                    "{}: {:.2} nl [{}]",
                    s.target,
                    s.volume_pl as f64 / 1000.0,
                    parts.join(", ")
                );
            }
            if report.violations.is_empty() {
                println!("ok: no underflow, no overflow, no deficits");
            } else {
                for v in &report.violations {
                    eprintln!("violation: {v}");
                }
                return Err(format!("{} violations", report.violations.len()));
            }
        }
        other => return Err(format!("unknown command `{other}`\n{}", usage())),
    }
    Ok(())
}

/// Runs `aquac exec`: simulated wet-time reporting, sequential or
/// under the plan schedule (`--parallel`), optionally as a batch of
/// identical instances (`--instances N` on `--threads` workers).
fn exec_main(rest: &[String]) -> Result<(), String> {
    use aqua_serve::canon;
    use aqua_sim::batch_exec::{run_batch, BatchJob, BatchOptions};
    use aqua_sim::sched::{plan, SchedOptions};

    let mut file = None;
    let mut machine_spec = "100,0.1".to_owned();
    let mut yield_frac = 0.5f64;
    let mut parallel = false;
    let mut instances = 1usize;
    let mut threads = 1usize;
    let mut it = rest.iter();
    let next_usize = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<usize, String> {
        it.next()
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} must be a positive integer"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => machine_spec = it.next().ok_or("--machine needs a value")?.clone(),
            "--yield" => {
                yield_frac = it
                    .next()
                    .ok_or("--yield needs a value")?
                    .parse()
                    .map_err(|_| "--yield must be a number in (0,1]")?
            }
            "--parallel" => parallel = true,
            "--instances" => instances = next_usize(&mut it, "--instances")?.max(1),
            "--threads" => threads = next_usize(&mut it, "--threads")?.max(1),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let file = file.ok_or_else(usage)?;
    let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    // Renaming needs storage headroom: physical units stay at the
    // machine's counts, but reservoirs/ports are scaled so episodes of
    // the one virtual unit per class can live side by side.
    let machine = if parallel || instances > 1 {
        parse_machine(&machine_spec)?
            .with_reservoirs(128.max(32 * instances))
            .with_input_ports(64.max(8 * instances))
    } else {
        parse_machine(&machine_spec)?
    };
    let out = compile(&src, &machine, &CompileOptions::default()).map_err(|e| e.to_string())?;
    let config = ExecConfig {
        unknown_separation_yield: yield_frac,
        ..ExecConfig::default()
    };

    if instances > 1 {
        let key = canon::canonicalize(&out.dag, &std::collections::HashMap::new(), &machine)
            .map_err(|e| e.to_string())?
            .key;
        let jobs: Vec<BatchJob> = (0..instances)
            .map(|_| BatchJob {
                out: &out,
                key,
                config: config.clone(),
            })
            .collect();
        let batch = run_batch(
            &machine,
            &jobs,
            &BatchOptions {
                threads,
                ..BatchOptions::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let violations: usize = batch.reports.iter().map(|r| r.violations.len()).sum();
        println!(
            "{} x{instances}: sequential {}s, scheduled {}s ({:.2}x) on {threads} thread(s)",
            out.program.name(),
            batch.sequential_s,
            batch.makespan_s,
            batch.sequential_s as f64 / batch.makespan_s.max(1) as f64,
        );
        println!(
            "schedule: {} unique DAG(s), {} cache hits, {} spills, {} carries, digest {:016x}{}",
            batch.unique_keys,
            batch.dag_cache_hits,
            batch.schedule.stats.spills,
            batch.schedule.stats.carries,
            batch.digest,
            if batch.schedule.stats.fallback {
                " (sequential fallback)"
            } else {
                ""
            }
        );
        if violations > 0 {
            return Err(format!("{violations} violations across instances"));
        }
        println!("ok: {instances} instances, no violations");
        return Ok(());
    }

    if parallel {
        let sched = plan(&out, &machine, &SchedOptions::default());
        let run = Executor::new(&machine, config)
            .run_scheduled(&out, &sched)
            .map_err(|e| e.to_string())?;
        println!(
            "{}: sequential {}s, scheduled {}s ({:.2}x), critical path {}s{}",
            out.program.name(),
            sched.sequential_s,
            sched.makespan_s,
            sched.sequential_s as f64 / sched.makespan_s.max(1) as f64,
            sched.critical_path_s,
            if sched.stats.fallback {
                " (sequential fallback)"
            } else {
                ""
            }
        );
        for u in &sched.utilization {
            if u.slots > 0 && u.busy_slot_s > 0 {
                println!(
                    "  {}: {}/{} slots peak, {:.1}% busy",
                    u.class,
                    u.peak,
                    u.slots,
                    u.util_permille as f64 / 10.0
                );
            }
        }
        report_exec(&run.report)
    } else {
        let report = Executor::new(&machine, config)
            .run(&out)
            .map_err(|e| e.to_string())?;
        println!("{}: {}s wet time", out.program.name(), report.wet_seconds);
        report_exec(&report)
    }
}

/// Prints an execution report's sense set and violation status.
fn report_exec(report: &aqua_sim::exec::ExecReport) -> Result<(), String> {
    for s in &report.sense_results {
        println!("{}: {:.2} nl", s.target, s.volume_pl as f64 / 1000.0);
    }
    if report.violations.is_empty() {
        println!("ok: no underflow, no overflow, no deficits");
        Ok(())
    } else {
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        Err(format!("{} violations", report.violations.len()))
    }
}

/// Runs `aquac serve`: NDJSON plan service on stdin (+ optional TCP).
fn serve_main(rest: &[String]) -> Result<(), String> {
    use aqua_serve::{serve_stdin, spawn_tcp, Service, ServiceConfig};

    let mut config = ServiceConfig::default();
    let mut tcp_addr: Option<String> = None;
    let mut with_obs = false;
    let mut it = rest.iter();
    let next_usize = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<usize, String> {
        it.next()
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} must be a non-negative integer"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tcp" => tcp_addr = Some(it.next().ok_or("--tcp needs an address")?.clone()),
            "--machine" => {
                config.machine = parse_machine(it.next().ok_or("--machine needs a value")?)?;
            }
            "--cache-cap" => config.cache_capacity = next_usize(&mut it, "--cache-cap")?,
            "--shards" => config.cache_shards = next_usize(&mut it, "--shards")?,
            "--worker-shards" => config.worker_shards = next_usize(&mut it, "--worker-shards")?,
            "--workers" => config.solver_threads = next_usize(&mut it, "--workers")?,
            "--queue-cap" => config.queue_capacity = next_usize(&mut it, "--queue-cap")?,
            "--max-batch" => config.max_batch = next_usize(&mut it, "--max-batch")?,
            "--deadline-ms" => {
                config.default_deadline_ms = next_usize(&mut it, "--deadline-ms")? as u64;
            }
            "--max-deadline-ms" => {
                config.max_deadline_ms = next_usize(&mut it, "--max-deadline-ms")? as u64;
            }
            "--max-line-bytes" => {
                config.max_line_bytes = next_usize(&mut it, "--max-line-bytes")?;
            }
            "--store" => {
                let dir = it.next().ok_or("--store needs a directory")?;
                config.store = Some(aqua_serve::StoreConfig::at(dir));
            }
            "--tenant-inflight" => {
                config.tenant_max_inflight = next_usize(&mut it, "--tenant-inflight")?;
            }
            "--tenant-queue" => {
                config.tenant_max_queued = next_usize(&mut it, "--tenant-queue")?;
            }
            "--tenant-sessions" => {
                config.tenant_max_sessions = next_usize(&mut it, "--tenant-sessions")?;
            }
            "--obs" => with_obs = true,
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    // `--obs` attaches one lock-sharded fleet aggregator as both the
    // service's recording sink and its live wire endpoint, so
    // `obs.snapshot` over NDJSON and the EOF roll-up render the same
    // byte-stable JSON.
    let fleet_sink = if with_obs {
        let sink = std::sync::Arc::new(aqua_obs::fleet::FleetSink::new());
        config.obs = aqua_obs::Obs::with_sink(sink.clone());
        config.fleet = Some(sink.clone());
        Some(sink)
    } else {
        None
    };

    let service = std::sync::Arc::new(Service::try_new(config).map_err(|e| e.to_string())?);
    if let Some(addr) = tcp_addr {
        let (local, _accept) =
            spawn_tcp(std::sync::Arc::clone(&service), &addr).map_err(|e| e.to_string())?;
        eprintln!("aquac serve: listening on {local}");
    }
    serve_stdin(&service).map_err(|e| e.to_string())?;
    if let Some(sink) = fleet_sink {
        eprintln!("{}", sink.snapshot().to_json());
    }
    Ok(())
}

/// Runs `aquac replay record|run`: the fleet-scale deterministic
/// replay front end over the CRC-guarded descriptor log.
fn replay_main(rest: &[String]) -> Result<(), String> {
    use aqua_sim::replay::{replay, run_one, DescriptorLog, PlanSet, ReplayOptions, RunDescriptor};

    let (mode, rest) = rest
        .split_first()
        .ok_or("replay needs a mode: record or run")?;
    let next_u64 = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<u64, String> {
        it.next()
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} must be a non-negative integer"))
    };
    match mode.as_str() {
        "record" => {
            let mut file = None;
            let mut log_dir = None;
            let mut name = None;
            let mut machine_spec = "100,0.1".to_owned();
            let mut runs = 100u64;
            let mut seed_base = 1u64;
            let mut fault_rate_ppm = 0u64;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--log" => log_dir = Some(it.next().ok_or("--log needs a directory")?.clone()),
                    "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
                    "--machine" => {
                        machine_spec = it.next().ok_or("--machine needs a value")?.clone()
                    }
                    "--runs" => runs = next_u64(&mut it, "--runs")?.max(1),
                    "--seed-base" => seed_base = next_u64(&mut it, "--seed-base")?,
                    "--fault-rate-ppm" => {
                        fault_rate_ppm = next_u64(&mut it, "--fault-rate-ppm")?;
                        if fault_rate_ppm > 1_000_000 {
                            return Err("--fault-rate-ppm must be at most 1000000".into());
                        }
                    }
                    other if !other.starts_with('-') && file.is_none() => {
                        file = Some(other.to_owned())
                    }
                    other => return Err(format!("unknown argument `{other}`\n{}", usage())),
                }
            }
            let file = file.ok_or_else(usage)?;
            let log_dir = log_dir.ok_or("replay record needs --log DIR")?;
            let name = name.unwrap_or_else(|| {
                std::path::Path::new(&file)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| file.clone())
            });
            let machine = parse_machine(&machine_spec)?;
            let src =
                std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let out =
                compile(&src, &machine, &CompileOptions::default()).map_err(|e| e.to_string())?;
            let mut plans = PlanSet::new();
            plans.insert(name.clone(), machine, out);

            let (mut log, existing, _) = DescriptorLog::open(DescriptorLog::config(&log_dir))
                .map_err(|e| format!("cannot open descriptor log: {e}"))?;
            let mut aggregate = 0u64;
            for i in 0..runs {
                let d = if fault_rate_ppm == 0 {
                    RunDescriptor::new(name.clone(), seed_base + i)
                } else {
                    RunDescriptor::faulted(name.clone(), seed_base + i, fault_rate_ppm as u32)
                };
                let (_, digest) = run_one(&plans, &d, aqua_obs::Obs::off())
                    .map_err(|e| format!("recorded run {i} failed: {e}"))?;
                aggregate = aggregate.wrapping_add(digest);
                log.append(&d)
                    .map_err(|e| format!("cannot append descriptor: {e}"))?;
            }
            println!(
                "recorded {runs} run(s) of {name} into {log_dir} ({} total descriptors), \
                 digest sum {aggregate:016x}",
                existing.len() as u64 + runs
            );
            Ok(())
        }
        "run" => {
            let mut log_dir = None;
            let mut machine_spec = "100,0.1".to_owned();
            let mut threads = 1usize;
            let mut with_obs = false;
            let mut bindings: Vec<(String, String)> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--log" => log_dir = Some(it.next().ok_or("--log needs a directory")?.clone()),
                    "--machine" => {
                        machine_spec = it.next().ok_or("--machine needs a value")?.clone()
                    }
                    "--threads" => threads = next_u64(&mut it, "--threads")?.max(1) as usize,
                    "--obs" => with_obs = true,
                    "--assay" => {
                        let spec = it.next().ok_or("--assay needs NAME=FILE")?;
                        let (n, f) = spec.split_once('=').ok_or("--assay expects NAME=FILE")?;
                        bindings.push((n.to_owned(), f.to_owned()));
                    }
                    other => return Err(format!("unknown argument `{other}`\n{}", usage())),
                }
            }
            let log_dir = log_dir.ok_or("replay run needs --log DIR")?;
            let machine = parse_machine(&machine_spec)?;
            let mut plans = PlanSet::new();
            for (n, f) in &bindings {
                let src =
                    std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
                let out = compile(&src, &machine, &CompileOptions::default())
                    .map_err(|e| format!("{n}: {e}"))?;
                plans.insert(n.clone(), machine.clone(), out);
            }
            let (_log, descriptors, report) = DescriptorLog::open(DescriptorLog::config(&log_dir))
                .map_err(|e| format!("cannot open descriptor log: {e}"))?;
            if report.torn_records > 0 || report.truncated_bytes > 0 {
                eprintln!(
                    "aquac replay: recovered {} descriptor(s); dropped {} torn record(s), \
                     truncated {} byte(s)",
                    report.records, report.torn_records, report.truncated_bytes
                );
            }
            let fleet_sink =
                with_obs.then(|| std::sync::Arc::new(aqua_obs::fleet::FleetSink::new()));
            let options = ReplayOptions {
                threads,
                obs: fleet_sink
                    .as_ref()
                    .map(|s| aqua_obs::Obs::with_sink(s.clone() as _))
                    .unwrap_or_default(),
                keep_digests: false,
            };
            let fleet = replay(&plans, &descriptors, &options).map_err(|e| e.to_string())?;
            println!(
                "replayed {} run(s) on {threads} thread(s): aggregate digest {:016x}",
                fleet.runs, fleet.aggregate_digest
            );
            println!(
                "conservation violations {}, unrecovered {}, residual violations {}, \
                 faults {}, recovery [redispense {}, regenerate {}, replan {}, trims {}]",
                fleet.conservation_violations,
                fleet.unrecovered_faults,
                fleet.residual_violations,
                fleet.faults_injected,
                fleet.recovery.redispense,
                fleet.recovery.regenerate,
                fleet.recovery.replan,
                fleet.recovery.overflow_trims,
            );
            if let Some(sink) = fleet_sink {
                println!("{}", sink.snapshot().to_json());
            }
            if fleet.conservation_violations > 0 || fleet.unrecovered_faults > 0 {
                return Err("replay surfaced conservation violations or unrecovered faults".into());
            }
            Ok(())
        }
        other => Err(format!("unknown replay mode `{other}`\n{}", usage())),
    }
}

fn parse_machine(spec: &str) -> Result<Machine, String> {
    let (cap, lc) = spec
        .split_once(',')
        .ok_or("--machine expects CAP,LC in nanoliters")?;
    let cap: Ratio = cap
        .trim()
        .parse()
        .map_err(|e| format!("bad capacity: {e}"))?;
    let lc: Ratio = lc
        .trim()
        .parse()
        .map_err(|e| format!("bad least count: {e}"))?;
    Machine::new(cap, lc).map_err(|e| e.to_string())
}

fn usage() -> String {
    "usage: aquac <compile|run|check> <assay-file> \
     [--emit ais|dot|volumes|log] [--machine CAP,LC] [--yield F]\n   \
     or: aquac exec <assay-file> [--machine CAP,LC] [--yield F] \
     [--parallel] [--instances N] [--threads N]\n   \
     or: aquac serve [--tcp ADDR] [--machine CAP,LC] [--cache-cap N] \
     [--shards N] [--worker-shards N] [--workers N] [--queue-cap N] \
     [--max-batch N] [--deadline-ms N] [--max-deadline-ms N] \
     [--max-line-bytes N] [--store DIR] [--tenant-inflight N] \
     [--tenant-queue N] [--tenant-sessions N] [--obs]\n   \
     or: aquac replay record <assay-file> --log DIR [--name NAME] \
     [--machine CAP,LC] [--runs N] [--seed-base S] [--fault-rate-ppm P]\n   \
     or: aquac replay run --log DIR --assay NAME=FILE [--assay ...] \
     [--machine CAP,LC] [--threads N] [--obs]"
        .to_owned()
}
