// Compiled only with the `proptests` feature, alongside the other
// dependency-free property suites that `scripts/ci.sh` runs.
#![cfg(feature = "proptests")]

//! Pinned regression corpus for `tests/proptest_volume.rs`.
//!
//! The committed `tests/proptest_volume.proptest-regressions` file
//! records the shrunken counterexamples proptest found historically —
//! but that file only replays when the (unvendorable, off-by-default)
//! `proptest-tests` feature is on, so the corpus had drifted into
//! dead weight: CI never re-ran the cases. This suite pins each corpus
//! entry as a plain deterministic test, replicating the property body
//! it once falsified, so every CI run replays the exact historical
//! failure inputs with no proptest dependency at all.
//!
//! When a future proptest run appends a new `cc` line to the corpus
//! file, mirror it here as a new `#[test]`.

use aqua_assays::synthetic::{self, LayeredConfig};
use aqua_dag::{NodeKind, Ratio};
use aqua_volume::{cascade, dagsolve, Machine};

/// Corpus entry 1: `(seed, cfg) = (0, LayeredConfig { inputs: 3,
/// layers: 1, width: 2, fanin: 2, max_part: 1 })` — the shrunken DAG
/// that once violated the paper's ratio/audit constraints in
/// `dagsolve_satisfies_paper_constraints`.
fn corpus_dag_1() -> aqua_dag::Dag {
    synthetic::layered_dag(
        0,
        &LayeredConfig {
            inputs: 3,
            layers: 1,
            width: 2,
            fanin: 2,
            max_part: 1,
        },
    )
}

/// Replays corpus entry 1 through the `dagsolve_satisfies_paper_constraints`
/// property body: the assignment must audit clean (modulo least-count
/// notes) and hold every mix's in-edge ratio exactly.
#[test]
fn corpus_seed0_dagsolve_satisfies_paper_constraints() {
    let machine = Machine::paper_default();
    let dag = corpus_dag_1();
    dag.validate().expect("corpus DAG is structurally valid");
    let sol = dagsolve::solve(&dag, &machine).expect("corpus DAG solves");
    let problems = sol.audit(&dag, &machine);
    let real: Vec<_> = problems
        .iter()
        .filter(|p| !p.contains("least count"))
        .collect();
    assert!(real.is_empty(), "audit regressions: {real:?}");
    for n in dag.node_ids() {
        if !matches!(dag.node(n).kind, NodeKind::Mix { .. }) {
            continue;
        }
        let total =
            Ratio::checked_sum(dag.in_edges(n).iter().map(|&e| sol.edge_nl(e))).expect("sum");
        if !total.is_positive() {
            continue;
        }
        for &e in dag.in_edges(n) {
            assert_eq!(
                sol.edge_nl(e) / total,
                dag.edge(e).fraction,
                "ratio violated at {}",
                dag.node(n).name
            );
        }
    }
}

/// The same corpus DAG through the Figure 6 hierarchy: a `Solved`
/// outcome must be underflow-free on live, non-excess edges (the
/// `hierarchy_is_total_and_sound` property body).
#[test]
fn corpus_seed0_hierarchy_is_sound() {
    let machine = Machine::paper_default();
    let dag = corpus_dag_1();
    let out = aqua_volume::manage_volumes(&dag, &machine, &Default::default());
    if let aqua_volume::ManagedOutcome::Solved { volumes, dag, .. } = out {
        let lc = machine.least_count_nl();
        for e in dag.edge_ids() {
            if !dag.edge_is_live(e) || dag.node(dag.edge(e).dst).kind == NodeKind::Excess {
                continue;
            }
            let v = volumes.edge_volumes_nl[e.index()];
            assert!(v >= lc, "solved outcome has an underflowing edge: {v} nl");
        }
    }
}

/// Corpus entry 2: `skew = 998001` — the near-10^6 ratio skew that once
/// broke `cascading_preserves_composition`. Cascading the extreme mix
/// must preserve A's final share exactly (1/(skew+1)) and leave no
/// extreme-ratio stage behind.
#[test]
fn corpus_skew998001_cascading_preserves_composition() {
    let machine = Machine::paper_default();
    let skew = 998_001u64;
    let mut dag = synthetic::extreme_ratio_dag(skew);
    let m = dag.find_node("extreme").expect("extreme mix exists");
    let a = dag.find_node("A").expect("input A exists");
    cascade::apply_cascade(&mut dag, m, &machine).expect("cascade applies");
    dag.validate().expect("cascaded DAG validates");
    let mut share = Ratio::ONE;
    let mut cur = m;
    loop {
        let small = dag
            .in_edges(cur)
            .iter()
            .map(|&e| dag.edge(e))
            .min_by(|x, y| x.fraction.cmp(&y.fraction))
            .expect("cascade stage has in-edges")
            .clone();
        share *= small.fraction;
        if small.src == a {
            break;
        }
        cur = small.src;
    }
    assert_eq!(share, Ratio::new(1, skew as i128 + 1).expect("exact share"));
    assert!(
        cascade::find_extreme_mixes(&dag, &machine).is_empty(),
        "cascade left an extreme-ratio stage behind"
    );
}
