//! End-to-end pipeline tests: every benchmark assay compiles to AIS and
//! executes on the simulated chip without violations, with physically
//! correct mixture compositions.

use aqua_assays::Benchmark;
use aqua_compiler::{compile, CompileOptions, VolumeResolution};
use aqua_sim::exec::{ExecConfig, Executor};
use aqua_volume::Machine;

#[test]
fn glucose_compiles_and_executes_cleanly() {
    let machine = Machine::paper_default();
    let out = Benchmark::Glucose.compile(&machine).unwrap();
    assert!(matches!(out.resolution, VolumeResolution::Static(_)));
    let report = Executor::new(&machine, ExecConfig::default())
        .run(&out)
        .unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.sense_results.len(), 5);
    // Physically achieved ratios match the assay within rounding.
    for (slot, want) in [(1, 1.0), (2, 2.0), (3, 4.0), (4, 8.0)] {
        let s = report
            .sense_results
            .iter()
            .find(|s| s.target == format!("Result[{slot}]"))
            .unwrap();
        let got = s.composition["Reagent"] / s.composition["Glucose"];
        assert!(
            (got - want).abs() / want < 0.02,
            "Result[{slot}]: {got} vs {want}"
        );
    }
}

#[test]
fn glycomics_compiles_and_executes_cleanly() {
    let machine = Machine::paper_default();
    let out = Benchmark::Glycomics.compile(&machine).unwrap();
    assert!(matches!(out.resolution, VolumeResolution::Partitioned(_)));
    let report = Executor::new(&machine, ExecConfig::default())
        .run(&out)
        .unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn enzyme_compiles_via_rewrites_and_executes() {
    let machine = Machine::paper_default();
    let out = Benchmark::Enzyme.compile(&machine).unwrap();
    // The hierarchy must have rewritten the DAG (cascade stages appear).
    assert!(out.dag.num_nodes() > 208, "no rewrites applied?");
    let report = Executor::new(&machine, ExecConfig::default())
        .run(&out)
        .unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.sense_results.len(), 64);
    // Spot-check the mildest corner tightly: all 1:1 dilutions mixed
    // 1:1:1 puts each reagent at 1/6 of the final mixture.
    let s = report
        .sense_results
        .iter()
        .find(|s| s.target == "RESULT[1][1][1]")
        .unwrap();
    let share = s.composition["enzyme"] / s.volume_pl as f64;
    assert!(
        (share - 1.0 / 6.0).abs() / (1.0 / 6.0) < 0.02,
        "enzyme share {share} at 1:1"
    );
    // The most extreme corner (all 1:999, so 1/3000 each) accumulates
    // least-count rounding across three cascade stages; it stays within
    // a factor of ~1.5 of nominal — the imprecision the paper's §3.2
    // notes the chemistry tolerates at these scales.
    let s = report
        .sense_results
        .iter()
        .find(|s| s.target == "RESULT[4][4][4]")
        .unwrap();
    let share = s.composition["enzyme"] / s.volume_pl as f64;
    let nominal = 1.0 / 3000.0;
    assert!(
        share > nominal / 1.5 && share < nominal * 1.5,
        "enzyme share {share} vs nominal {nominal}"
    );
}

#[test]
fn enzyme10_compiles_headlessly() {
    // The scaled assay is big (3034 DAG nodes); it must still flow
    // through lowering and codegen without volume management blowing up.
    let machine = Machine::paper_default();
    let out = compile(
        &Benchmark::EnzymeN(10).source(),
        &machine,
        &CompileOptions {
            skip_volume_management: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(out.program.len_executable() > 5000);
}

#[test]
fn all_sources_reparse_from_printed_ais() {
    // The printed AIS of every benchmark round-trips through the
    // assembly parser.
    let machine = Machine::paper_default();
    for b in [Benchmark::Glucose, Benchmark::Glycomics, Benchmark::Enzyme] {
        let out = b.compile(&machine).unwrap();
        let printed = out.program.to_string();
        let reparsed: aqua_ais::Program = printed.parse().unwrap();
        assert_eq!(out.program, reparsed, "{} round-trip", b.name());
    }
}

#[test]
fn tighter_machines_degrade_gracefully() {
    // A coarse machine (least count 1 nl) cannot meter the glucose
    // 1:8 aliquot at full precision but must still compile — either
    // solved (after rewrites) or flagged for regeneration, never a
    // panic.
    let machine = Machine::new(
        aqua_rational::Ratio::from_int(20),
        aqua_rational::Ratio::from_int(1),
    )
    .unwrap();
    let result = compile(
        &Benchmark::Glucose.source(),
        &machine,
        &CompileOptions::default(),
    );
    assert!(result.is_ok(), "{:?}", result.err());
}

#[test]
fn no_volume_management_baseline_differs() {
    let machine = Machine::paper_default();
    let managed = Benchmark::Glucose.compile(&machine).unwrap();
    let baseline = compile(
        &Benchmark::Glucose.source(),
        &machine,
        &CompileOptions {
            skip_volume_management: true,
            ..Default::default()
        },
    )
    .unwrap();
    let managed_static = managed
        .volume_plan
        .entries
        .iter()
        .flatten()
        .filter(|p| matches!(p, aqua_compiler::PlannedVolume::Static(_)))
        .count();
    let baseline_static = baseline
        .volume_plan
        .entries
        .iter()
        .flatten()
        .filter(|p| matches!(p, aqua_compiler::PlannedVolume::Static(_)))
        .count();
    assert!(managed_static > 0);
    assert_eq!(baseline_static, 0);
}

#[test]
fn explicit_outputs_with_weights_shape_production() {
    // Two outputs with 3:1 weights: the chip must collect three times
    // as much of the first product.
    let machine = Machine::paper_default();
    let src = "
ASSAY t START
fluid A, B, heavy, light;
heavy = MIX A AND B IN RATIOS 1 : 1 FOR 10;
light = MIX A AND B IN RATIOS 1 : 2 FOR 10;
OUTPUT heavy WEIGHT 3;
OUTPUT light;
END";
    let out = compile(src, &machine, &CompileOptions::default()).unwrap();
    let report = Executor::new(&machine, ExecConfig::default())
        .run(&out)
        .unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // Dedicated output ports start at op2; collectables in weight order.
    let mut volumes: Vec<u64> = report
        .collected_pl
        .iter()
        .filter(|(&port, _)| port >= 2)
        .map(|(_, &v)| v)
        .collect();
    volumes.sort_unstable();
    assert_eq!(volumes.len(), 2, "{:?}", report.collected_pl);
    let ratio = volumes[1] as f64 / volumes[0] as f64;
    assert!((ratio - 3.0).abs() < 0.05, "weight ratio {ratio}");
}
