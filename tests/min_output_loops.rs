//! §3.5, loop option 2: independent-iteration loops where the
//! programmer specifies *minimum output volumes* instead of an
//! iteration bound. DAGSolve is run in min-output mode on the loop
//! body: the smallest-Vnorm output is pinned to the requirement and
//! everything else scales, giving the per-iteration input volumes.

use std::collections::HashMap;

use aqua_dag::Dag;
use aqua_rational::Ratio;
use aqua_volume::{dagsolve, Machine};

/// A loop body: wash = mix(buffer, sample 3:1), read = sense(wash).
fn loop_body() -> (Dag, aqua_dag::NodeId, aqua_dag::NodeId, aqua_dag::NodeId) {
    let mut d = Dag::new();
    let buffer = d.add_input("buffer");
    let sample = d.add_input("sample");
    let wash = d.add_mix("wash", &[(buffer, 3), (sample, 1)], 10).unwrap();
    let read = d.add_process("read", "sense.OD", wash);
    (d, buffer, sample, read)
}

#[test]
fn min_output_mode_pins_the_requirement() {
    let (dag, buffer, sample, read) = loop_body();
    let machine = Machine::paper_default();
    let mut req = HashMap::new();
    req.insert(read, Ratio::from_int(8)); // 8 nl per iteration
    let sol = dagsolve::solve_min_outputs(&dag, &machine, &req).unwrap();
    assert_eq!(sol.node_nl(read), Ratio::from_int(8));
    // Per-iteration inputs follow the 3:1 ratio of an 8 nl product.
    assert_eq!(sol.node_nl(buffer), Ratio::from_int(6));
    assert_eq!(sol.node_nl(sample), Ratio::from_int(2));
    assert!(sol.underflow.is_none());
}

#[test]
fn iterations_supported_by_one_load_follow_from_the_assignment() {
    // The paper: "as much of the input fluids is produced as possible
    // ... each iteration takes as much as needed from this initial
    // volume". With 100 nl loads and 6/2 nl draws per iteration, the
    // buffer bounds the loop at 16 iterations.
    let (dag, buffer, _, read) = loop_body();
    let machine = Machine::paper_default();
    let mut req = HashMap::new();
    req.insert(read, Ratio::from_int(8));
    let sol = dagsolve::solve_min_outputs(&dag, &machine, &req).unwrap();
    let per_iter = sol.node_nl(buffer);
    let iters = (machine.max_capacity_nl() / per_iter).floor();
    assert_eq!(iters, 16);
}

#[test]
fn unreachable_requirements_are_capacity_capped() {
    let (dag, _, _, read) = loop_body();
    let machine = Machine::paper_default();
    let mut req = HashMap::new();
    req.insert(read, Ratio::from_int(500)); // > capacity
    let sol = dagsolve::solve_min_outputs(&dag, &machine, &req).unwrap();
    // The solver reports the best achievable volume instead of
    // overflowing; callers compare against their requirement.
    assert!(sol.node_nl(read) < Ratio::from_int(500));
    assert!(
        sol.audit(&dag, &machine).is_empty(),
        "{:?}",
        sol.audit(&dag, &machine)
    );
}
