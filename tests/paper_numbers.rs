//! Consolidated paper-vs-measured assertions: every machine-independent
//! number the paper reports must reproduce exactly (they are rational
//! arithmetic, not timings).

use aqua_assays::{figure2, Benchmark};
use aqua_rational::Ratio;
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::unknown::{self, Binding};
use aqua_volume::{cascade, dagsolve, replicate, vnorm, Machine};

fn r(n: i128, d: i128) -> Ratio {
    Ratio::new(n, d).unwrap()
}

fn dag_of(b: Benchmark) -> aqua_dag::Dag {
    let flat = aqua_lang::compile_to_flat(&b.source()).unwrap();
    aqua_compiler::lower_to_dag(&flat).unwrap().0
}

/// Figure 5: the running example's Vnorms and dispensing.
#[test]
fn figure5_exact_numbers() {
    let (dag, f) = figure2::dag();
    let machine = Machine::paper_default();
    let sol = dagsolve::solve(&dag, &machine).unwrap();
    assert_eq!(sol.vnorms.node[f.l.index()], r(11, 15));
    assert_eq!(sol.vnorms.node[f.k.index()], r(2, 3));
    assert_eq!(sol.vnorms.node[f.a.index()], r(2, 15));
    assert_eq!(sol.vnorms.node[f.b.index()], r(46, 45));
    assert_eq!(sol.vnorms.node[f.c.index()], r(38, 45));
    assert_eq!(sol.node_nl(f.b), Ratio::from_int(100));
    assert!(sol.underflow.is_none());
}

/// Figure 3: the running example's LP constraint count (26 incl. the
/// optional output-to-output band) and feasibility.
#[test]
fn figure3_constraint_count() {
    let (dag, _) = figure2::dag();
    let machine = Machine::paper_default();
    let form = lpform::build(&dag, &machine, &LpOptions::rvol());
    assert_eq!(form.num_constraints, 26);
    assert!(aqua_lp::solve(&form.model).status.is_optimal());
}

/// Table 2, "LP constraints" column: Glucose = 49 exactly; the others
/// land in the paper's regime (the paper's exact DAG node accounting
/// for auxiliary fluids is not fully specified).
#[test]
fn table2_constraint_counts() {
    let machine = Machine::paper_default();
    let count = |b: Benchmark| {
        let dag = dag_of(b);
        if unknown::has_unknown_volumes(&dag) {
            let plan = unknown::partition(&dag, &machine).unwrap();
            plan.partitions
                .iter()
                .map(|p| lpform::build(&p.dag, &machine, &LpOptions::rvol()).num_constraints)
                .sum::<usize>()
        } else {
            lpform::build(&dag, &machine, &LpOptions::rvol()).num_constraints
        }
    };
    assert_eq!(count(Benchmark::Glucose), 49); // paper: 49
    let glycomics = count(Benchmark::Glycomics); // paper: 84
    assert!((50..=100).contains(&glycomics), "glycomics {glycomics}");
    let enzyme = count(Benchmark::Enzyme); // paper: 872
    assert!((800..=1100).contains(&enzyme), "enzyme {enzyme}");
    let enzyme10 = count(Benchmark::EnzymeN(10)); // paper: 11258
    assert!((10_000..=16_000).contains(&enzyme10), "enzyme10 {enzyme10}");
}

/// Figure 12: glucose's minimum dispensed volume is 3.3 nl.
#[test]
fn figure12_min_volume() {
    let machine = Machine::paper_default();
    let sol = dagsolve::solve(&dag_of(Benchmark::Glucose), &machine).unwrap();
    let (_, min) = sol.min_edge.unwrap();
    assert_eq!(machine.round_to_least_count(min), r(33, 10));
    assert!(sol.underflow.is_none());
}

/// Figure 13: glycomics partitions — 4 of them, buffer3a split 50/50,
/// X2 constrained input at Vnorm 1/204.
#[test]
fn figure13_partition_numbers() {
    let machine = Machine::paper_default();
    let plan = unknown::partition(&dag_of(Benchmark::Glycomics), &machine).unwrap();
    assert_eq!(plan.partitions.len(), 4);
    let mut statics = Vec::new();
    let mut x2 = false;
    for part in &plan.partitions {
        for (ci, b) in &part.bindings {
            match b {
                Binding::Static { volume_nl } => statics.push(*volume_nl),
                Binding::Runtime { .. } => {
                    if part.vnorms.node[ci.index()] == r(1, 204) {
                        x2 = true;
                    }
                }
            }
        }
    }
    assert_eq!(statics, vec![Ratio::from_int(50); 2]);
    assert!(x2, "X2 Vnorm 1/204 not found");
}

/// Figure 14: the enzyme rescue numbers (9.8 pl -> 65.5 pl -> 196 pl;
/// replication alone 29.5 pl; diluent Vnorm 54 -> 81 -> 27).
#[test]
fn figure14_rescue_numbers() {
    let machine = Machine::paper_default();
    let dag = dag_of(Benchmark::Enzyme);
    let pl = |sol: &aqua_volume::VolumeAssignment| sol.min_edge.unwrap().1.to_f64() * 1000.0;

    let baseline = dagsolve::solve(&dag, &machine).unwrap();
    assert!((pl(&baseline) - 9.83).abs() < 0.1);
    let t = vnorm::compute(&dag).unwrap();
    assert!((t.max_load().to_f64() - 54.22).abs() < 0.05);

    let mut cascaded = dag.clone();
    for node in cascade::find_extreme_mixes(&cascaded, &machine) {
        cascade::apply_cascade(&mut cascaded, node, &machine).unwrap();
    }
    let after_cascade = dagsolve::solve(&cascaded, &machine).unwrap();
    assert!((pl(&after_cascade) - 65.5).abs() < 0.5);
    let t = vnorm::compute(&cascaded).unwrap();
    assert!((t.max_load().to_f64() - 81.44).abs() < 0.05);

    let mut rescued = cascaded.clone();
    let diluent = rescued.find_node("diluent").unwrap();
    replicate::replicate_node(&mut rescued, diluent, 3, &machine).unwrap();
    let done = dagsolve::solve(&rescued, &machine).unwrap();
    assert!((pl(&done) - 196.0).abs() < 2.0);
    assert!(done.underflow.is_none());
    let t = vnorm::compute(&rescued).unwrap();
    assert!((t.max_load().to_f64() - 27.15).abs() < 0.05);

    let mut repl_only = dag.clone();
    let diluent = repl_only.find_node("diluent").unwrap();
    replicate::replicate_node(&mut repl_only, diluent, 3, &machine).unwrap();
    let partial = dagsolve::solve(&repl_only, &machine).unwrap();
    assert!((pl(&partial) - 29.5).abs() < 0.5);
    assert!(partial.underflow.is_some());
}

/// §4.2: mean RVol -> IVol rounding error stays under the paper's 2%.
#[test]
fn rounding_error_under_two_percent() {
    let machine = Machine::paper_default();
    for b in [Benchmark::Glucose, Benchmark::Enzyme] {
        let dag = dag_of(b);
        let sol = dagsolve::solve(&dag, &machine).unwrap();
        let rounded = aqua_volume::round::round_assignment(&dag, &machine, &sol);
        assert!(
            rounded.mean_ratio_error < r(2, 100),
            "{}: mean error {}",
            b.name(),
            rounded.mean_ratio_error
        );
    }
}

/// Table 2, regeneration column: the paper's shape — glucose needs a
/// handful, enzyme an order of magnitude more, Enzyme10 an order more
/// again; with successful volume management the count is zero by
/// construction (non-deficit).
#[test]
fn regeneration_counts_shape() {
    use aqua_sim::regen::{count_regenerations, RegenConfig};
    let machine = Machine::paper_default();
    let cfg = RegenConfig::default();
    let glucose = count_regenerations(&dag_of(Benchmark::Glucose), &machine, &cfg);
    let enzyme = count_regenerations(&dag_of(Benchmark::Enzyme), &machine, &cfg);
    let enzyme10 = count_regenerations(&dag_of(Benchmark::EnzymeN(10)), &machine, &cfg);
    assert!(glucose.regenerations >= 1 && glucose.regenerations <= 10);
    assert!(enzyme.regenerations > 10 * glucose.regenerations);
    assert!(enzyme10.regenerations > 5 * enzyme.regenerations);
}

/// Golden regression: Table 2's regeneration column, pinned to the
/// exact counts this reproduction computes (the paper reports the same
/// shape; these exact values guard the regeneration engine itself —
/// any drift means the baseline executor changed behavior).
#[test]
fn golden_regeneration_counts() {
    use aqua_sim::regen::{count_regenerations, RegenConfig};
    let machine = Machine::paper_default();
    let cfg = RegenConfig::default();
    let count = |b: Benchmark| count_regenerations(&dag_of(b), &machine, &cfg).regenerations;
    assert_eq!(count(Benchmark::Glucose), 5);
    assert_eq!(count(Benchmark::Glycomics), 1);
    assert_eq!(count(Benchmark::Enzyme), 140);
    assert_eq!(count(Benchmark::EnzymeN(10)), 2076);
}

/// Golden regression: the LP objective values recorded in
/// `BENCH_lp.json` (RVol formulation, least-count units). Exact
/// rational pipelines feed the solver, so these reproduce to within
/// float round-off; a bigger drift means the formulation or the
/// simplex backend changed.
#[test]
fn golden_lp_objectives_match_bench_lp_json() {
    let machine = Machine::paper_default();
    let opts = LpOptions::rvol();
    let objective = |dag: &aqua_dag::Dag| {
        let form = lpform::build(dag, &machine, &opts);
        match aqua_lp::solve(&form.model).status {
            aqua_lp::Status::Optimal(sol) => sol.objective,
            other => panic!("expected optimal, got {other:?}"),
        }
    };
    let (fig2, _) = figure2::dag();
    assert!((objective(&fig2) - 1970.588235294118).abs() < 1e-6);
    assert!((objective(&dag_of(Benchmark::Glucose)) - 1514.195583596214).abs() < 1e-6);
    // Glycomics solves per partition: four partitions, each driving its
    // most loaded node to the full 1000-least-count capacity.
    let plan = unknown::partition(&dag_of(Benchmark::Glycomics), &machine).unwrap();
    assert_eq!(plan.partitions.len(), 4);
    for part in &plan.partitions {
        assert!((objective(&part.dag) - 1000.0).abs() < 1e-6);
    }
    // Enzyme10's plain RVol LP is infeasible (the extreme dilution
    // chain outruns the machine span) — the paper's motivation for
    // cascading; BENCH_lp.json records "infeasible" for it.
    let form = lpform::build(&dag_of(Benchmark::EnzymeN(10)), &machine, &opts);
    assert!(matches!(
        aqua_lp::solve(&form.model).status,
        aqua_lp::Status::Infeasible
    ));
}

/// Enzyme10's raw RVol LP is *expectedly* infeasible on the paper's
/// default machine — the 1:5000-grade dilution chains outrun the
/// machine span — and that infeasibility is precisely what drives the
/// Fig. 6 escalation. This pins the whole path: round 0 DAGSolve
/// underflows and the LP agrees (infeasible), cascading rewrites all 21
/// extreme mixes (7 stages each for Inhibitor/Enzyme/Substrate), round
/// 1 still underflows, and replication is blocked by the 32-reservoir
/// budget, so compilation ends in ResourcesExceeded. Any drift here
/// means the escalation logic — not just a solver — changed.
#[test]
fn enzyme10_escalation_path_is_pinned() {
    use aqua_volume::{manage_volumes, ManagedOutcome, VolumeManagerOptions};
    let machine = Machine::paper_default();
    let dag = dag_of(Benchmark::EnzymeN(10));
    let (obs, sink) = aqua_obs::Obs::recording();
    let out = manage_volumes(
        &dag,
        &machine,
        &VolumeManagerOptions {
            obs,
            ..Default::default()
        },
    );
    let log = match &out {
        ManagedOutcome::ResourcesExceeded { reason, log } => {
            assert!(
                reason.contains("reservoirs"),
                "expected a reservoir-budget failure, got: {reason}"
            );
            log
        }
        other => panic!("expected ResourcesExceeded, got {other:?}"),
    };
    // The LP verdict appears in both rounds: infeasible is the signal
    // that escalates, not an error.
    assert!(log.iter().any(|l| l == "round 0: LP infeasible"), "{log:?}");
    assert!(log.iter().any(|l| l == "round 1: LP infeasible"), "{log:?}");
    assert!(
        log.iter().any(|l| l.contains("replication blocked")),
        "{log:?}"
    );

    let report = aqua_obs::export::ObsReport::from_sink(&sink);
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    // 21 cascades: Diluted_{Inhibitor,Enzyme,Substrate}[4..=10].
    assert_eq!(counter("vol.cascade_rewrites"), 21);
    // Two LP fallback attempts (round 0 and round 1); both verdicts
    // come from the exact infeasibility pre-check, so no simplex
    // backend is ever dispatched.
    assert_eq!(counter("vol.lp_fallbacks"), 2);
    assert_eq!(counter("vol.precheck_infeasible"), 2);
    assert_eq!(counter("lp.backend_chosen.sparse"), 0);
    assert_eq!(counter("lp.backend_chosen.dense"), 0);
}

/// §4.3: DAGSolve is significantly faster than LP on every benchmark,
/// and the gap grows with problem size (the paper's ~80x at Enzyme
/// scale, more at Enzyme10 scale).
#[test]
fn dagsolve_beats_lp_with_growing_gap() {
    let machine = Machine::paper_default();
    let time_pair = |b: Benchmark| {
        let dag = dag_of(b);
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            let _ = dagsolve::solve(&dag, &machine);
        }
        let ds = t0.elapsed().as_secs_f64() / 5.0;
        let t0 = std::time::Instant::now();
        let form = lpform::build(&dag, &machine, &LpOptions::rvol());
        let _ = aqua_lp::solve(&form.model);
        let lp = t0.elapsed().as_secs_f64();
        (ds, lp)
    };
    let (ds_e, lp_e) = time_pair(Benchmark::Enzyme);
    assert!(
        lp_e > 3.0 * ds_e,
        "enzyme: LP {lp_e:.6}s vs DAGSolve {ds_e:.6}s"
    );
    let (ds_e6, lp_e6) = time_pair(Benchmark::EnzymeN(6));
    let gap_e = lp_e / ds_e;
    let gap_e6 = lp_e6 / ds_e6;
    assert!(
        gap_e6 > gap_e,
        "gap should grow: enzyme {gap_e:.1}x, enzyme6 {gap_e6:.1}x"
    );
}
