//! Smoke tests for the `aquac` command-line driver.

use std::io::Write;
use std::process::Command;

fn write_assay(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(body.as_bytes()).expect("write");
    path
}

fn aquac(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_aquac"))
        .args(args)
        .output()
        .expect("aquac runs")
}

const DEMO: &str = "
ASSAY demo START
fluid A, B;
VAR R[2];
MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO R[1];
MIX A AND B IN RATIOS 2 : 1 FOR 10;
SENSE OPTICAL it INTO R[2];
END
";

#[test]
fn check_reports_resolution() {
    let path = write_assay("aquac_check.assay", DEMO);
    let out = aquac(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("solved statically via DAGSolve"), "{text}");
}

#[test]
fn compile_emits_parseable_ais() {
    let path = write_assay("aquac_compile.assay", DEMO);
    let out = aquac(&["compile", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let prog: aqua_ais::Program = text.parse().expect("emitted AIS parses");
    assert_eq!(prog.name(), "demo");
}

#[test]
fn compile_emits_dot() {
    let path = write_assay("aquac_dot.assay", DEMO);
    let out = aquac(&["compile", path.to_str().unwrap(), "--emit", "dot"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"));
}

#[test]
fn run_executes_cleanly() {
    let path = write_assay("aquac_run.assay", DEMO);
    let out = aquac(&["run", path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ok: no underflow"));
    assert!(text.contains("R[1]"));
}

#[test]
fn custom_machine_changes_volumes() {
    let path = write_assay("aquac_machine.assay", DEMO);
    let out = aquac(&[
        "compile",
        path.to_str().unwrap(),
        "--machine",
        "20,0.5",
        "--emit",
        "volumes",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Capacity 20 nl: no transfer may exceed it.
    assert!(!text.contains("100.0 nl"), "{text}");
}

#[test]
fn bad_input_fails_with_message() {
    let path = write_assay("aquac_bad.assay", "ASSAY broken START\nBOGUS;\nEND");
    let out = aquac(&["check", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line"), "{err}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = aquac(&["check", "/nonexistent/nope.assay"]);
    assert!(!out.status.success());
}
