// Compiled only with the `proptests` feature: the suites are slow-ish
// (hundreds of compile+execute cycles), so the default `cargo test`
// skips them; `scripts/ci.sh` runs them. Unlike `proptest-tests`, no
// vendored dependency is needed — randomness comes from the in-repo
// seeded PRNG, and every assertion message carries the seed, so a
// failure shrinks by replaying that one seed.
#![cfg(feature = "proptests")]

//! Property/invariant tests of the executor under randomized assays
//! and fault plans (DESIGN.md §8):
//!
//! * volume is conserved *exactly* (integer picoliters) on every run,
//!   faulty or not, recovering or not;
//! * a fault-free execution of a `Solved` plan never overflows a
//!   location and never starves;
//! * the same seed reproduces the same run bit-for-bit.

use aqua_assays::synthetic::{self, LayeredConfig};
use aqua_dag::NodeKind;
use aqua_rational::rng::XorShift64Star;
use aqua_sim::{ExecConfig, Executor, FaultPlan, Violation};
use aqua_volume::Machine;

/// Renders a synthetic layered DAG back into assay source (mixes +
/// senses only), the same rendering as `proptest_volume.rs`.
fn render(dag: &aqua_dag::Dag) -> String {
    let mut src = String::from("ASSAY fuzz START\n");
    let inputs: Vec<_> = dag
        .node_ids()
        .filter(|&n| dag.node(n).kind == NodeKind::Input)
        .collect();
    src.push_str("fluid ");
    src.push_str(
        &inputs
            .iter()
            .map(|&n| dag.node(n).name.clone())
            .collect::<Vec<_>>()
            .join(", "),
    );
    src.push_str(";\nfluid ");
    let mixes: Vec<_> = dag
        .node_ids()
        .filter(|&n| matches!(dag.node(n).kind, NodeKind::Mix { .. }))
        .collect();
    src.push_str(
        &mixes
            .iter()
            .map(|&n| dag.node(n).name.clone())
            .collect::<Vec<_>>()
            .join(", "),
    );
    src.push_str(";\n");
    for (i, &m) in mixes.iter().enumerate() {
        let parts: Vec<String> = dag
            .in_edges(m)
            .iter()
            .map(|&e| dag.node(dag.edge(e).src).name.clone())
            .collect();
        let fracs: Vec<String> = dag
            .in_edges(m)
            .iter()
            .map(|&e| dag.edge(e).fraction.numer().to_string())
            .collect();
        let denoms: std::collections::HashSet<i128> = dag
            .in_edges(m)
            .iter()
            .map(|&e| dag.edge(e).fraction.denom())
            .collect();
        let ratio_clause = if denoms.len() == 1 {
            format!(" IN RATIOS {}", fracs.join(" : "))
        } else {
            String::new()
        };
        src.push_str(&format!(
            "{} = MIX {}{} FOR 5;\nSENSE OPTICAL {} INTO R{i};\n",
            dag.node(m).name,
            parts.join(" AND "),
            ratio_clause,
            dag.node(m).name,
        ));
    }
    src.push_str("END\n");
    src
}

/// Draws a random layered-DAG configuration from the seed stream.
fn random_config(rng: &mut XorShift64Star) -> LayeredConfig {
    LayeredConfig {
        inputs: rng.range_u64(2, 5) as usize,
        layers: rng.range_u64(1, 3) as usize,
        width: rng.range_u64(2, 5) as usize,
        fanin: rng.range_u64(2, 3) as usize,
        max_part: rng.range_u64(1, 19),
    }
}

/// Compiles one random assay, or None when the rendering is degenerate
/// (the renderer cannot express every random DAG).
fn random_case(seed: u64, machine: &Machine) -> Option<aqua_compiler::CompileOutput> {
    let mut rng = XorShift64Star::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1));
    let cfg = random_config(&mut rng);
    let dag = synthetic::layered_dag(rng.next_u64(), &cfg);
    dag.validate().ok()?;
    aqua_compiler::compile(&render(&dag), machine, &Default::default()).ok()
}

const CASES: u64 = 64;

#[test]
fn fault_free_runs_conserve_volume_and_respect_capacity() {
    let machine = Machine::paper_default();
    let mut ran = 0;
    for seed in 0..CASES {
        let Some(out) = random_case(seed, &machine) else {
            continue;
        };
        ran += 1;
        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            report.conservation_delta_pl(),
            0,
            "seed {seed}: volume leaked (replay with random_case({seed}, ..))"
        );
        // Capacity: rounding every in-edge of a mix up to a least
        // count independently can legally land a few least counts over
        // the cap (RVol→IVol, §4.2); anything beyond that slack is a
        // real overflow bug.
        let lc_pl = 100;
        let cap_pl = 100_000;
        for v in &report.violations {
            if let Violation::Overflow { volume_pl, loc, .. } = v {
                assert!(
                    *volume_pl <= cap_pl + 4 * lc_pl,
                    "seed {seed}: {loc} at {volume_pl} pl is beyond rounding slack"
                );
            }
        }
        // A Solved compile-time plan must execute without starving.
        if matches!(
            out.resolution,
            aqua_compiler::VolumeResolution::Static(aqua_volume::ManagedOutcome::Solved { .. })
        ) {
            assert!(
                !report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::Deficit { .. })),
                "seed {seed}: solved plan starved: {:?}",
                report.violations
            );
        }
    }
    assert!(ran >= CASES / 4, "renderer rejected too many cases: {ran}");
}

#[test]
fn faulty_runs_conserve_volume_and_stay_total() {
    let machine = Machine::paper_default();
    let mut faulted = 0u64;
    for seed in 0..CASES {
        let Some(out) = random_case(seed, &machine) else {
            continue;
        };
        for (rate, recover) in [(0.1, false), (0.1, true), (0.3, true)] {
            let config = ExecConfig {
                faults: FaultPlan::uniform(seed + 1, rate),
                recover,
                ..ExecConfig::default()
            };
            let report = Executor::new(&machine, config)
                .run(&out)
                .unwrap_or_else(|e| panic!("seed {seed} rate {rate}: {e}"));
            assert_eq!(
                report.conservation_delta_pl(),
                0,
                "seed {seed} rate {rate} recover {recover}: volume leaked"
            );
            faulted += report.faults.total();
            if !recover {
                assert_eq!(
                    report.recovery.total_recovered(),
                    0,
                    "seed {seed}: recovery acted while disabled"
                );
            }
        }
    }
    assert!(faulted > 0, "the fault plans never fired");
}

#[test]
fn same_seed_is_bit_identical() {
    let machine = Machine::paper_default();
    for seed in 0..CASES / 4 {
        let Some(out) = random_case(seed, &machine) else {
            continue;
        };
        let mk = || {
            let config = ExecConfig {
                faults: FaultPlan::uniform(seed * 31 + 7, 0.2),
                recover: true,
                record_trace: true,
                ..ExecConfig::default()
            };
            Executor::new(&machine, config).run(&out).unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.faults, b.faults, "seed {seed}");
        assert_eq!(a.recovery, b.recovery, "seed {seed}");
        assert_eq!(a.trace, b.trace, "seed {seed}");
        let va: Vec<_> = a.sense_results.iter().map(|s| s.volume_pl).collect();
        let vb: Vec<_> = b.sense_results.iter().map(|s| s.volume_pl).collect();
        assert_eq!(va, vb, "seed {seed}");
    }
}
