// Compiled only with the `proptests` feature: each step of each edit
// script pays a full cold compile for the oracle, so the default
// `cargo test` skips the suite; `scripts/ci.sh` runs it. Randomness
// comes from the in-repo seeded PRNG and every assertion message
// carries the seed, so a failure replays from that one seed.
#![cfg(feature = "proptests")]

//! Differential fuzz of the push-mode session layer (DESIGN.md §8.6).
//!
//! Random edit scripts — ratio changes and output-volume changes over
//! the paper assays and synthetic layered DAGs — are pushed through
//! `session.edit`, the returned deltas are chained onto the registered
//! plan, and after *every* step the reconstructed plan must be
//! byte-identical to a cold compile of the identically-edited DAG.
//! A second suite drives many sessions concurrently and checks the
//! final plans are independent of the thread count (1/2/8).

use std::collections::HashMap;
use std::sync::Arc;

use aqua_dag::{Dag, NodeId, NodeKind};
use aqua_rational::rng::XorShift64Star;
use aqua_serve::{apply_delta, compile_plan, Service, ServiceConfig};
use aqua_volume::Machine;

const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

/// Renders a synthetic layered DAG back into assay source (mixes +
/// senses only), the same rendering as `fault_properties.rs`.
fn render(dag: &Dag) -> String {
    let mut src = String::from("ASSAY fuzz START\n");
    let inputs: Vec<_> = dag
        .node_ids()
        .filter(|&n| dag.node(n).kind == NodeKind::Input)
        .collect();
    src.push_str("fluid ");
    src.push_str(
        &inputs
            .iter()
            .map(|&n| dag.node(n).name.clone())
            .collect::<Vec<_>>()
            .join(", "),
    );
    src.push_str(";\nfluid ");
    let mixes: Vec<_> = dag
        .node_ids()
        .filter(|&n| matches!(dag.node(n).kind, NodeKind::Mix { .. }))
        .collect();
    src.push_str(
        &mixes
            .iter()
            .map(|&n| dag.node(n).name.clone())
            .collect::<Vec<_>>()
            .join(", "),
    );
    src.push_str(";\n");
    for (i, &m) in mixes.iter().enumerate() {
        let parts: Vec<String> = dag
            .in_edges(m)
            .iter()
            .map(|&e| dag.node(dag.edge(e).src).name.clone())
            .collect();
        let fracs: Vec<String> = dag
            .in_edges(m)
            .iter()
            .map(|&e| dag.edge(e).fraction.numer().to_string())
            .collect();
        let denoms: std::collections::HashSet<i128> = dag
            .in_edges(m)
            .iter()
            .map(|&e| dag.edge(e).fraction.denom())
            .collect();
        let ratio_clause = if denoms.len() == 1 {
            format!(" IN RATIOS {}", fracs.join(" : "))
        } else {
            String::new()
        };
        src.push_str(&format!(
            "{} = MIX {}{} FOR 5;\nSENSE OPTICAL {} INTO R{i};\n",
            dag.node(m).name,
            parts.join(" AND "),
            ratio_clause,
            dag.node(m).name,
        ));
    }
    src.push_str("END\n");
    src
}

/// Extracts the raw bytes of a response's *last* JSON member (`plan`
/// or `delta` — both are rendered last on their respective lines).
fn last_member<'a>(line: &'a str, name: &str) -> &'a str {
    let marker = format!(",\"{name}\":");
    let at = line.find(&marker).unwrap_or_else(|| {
        panic!("response has no `{name}` member: {line}");
    });
    &line[at + marker.len()..line.len() - 1]
}

fn lower(src: &str) -> (Dag, HashMap<NodeId, u64>) {
    let flat = aqua_lang::compile_to_flat(src).expect("fuzz assay parses");
    let (dag, map) = aqua_compiler::lower_to_dag(&flat).expect("fuzz assay lowers");
    (dag, map.output_weights)
}

/// One scripted edit, held in *client* DAG space so the same value can
/// be rendered onto the wire and mirrored onto the oracle DAG.
enum Edit {
    Ratio {
        node: NodeId,
        parts: Vec<(NodeId, u64)>,
    },
    Weight {
        node: NodeId,
        weight: u64,
    },
}

/// Mix nodes whose in-edge sources are pairwise distinct *by name* —
/// the wire protocol addresses ratio parts by fluid name, so a mix fed
/// twice by one fluid would be ambiguous on the wire.
fn editable_mixes(dag: &Dag) -> Vec<NodeId> {
    dag.node_ids()
        .filter(|&n| matches!(dag.node(n).kind, NodeKind::Mix { .. }))
        .filter(|&n| {
            let names: std::collections::HashSet<&str> = dag
                .in_edges(n)
                .iter()
                .map(|&e| dag.node(dag.edge(e).src).name.as_str())
                .collect();
            dag.in_edges(n).len() >= 2 && names.len() == dag.in_edges(n).len()
        })
        .collect()
}

fn random_edit(rng: &mut XorShift64Star, dag: &Dag) -> Option<Edit> {
    let mixes = editable_mixes(dag);
    // Weight edits target sinks: `set_output_volume` scales the Vnorm
    // of whatever terminal node carries the weight, `Output`-kind or a
    // terminal sense step (the paper assays lower to the latter).
    let outputs: Vec<NodeId> = dag
        .node_ids()
        .filter(|&n| dag.out_edges(n).is_empty())
        .collect();
    let want_ratio = !mixes.is_empty() && (outputs.is_empty() || rng.next_u64() % 10 < 7);
    if want_ratio {
        let node = mixes[rng.range_u64(0, mixes.len() as u64 - 1) as usize];
        let parts = dag
            .in_edges(node)
            .iter()
            .map(|&e| (dag.edge(e).src, rng.range_u64(1, 9)))
            .collect();
        Some(Edit::Ratio { node, parts })
    } else if !outputs.is_empty() {
        let node = outputs[rng.range_u64(0, outputs.len() as u64 - 1) as usize];
        Some(Edit::Weight {
            node,
            weight: rng.range_u64(1, 4),
        })
    } else {
        None
    }
}

/// Renders an edit as the `"edit"` member of a `session.edit` request.
fn wire_edit(dag: &Dag, edit: &Edit) -> String {
    match edit {
        Edit::Ratio { node, parts } => {
            let pairs: Vec<String> = parts
                .iter()
                .map(|&(src, k)| format!("[{},{k}]", aqua_serve::json::quote(&dag.node(src).name)))
                .collect();
            format!(
                "{{\"set_ratio\":{{\"node\":{},\"parts\":[{}]}}}}",
                aqua_serve::json::quote(&dag.node(*node).name),
                pairs.join(",")
            )
        }
        Edit::Weight { node, weight } => format!(
            "{{\"set_output_volume\":{{\"node\":{},\"weight\":{weight}}}}}",
            aqua_serve::json::quote(&dag.node(*node).name)
        ),
    }
}

/// Mirrors an edit onto the oracle DAG + weight map.
fn apply_mirror(dag: &mut Dag, weights: &mut HashMap<NodeId, u64>, edit: &Edit) {
    match edit {
        Edit::Ratio { node, parts } => {
            aqua_dag::set_mix_ratio(dag, *node, parts).expect("scripted ratio edit is valid");
        }
        Edit::Weight { node, weight } => {
            weights.insert(*node, *weight);
        }
    }
}

/// Registers `src` as a session, drives `steps` seeded edits through
/// the wire, chains every returned delta, and (when `check_cold`)
/// asserts the chained plan equals a cold compile after each step.
/// Returns the final chained plan.
fn run_script(
    svc: &Service,
    tenant: &str,
    src: &str,
    seed: u64,
    steps: usize,
    check_cold: bool,
) -> String {
    let machine = Machine::paper_default();
    let reg = svc.handle_line(&format!(
        "{{\"id\":1,\"cmd\":\"session.register\",\"tenant\":{},\"src\":{}}}",
        aqua_serve::json::quote(tenant),
        aqua_serve::json::quote(src)
    ));
    assert!(
        reg.contains("\"ok\":true"),
        "seed {seed}: register failed: {reg}"
    );
    let v = aqua_serve::json::parse(&reg).expect("register line parses");
    let sid = v
        .get("session")
        .and_then(|s| s.as_str())
        .expect("register carries a session id")
        .to_owned();
    let mut plan = last_member(&reg, "plan").to_owned();

    let (mut dag, mut weights) = lower(src);
    let mut rng = XorShift64Star::new(seed);
    for step in 0..steps {
        let Some(edit) = random_edit(&mut rng, &dag) else {
            break;
        };
        let line = svc.handle_line(&format!(
            "{{\"id\":{},\"cmd\":\"session.edit\",\"session\":\"{sid}\",\"tenant\":{},\"edit\":{}}}",
            step + 2,
            aqua_serve::json::quote(tenant),
            wire_edit(&dag, &edit)
        ));
        assert!(
            line.contains("\"ok\":true"),
            "seed {seed} step {step}: edit failed: {line}"
        );
        let delta = last_member(&line, "delta");
        plan = apply_delta(&plan, delta)
            .unwrap_or_else(|| panic!("seed {seed} step {step}: delta does not apply: {delta}"));

        apply_mirror(&mut dag, &mut weights, &edit);
        if check_cold {
            let canon = aqua_serve::canonicalize(&dag, &weights, &machine)
                .expect("edited DAG canonicalizes");
            let cold = compile_plan(&canon, &machine, &aqua_obs::Obs::off());
            assert_eq!(
                plan, cold,
                "seed {seed} step {step}: incremental plan diverged from cold compile"
            );
        }
    }
    plan
}

fn fuzz_assay(src: &str, seeds: std::ops::Range<u64>, steps: usize) {
    for seed in seeds {
        let svc = Service::new(ServiceConfig::default());
        run_script(&svc, "fuzz", src, seed, steps, true);
    }
}

#[test]
fn paper_assays_incremental_matches_cold_at_every_step() {
    fuzz_assay(TINY, 0..4, 10);
    fuzz_assay(aqua_assays::glucose::SOURCE, 10..13, 8);
    fuzz_assay(aqua_assays::glycomics::SOURCE, 20..23, 8);
    fuzz_assay(&aqua_assays::enzyme::source_n(4), 30..33, 8);
}

#[test]
fn blocked_enzyme10_incremental_matches_cold_at_every_step() {
    // enzyme10 is replication-blocked under the paper machine, so the
    // replay path exercises the blocked (Shape B) trace throughout.
    fuzz_assay(&aqua_assays::enzyme::source_n(10), 40..43, 6);
}

#[test]
fn synthetic_dags_incremental_matches_cold_at_every_step() {
    for seed in 50..56u64 {
        let mut rng = XorShift64Star::new(seed);
        let config = aqua_assays::synthetic::LayeredConfig {
            inputs: rng.range_u64(2, 5) as usize,
            layers: rng.range_u64(1, 3) as usize,
            width: rng.range_u64(2, 4) as usize,
            fanin: 2,
            max_part: 9,
        };
        let dag = aqua_assays::synthetic::layered_dag(seed, &config);
        let src = render(&dag);
        let svc = Service::new(ServiceConfig::default());
        run_script(&svc, "fuzz", &src, seed, 8, true);
    }
}

/// Drives 8 scripted sessions over a shared service with `threads`
/// worker threads and returns the final plan of each script.
fn concurrent_final_plans(threads: usize) -> Vec<String> {
    const WORKERS: usize = 8;
    let svc = Arc::new(Service::new(ServiceConfig {
        tenant_max_sessions: 2,
        ..ServiceConfig::default()
    }));
    let sources: Arc<Vec<String>> = Arc::new(vec![
        TINY.to_owned(),
        aqua_assays::glucose::SOURCE.to_owned(),
        aqua_assays::glycomics::SOURCE.to_owned(),
        aqua_assays::enzyme::source_n(4),
        aqua_assays::enzyme::source_n(10),
        aqua_assays::glucose::SOURCE.to_owned(),
        TINY.to_owned(),
        aqua_assays::enzyme::source_n(4),
    ]);
    let mut handles = Vec::new();
    for t in 0..threads {
        let svc = Arc::clone(&svc);
        let sources = Arc::clone(&sources);
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut w = t;
            while w < WORKERS {
                let tenant = format!("t{w}");
                let plan = run_script(&svc, &tenant, &sources[w], 900 + w as u64, 6, false);
                out.push((w, plan));
                w += threads;
            }
            out
        }));
    }
    let mut plans = vec![String::new(); WORKERS];
    for h in handles {
        for (w, plan) in h.join().expect("worker thread panicked") {
            plans[w] = plan;
        }
    }
    plans
}

#[test]
fn concurrent_sessions_are_deterministic_across_thread_counts() {
    let one = concurrent_final_plans(1);
    let two = concurrent_final_plans(2);
    let eight = concurrent_final_plans(8);
    assert_eq!(one, two, "2-thread run diverged from serial");
    assert_eq!(one, eight, "8-thread run diverged from serial");
}
