// Compiled only with the `proptest-tests` feature: the dependency it
// needs is not vendored, so the default offline build skips it.
#![cfg(feature = "proptest-tests")]

//! Property-based tests of the volume-management invariants on random
//! assay DAGs (DESIGN.md §7).

use aqua_assays::synthetic::{self, LayeredConfig};
use aqua_dag::{NodeKind, Ratio};
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{cascade, dagsolve, Machine};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = (u64, LayeredConfig)> {
    (
        any::<u64>(),
        2usize..6,
        1usize..4,
        2usize..6,
        2usize..4,
        1u64..20,
    )
        .prop_map(|(seed, inputs, layers, width, fanin, max_part)| {
            (
                seed,
                LayeredConfig {
                    inputs,
                    layers,
                    width,
                    fanin,
                    max_part,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DAGSolve assignments always satisfy ratio, capacity, and
    /// non-deficit constraints (audit clean except possibly underflow),
    /// and never overflow by construction.
    #[test]
    fn dagsolve_satisfies_paper_constraints((seed, cfg) in config_strategy()) {
        let machine = Machine::paper_default();
        let dag = synthetic::layered_dag(seed, &cfg);
        prop_assume!(dag.validate().is_ok());
        let sol = dagsolve::solve(&dag, &machine).unwrap();
        let problems = sol.audit(&dag, &machine);
        let real: Vec<_> = problems
            .iter()
            .filter(|p| !p.contains("least count"))
            .collect();
        prop_assert!(real.is_empty(), "{real:?}");
        // Ratio constraints: in-edge volumes of each mix in spec
        // proportion.
        for n in dag.node_ids() {
            if !matches!(dag.node(n).kind, NodeKind::Mix { .. }) {
                continue;
            }
            let total = Ratio::checked_sum(
                dag.in_edges(n).iter().map(|&e| sol.edge_nl(e)),
            )
            .unwrap();
            if !total.is_positive() {
                continue;
            }
            for &e in dag.in_edges(n) {
                prop_assert_eq!(
                    sol.edge_nl(e) / total,
                    dag.edge(e).fraction,
                    "ratio violated at {}",
                    dag.node(n).name
                );
            }
        }
    }

    /// The LP's optimal total output dominates DAGSolve's (DAGSolve is
    /// over-constrained), whenever both succeed.
    #[test]
    fn lp_dominates_dagsolve_total_output((seed, cfg) in config_strategy()) {
        let machine = Machine::paper_default();
        let dag = synthetic::layered_dag(seed, &cfg);
        let Ok(sol) = dagsolve::solve(&dag, &machine) else { return Ok(()) };
        prop_assume!(sol.underflow.is_none());
        let form = lpform::build(&dag, &machine, &LpOptions::rvol());
        let aqua_lp::Status::Optimal(lp_sol) = aqua_lp::solve(&form.model).status else {
            return Ok(());
        };
        let ds_total: f64 = dag
            .node_ids()
            .filter(|&n| dag.out_edges(n).is_empty())
            .map(|n| sol.node_nl(n).to_f64())
            .sum();
        let lp_total = lp_sol.objective * machine.least_count_nl().to_f64();
        prop_assert!(
            lp_total >= ds_total - 1e-4,
            "LP {lp_total} < DAGSolve {ds_total}"
        );
    }

    /// Cascading preserves the final composition of the rewritten mix
    /// exactly and always removes the extreme-ratio infeasibility.
    #[test]
    fn cascading_preserves_composition(skew in 1_001u64..2_000_000) {
        let machine = Machine::paper_default();
        let mut dag = synthetic::extreme_ratio_dag(skew);
        let m = dag.find_node("extreme").unwrap();
        let a = dag.find_node("A").unwrap();
        cascade::apply_cascade(&mut dag, m, &machine).unwrap();
        prop_assert!(dag.validate().is_ok(), "{:?}", dag.validate());
        // Walk the cascade: A's share of the final mix must still be
        // 1/(skew+1).
        let mut share = Ratio::ONE;
        let mut cur = m;
        loop {
            let small = dag
                .in_edges(cur)
                .iter()
                .map(|&e| dag.edge(e))
                .min_by(|x, y| x.fraction.cmp(&y.fraction))
                .unwrap()
                .clone();
            share *= small.fraction;
            if small.src == a {
                break;
            }
            cur = small.src;
        }
        prop_assert_eq!(share, Ratio::new(1, skew as i128 + 1).unwrap());
        // Every stage is now within the machine span.
        prop_assert!(cascade::find_extreme_mixes(&dag, &machine).is_empty());
    }

    /// Rounding to least counts keeps the worst per-edge volume error
    /// within half a least count.
    #[test]
    fn rounding_error_is_bounded((seed, cfg) in config_strategy()) {
        let machine = Machine::paper_default();
        let dag = synthetic::layered_dag(seed, &cfg);
        let Ok(sol) = dagsolve::solve(&dag, &machine) else { return Ok(()) };
        let rounded = aqua_volume::round::round_assignment(&dag, &machine, &sol);
        let half = machine.least_count_nl() / Ratio::from_int(2);
        for e in dag.edge_ids() {
            let err = (rounded.edge_volumes_nl[e.index()]
                - sol.edge_volumes_nl[e.index()])
            .abs();
            prop_assert!(err <= half);
        }
    }

    /// The dispensing scale is maximal: the most loaded node sits
    /// exactly at machine capacity (DAGSolve's "produce as much output
    /// as possible" objective).
    #[test]
    fn dispensing_saturates_capacity((seed, cfg) in config_strategy()) {
        let machine = Machine::paper_default();
        let dag = synthetic::layered_dag(seed, &cfg);
        let Ok(sol) = dagsolve::solve(&dag, &machine) else { return Ok(()) };
        let max_load_nl = dag
            .node_ids()
            .map(|n| sol.vnorms.load[n.index()] * sol.scale_nl)
            .max()
            .unwrap();
        prop_assert_eq!(max_load_nl, machine.max_capacity_nl());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full Figure 6 hierarchy never panics on random DAGs, and a
    /// `Solved` outcome really is underflow-free.
    #[test]
    fn hierarchy_is_total_and_sound((seed, cfg) in config_strategy()) {
        let machine = Machine::paper_default();
        let dag = synthetic::layered_dag(seed, &cfg);
        let out = aqua_volume::manage_volumes(&dag, &machine, &Default::default());
        if let aqua_volume::ManagedOutcome::Solved { volumes, dag, .. } = out {
            let lc = machine.least_count_nl();
            for e in dag.edge_ids() {
                if !dag.edge_is_live(e) {
                    continue;
                }
                if dag.node(dag.edge(e).dst).kind == NodeKind::Excess {
                    continue;
                }
                let v = volumes.edge_volumes_nl[e.index()];
                prop_assert!(
                    v >= lc,
                    "solved outcome has an underflowing edge: {v} nl"
                );
            }
        }
    }

    /// End-to-end totality: random DAG-shaped assays compile and
    /// execute without panicking, whatever the outcome.
    #[test]
    fn compile_and_execute_are_total(seed in 0u64..200) {
        let machine = Machine::paper_default();
        let dag = synthetic::layered_dag(
            seed,
            &LayeredConfig {
                inputs: 3,
                layers: 2,
                width: 3,
                fanin: 2,
                max_part: 12,
            },
        );
        // Render the DAG back into an assay source (mixes only) and run
        // the whole pipeline on it.
        let mut src = String::from("ASSAY fuzz START\n");
        let inputs: Vec<_> = dag
            .node_ids()
            .filter(|&n| dag.node(n).kind == NodeKind::Input)
            .collect();
        src.push_str("fluid ");
        src.push_str(
            &inputs
                .iter()
                .map(|&n| dag.node(n).name.clone())
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(";\nfluid ");
        let mixes: Vec<_> = dag
            .node_ids()
            .filter(|&n| matches!(dag.node(n).kind, NodeKind::Mix { .. }))
            .collect();
        src.push_str(
            &mixes
                .iter()
                .map(|&n| dag.node(n).name.clone())
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(";\n");
        for (i, &m) in mixes.iter().enumerate() {
            let parts: Vec<String> = dag
                .in_edges(m)
                .iter()
                .map(|&e| dag.node(dag.edge(e).src).name.clone())
                .collect();
            let fracs: Vec<String> = dag
                .in_edges(m)
                .iter()
                .map(|&e| dag.edge(e).fraction.numer().to_string())
                .collect();
            // Denominators are shared within a node (normalized), so the
            // numerators are valid integer parts only when denominators
            // agree; fall back to 1:1 otherwise.
            let denoms: std::collections::HashSet<i128> = dag
                .in_edges(m)
                .iter()
                .map(|&e| dag.edge(e).fraction.denom())
                .collect();
            let ratio_clause = if denoms.len() == 1 {
                format!(" IN RATIOS {}", fracs.join(" : "))
            } else {
                String::new()
            };
            src.push_str(&format!(
                "{} = MIX {}{} FOR 5;\nSENSE OPTICAL {} INTO R{i};\n",
                dag.node(m).name,
                parts.join(" AND "),
                ratio_clause,
                dag.node(m).name,
            ));
        }
        src.push_str("END\n");
        let Ok(out) = aqua_compiler::compile(&src, &machine, &Default::default()) else {
            return Ok(()); // some renderings are degenerate; fine
        };
        let report = aqua_sim::exec::Executor::new(
            &machine,
            aqua_sim::exec::ExecConfig::default(),
        )
        .run(&out)
        .expect("execution is total");
        let _ = report;
    }
}
