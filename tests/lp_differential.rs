//! Differential tests for the LP stack on real assay formulations: the
//! default configuration (Auto backend selection + devex pricing) must
//! reproduce exactly what the dense Dantzig tableau — the differential
//! oracle — computes on the four paper assays and on seeded synthetic
//! DAGs. Objectives are compared within 1e-6 (alternative optima can
//! legitimately move vertex coordinates; the optimum value cannot).

use aqua_assays::synthetic::{layered_dag, LayeredConfig};
use aqua_assays::{figure2, Benchmark};
use aqua_lp::{PricingRule, SimplexConfig, SolverBackend, Status};
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::unknown;
use aqua_volume::Machine;

fn dag_of(b: Benchmark) -> aqua_dag::Dag {
    let flat = aqua_lang::compile_to_flat(&b.source()).unwrap();
    aqua_compiler::lower_to_dag(&flat).unwrap().0
}

fn config(backend: SolverBackend, pricing: PricingRule) -> SimplexConfig {
    SimplexConfig {
        backend,
        pricing,
        ..SimplexConfig::default()
    }
}

/// Solves the model under every (backend, pricing) combination and
/// checks they agree with the dense Dantzig oracle; returns the oracle
/// objective if optimal, `None` if all agree the model is infeasible.
fn assert_all_rules_agree(label: &str, model: &aqua_lp::Model) -> Option<f64> {
    let oracle = aqua_lp::solve_with(model, &config(SolverBackend::Dense, PricingRule::Dantzig));
    let candidates = [
        (
            "auto-devex",
            config(SolverBackend::Auto, PricingRule::Devex),
        ),
        (
            "sparse-devex",
            config(SolverBackend::Sparse, PricingRule::Devex),
        ),
        (
            "sparse-dantzig",
            config(SolverBackend::Sparse, PricingRule::Dantzig),
        ),
    ];
    match oracle.status {
        Status::Optimal(ref sol) => {
            let expect = sol.objective;
            let scale = 1.0 + expect.abs();
            for (name, cfg) in candidates {
                match aqua_lp::solve_with(model, &cfg).status {
                    Status::Optimal(s) => assert!(
                        (s.objective - expect).abs() / scale < 1e-6,
                        "{label}/{name}: {} vs oracle {expect}",
                        s.objective
                    ),
                    other => panic!("{label}/{name}: expected optimal, got {other:?}"),
                }
            }
            Some(expect)
        }
        Status::Infeasible => {
            for (name, cfg) in candidates {
                assert!(
                    matches!(aqua_lp::solve_with(model, &cfg).status, Status::Infeasible),
                    "{label}/{name}: oracle says infeasible"
                );
            }
            None
        }
        other => panic!("{label}: oracle status {other:?}"),
    }
}

/// The four paper assays, solved under every pricing/backend rule. The
/// objectives double as goldens (they also live in BENCH_lp.json and
/// tests/paper_numbers.rs); the point here is that the *default* path
/// the hierarchy now takes — Auto dispatch, devex pricing — cannot
/// drift from the oracle on the exact models the paper cares about.
#[test]
fn paper_assays_agree_across_rules() {
    let machine = Machine::paper_default();
    let opts = LpOptions::rvol();

    let (fig2, _) = figure2::dag();
    let form = lpform::build(&fig2, &machine, &opts);
    let obj = assert_all_rules_agree("fig2", &form.model).expect("fig2 is feasible");
    assert!((obj - 1970.588235294118).abs() < 1e-6);

    let form = lpform::build(&dag_of(Benchmark::Glucose), &machine, &opts);
    let obj = assert_all_rules_agree("glucose", &form.model).expect("glucose is feasible");
    assert!((obj - 1514.195583596214).abs() < 1e-6);

    // Glycomics has unknown volumes: solve per partition.
    let plan = unknown::partition(&dag_of(Benchmark::Glycomics), &machine).unwrap();
    assert_eq!(plan.partitions.len(), 4);
    for (i, part) in plan.partitions.iter().enumerate() {
        let form = lpform::build(&part.dag, &machine, &opts);
        let obj = assert_all_rules_agree(&format!("glycomics[{i}]"), &form.model)
            .expect("partition is feasible");
        assert!((obj - 1000.0).abs() < 1e-6);
    }

    // Enzyme10's raw RVol LP is expectedly infeasible (see
    // tests/paper_numbers.rs); every rule must agree on that verdict
    // too — phase 1 also runs under devex pricing.
    let form = lpform::build(&dag_of(Benchmark::EnzymeN(10)), &machine, &opts);
    assert!(assert_all_rules_agree("enzyme10", &form.model).is_none());
}

/// Auto must resolve to the calibrated backend on the paper assays:
/// small formulations stay on the dense tableau, enzyme10-sized ones go
/// sparse.
#[test]
fn paper_assays_resolve_to_expected_backend() {
    let machine = Machine::paper_default();
    let opts = LpOptions::rvol();
    let resolve = |dag: &aqua_dag::Dag| {
        let form = lpform::build(dag, &machine, &opts);
        SolverBackend::Auto.resolve_for(&form.model)
    };
    let (fig2, _) = figure2::dag();
    assert_eq!(resolve(&fig2), SolverBackend::Dense);
    assert_eq!(resolve(&dag_of(Benchmark::Glucose)), SolverBackend::Dense);
    assert_eq!(
        resolve(&dag_of(Benchmark::EnzymeN(10))),
        SolverBackend::Sparse
    );
}

/// Seeded synthetic assays: layered random DAGs of two sizes, plus the
/// stress generators, formulated as RVol LPs and solved under every
/// rule. Covers shapes the paper assays don't (wide fan-in layers,
/// replication-heavy, extreme ratios).
#[test]
fn synthetic_assays_agree_across_rules() {
    let machine = Machine::paper_default();
    let opts = LpOptions::rvol();
    let mut optimal = 0usize;

    for seed in 0..12u64 {
        let dag = layered_dag(seed, &LayeredConfig::default());
        let form = lpform::build(&dag, &machine, &opts);
        if assert_all_rules_agree(&format!("layered[{seed}]"), &form.model).is_some() {
            optimal += 1;
        }
    }
    // Bigger instances cross into sparse territory.
    let big = LayeredConfig {
        inputs: 6,
        layers: 5,
        width: 6,
        fanin: 3,
        ..LayeredConfig::default()
    };
    for seed in 0..4u64 {
        let dag = layered_dag(seed, &big);
        let form = lpform::build(&dag, &machine, &opts);
        if assert_all_rules_agree(&format!("layered-big[{seed}]"), &form.model).is_some() {
            optimal += 1;
        }
    }
    for (label, dag) in [
        ("many-uses", aqua_assays::synthetic::many_uses_dag(40)),
        ("extreme", aqua_assays::synthetic::extreme_ratio_dag(120)),
    ] {
        let form = lpform::build(&dag, &machine, &opts);
        if assert_all_rules_agree(label, &form.model).is_some() {
            optimal += 1;
        }
    }
    // The suite is vacuous if everything came out infeasible.
    assert!(optimal >= 10, "only {optimal} feasible instances");
}
