#!/usr/bin/env bash
# Pre-merge gate. Run from the repo root: scripts/ci.sh
#
# Mirrors what reviewers expect to be green before a PR lands:
#   1. formatting            (cargo fmt --check)
#   2. lints, deny warnings  (cargo clippy --workspace --all-targets)
#   3. tier-1 build + tests  (cargo build --release && cargo test -q)
#   4. rustdoc, deny warnings (cargo doc --no-deps)
#   5. property suites       (cargo test --features proptests)
#   6. LP backend smoke test (bench_lp --quick: sparse/dense/auto
#      agreement, thread-invariant parallel B&B node counts, and the
#      Auto dispatch floor — Auto within 1.1x of the better backend on
#      every assay; retried once because the floor is a wall-clock
#      measurement on a possibly-noisy host)
#      + obs smoke: --obs must produce a non-empty Chrome trace
#   7. fault-recovery smoke  (fault_sweep --quick: 100% recovery at rate 0)
#   8. serve stress suite    (8 threads x 200 requests, deadlock-guarded
#      by `timeout`: a hang is a bug, not a slow test)
#      + front-door regression tests (deadline overflow, accept-loop
#        resilience, bounded request lines) and the store crash-recovery
#        property suite (randomized truncation/corruption + the
#        restart-rehydration smoke)
#   9. serve bench smoke     (bench_serve --quick: warm >= 10x cold,
#      warm plans byte-identical to cold, restart rehydration
#      byte-identical with zero recompiles, and warm-after-restart p50
#      within 10x of in-memory warm — all enforced by the binary itself;
#      plus the field contract the perf trajectory reads)
#  10. scheduler differential suite (scheduled executor bit-identical
#      to sequential on paper assays + seeded synthetics, fault-free
#      and faulted)
#  11. exec bench smoke      (bench_exec --quick: makespan-floor gate —
#      scheduled <= sequential on enzyme10 and the batch — plus
#      thread-invariant batch digests and full fault recovery; the
#      floor is retried once like the auto-floor gate since the run
#      shares the host with whatever else CI is doing)
#  12. replay suites          (replay_differential: recorded digests
#      reproduce at 1/2/8 threads, fault-free and faulted;
#      replay_log_recovery: a damaged descriptor log never replays a
#      divergent or partial run; obs fleet-merge property tests and the
#      obs.snapshot wire byte-identity tests)
#  13. replay bench smoke     (bench_replay --quick: descriptor-log
#      soak with hard gates — run floor met, zero conservation
#      violations, zero unrecovered faults, zero cross-thread digest
#      mismatches, obs.snapshot byte-identical over the wire — all
#      enforced by the binary and re-checked by the greps)
#  14. incremental differential suite (incr_differential: session.edit
#      deltas chained over random edit scripts stay byte-identical to
#      cold compiles at every step, on paper + synthetic assays, and
#      concurrent sessions are thread-count-invariant)
#  15. incr bench smoke        (bench_incr --quick: single-ratio
#      enzyme10 edits >= 10x faster than cold front-door compiles and
#      zero incremental-vs-cold byte divergences — both enforced by the
#      binary and re-checked by the greps)
#
# The smoke runs write their JSON to target/ so they never clobber the
# committed BENCH_lp.json / BENCH_fault.json / BENCH_serve.json /
# BENCH_exec.json / BENCH_replay.json / BENCH_incr.json (regenerate
# those with a full `cargo run --release -p aqua-bench --bin bench_lp`
# / `fault_sweep` / `bench_serve` / `bench_exec` / `bench_replay` /
# `bench_incr`).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> property suites: cargo test -q --features proptests"
cargo test -q --release --features proptests --test fault_properties
# The pinned proptest regression corpus (tests/regression_corpus.rs
# mirrors tests/proptest_volume.proptest-regressions) replays every
# historical counterexample deterministically.
cargo test -q --release --features proptests --test regression_corpus

echo "==> bench_lp --quick (backend agreement + auto floor + obs smoke test)"
# The binary exits nonzero on backend disagreement or divergent parallel
# B&B node counts. The Auto-dispatch floor (auto_ratio <= 1.1x of the
# better backend per assay) is a wall-clock measurement, so one retry is
# allowed before it fails the gate: a single miss on a loaded host is
# noise, two in a row is a dispatch regression.
run_bench_lp() {
  timeout 600 cargo run --release -p aqua-bench --bin bench_lp -- --quick \
    --out target/BENCH_lp.quick.json --obs target/obs_trace.quick.json
}
run_bench_lp
if ! grep -q '"auto_floor_ok": true' target/BENCH_lp.quick.json; then
  echo "warn: Auto missed the 1.1x floor; retrying once" >&2
  run_bench_lp
  grep -q '"auto_floor_ok": true' target/BENCH_lp.quick.json || {
    echo "error: Auto missed the 1.1x dispatch floor twice" >&2
    exit 1
  }
fi
grep -q '"ilp_par_nodes_agree": true' target/BENCH_lp.quick.json
# The trace must exist, be non-trivial, and carry trace events: an empty
# or malformed trace means the obs wiring regressed silently.
test -s target/obs_trace.quick.json
grep -q '"traceEvents"' target/obs_trace.quick.json
grep -q '"lp.solve"' target/obs_trace.quick.json

echo "==> fault_sweep --quick (recovery ladder smoke test)"
cargo run --release -p aqua-bench --bin fault_sweep -- --quick --out target/BENCH_fault.quick.json

echo "==> serve stress suite (timeout-guarded: a hang is a deadlock)"
timeout 300 cargo test -q --release -p aqua-serve --test stress -- --test-threads=1

echo "==> serve front-door regressions (deadline overflow, accept loop, line caps)"
timeout 300 cargo test -q --release -p aqua-serve --test front_door

echo "==> serve store crash-recovery property suite + restart-rehydration smoke"
timeout 300 cargo test -q --release -p aqua-serve --test store_recovery

echo "==> bench_serve --quick (cold vs warm smoke test)"
cargo run --release -p aqua-bench --bin bench_serve -- --quick \
  --out target/BENCH_serve.quick.json
# The binary already exits nonzero when warm plans diverge from cold or
# the speedup floor is missed; the greps guard the JSON contract that
# downstream tooling (EXPERIMENTS.md tables) reads.
test -s target/BENCH_serve.quick.json
for field in '"schema": "bench_serve/v2"' '"warm_over_cold"' '"cold_rps"' \
             '"warm_src_rps"' '"warm_key_rps"' '"warm_equals_cold": true' \
             '"enzyme10_cold_p50_ns"' '"enzyme10_cold_p99_ns"' \
             '"traffic_p50_ns"' '"traffic_p99_ns"' '"traffic_p999_ns"' \
             '"traffic_shed_rate"' '"restart_equals_cold": true' \
             '"restart_no_recompiles": true' '"restart_over_warm"'; do
  if ! grep -q "$field" target/BENCH_serve.quick.json; then
    echo "error: BENCH_serve.quick.json is missing $field" >&2
    exit 1
  fi
done

echo "==> scheduler differential suite (scheduled == sequential, faulted too)"
timeout 600 cargo test -q --release -p aqua-sim --test sched_differential

echo "==> bench_exec --quick (makespan floor + thread-invariant digests)"
# The binary exits nonzero when a scheduled makespan exceeds its
# sequential baseline, batch digests differ across 1/2/8 threads, or a
# faulted instance is left unrecovered. The makespan floor is
# deterministic (simulated seconds), but the run itself shares the host
# with the rest of CI, so like the auto-floor gate it gets one retry
# before failing the build.
run_bench_exec() {
  timeout 600 cargo run --release -p aqua-bench --bin bench_exec -- --quick \
    --out target/BENCH_exec.quick.json
}
if ! run_bench_exec; then
  echo "warn: bench_exec smoke failed; retrying once" >&2
  run_bench_exec
fi
grep -q '"makespan_floor_ok": true' target/BENCH_exec.quick.json || {
  echo "error: a scheduled makespan exceeded its sequential baseline" >&2
  exit 1
}
grep -q '"threads_agree": true' target/BENCH_exec.quick.json
grep -q '"fault_recovered": true' target/BENCH_exec.quick.json
grep -q '"host_cpus"' target/BENCH_exec.quick.json

echo "==> replay differential suite (recorded digests at 1/2/8 threads)"
timeout 600 cargo test -q --release -p aqua-sim --test replay_differential

echo "==> replay descriptor-log crash-recovery suite"
timeout 600 cargo test -q --release -p aqua-sim --test replay_log_recovery

echo "==> obs fleet-merge properties + obs.snapshot wire byte-identity"
timeout 300 cargo test -q --release -p aqua-obs --test fleet_merge
timeout 300 cargo test -q --release -p aqua-serve --test obs_endpoints

echo "==> bench_replay --quick (descriptor-log soak smoke test)"
# The binary exits nonzero on any conservation violation, unrecovered
# fault, cross-thread digest mismatch, wire divergence, or a missed run
# floor; the greps re-check the JSON contract the perf trajectory and
# EXPERIMENTS.md read.
timeout 600 cargo run --release -p aqua-bench --bin bench_replay -- --quick \
  --out target/BENCH_replay.quick.json
test -s target/BENCH_replay.quick.json
for field in '"schema": "bench_replay/v1"' '"runs_floor_ok": true' \
             '"conservation_violations": 0' '"unrecovered_faults": 0' \
             '"digest_mismatches": 0' '"log_intact": true' \
             '"obs_wire_equal": true' '"replay_over_record"' \
             '"p999_instr_ns"' '"soak_rps"' '"host_cpus"'; do
  if ! grep -q "$field" target/BENCH_replay.quick.json; then
    echo "error: BENCH_replay.quick.json is missing $field" >&2
    exit 1
  fi
done

echo "==> incremental differential suite (session deltas == cold compiles)"
timeout 600 cargo test -q --release --features proptests --test incr_differential

echo "==> bench_incr --quick (session.edit vs cold front-door smoke test)"
# The binary exits nonzero when any incremental plan diverges from the
# cold compile of the edited DAG or the enzyme10 single-ratio-edit
# speedup floor (10x) is missed; the greps re-check the JSON contract.
timeout 600 cargo run --release -p aqua-bench --bin bench_incr -- --quick \
  --out target/BENCH_incr.quick.json
test -s target/BENCH_incr.quick.json
for field in '"schema": "bench_incr/v1"' '"incr_over_cold"' \
             '"divergences": 0' '"enzyme10_cold_p50_ns"' \
             '"enzyme10_ratio_incr_p50_ns"' '"enzyme10_machine_incr_p50_ns"' \
             '"host_cpus"'; do
  if ! grep -q "$field" target/BENCH_incr.quick.json; then
    echo "error: BENCH_incr.quick.json is missing $field" >&2
    exit 1
  fi
done

echo "==> ci.sh: all green"
