#!/usr/bin/env bash
# Pre-merge gate. Run from the repo root: scripts/ci.sh
#
# Mirrors what reviewers expect to be green before a PR lands:
#   1. formatting            (cargo fmt --check)
#   2. lints, deny warnings  (cargo clippy --workspace --all-targets)
#   3. tier-1 build + tests  (cargo build --release && cargo test -q)
#   4. property suites       (cargo test --features proptests)
#   5. LP backend smoke test (bench_lp --quick: sparse/dense agreement)
#   6. fault-recovery smoke  (fault_sweep --quick: 100% recovery at rate 0)
#
# The smoke runs write their JSON to target/ so they never clobber the
# committed BENCH_lp.json / BENCH_fault.json (regenerate those with a
# full `cargo run --release -p aqua-bench --bin bench_lp` / `fault_sweep`).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> property suites: cargo test -q --features proptests"
cargo test -q --release --features proptests --test fault_properties

echo "==> bench_lp --quick (backend agreement smoke test)"
cargo run --release -p aqua-bench --bin bench_lp -- --quick --out target/BENCH_lp.quick.json

echo "==> fault_sweep --quick (recovery ladder smoke test)"
cargo run --release -p aqua-bench --bin fault_sweep -- --quick --out target/BENCH_fault.quick.json

echo "==> ci.sh: all green"
