#!/usr/bin/env bash
# Pre-merge gate. Run from the repo root: scripts/ci.sh
#
# Mirrors what reviewers expect to be green before a PR lands:
#   1. formatting            (cargo fmt --check)
#   2. lints, deny warnings  (cargo clippy --workspace --all-targets)
#   3. tier-1 build + tests  (cargo build --release && cargo test -q)
#   4. LP backend smoke test (bench_lp --quick: sparse/dense agreement)
#
# The bench_lp smoke run writes its JSON to target/ so it never
# clobbers the committed BENCH_lp.json (regenerate that with a full
# `cargo run --release -p aqua-bench --bin bench_lp`).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> bench_lp --quick (backend agreement smoke test)"
cargo run --release -p aqua-bench --bin bench_lp -- --quick --out target/BENCH_lp.quick.json

echo "==> ci.sh: all green"
