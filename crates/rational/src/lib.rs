//! Exact rational arithmetic for the AquaCore volume-management stack.
//!
//! The volume-management algorithms of the paper (DAGSolve in particular)
//! are defined over exact fractions: mix ratios such as `2:1`, normalized
//! volumes such as `11/15`, and figure-level results such as the `1/204`
//! Vnorm of the glycomics assay. Floating point would make those results
//! approximate and the paper's worked examples untestable, so the whole
//! stack computes over [`Ratio`], a reduced `i128` fraction with checked
//! arithmetic.
//!
//! # Examples
//!
//! ```
//! use aqua_rational::Ratio;
//!
//! let a = Ratio::new(1, 3)?;
//! let b = Ratio::new(2, 5)?;
//! assert_eq!(a.checked_add(b)?, Ratio::new(11, 15)?);
//! assert_eq!(a.to_string(), "1/3");
//! # Ok::<(), aqua_rational::RatioError>(())
//! ```
//!
//! The infallible `+ - * /` operators are also implemented and panic on
//! overflow or division by zero; the `checked_*` methods return
//! [`RatioError`] instead. The compiler pipeline uses the checked forms so
//! adversarial assays surface diagnostics, not crashes.

#![warn(missing_docs)]

mod error;
mod ops;
mod parse;
mod ratio;
pub mod rng;

pub use error::RatioError;
pub use parse::ParseRatioError;
pub use ratio::Ratio;

/// Convenience alias for fallible rational computations.
pub type Result<T> = std::result::Result<T, RatioError>;
