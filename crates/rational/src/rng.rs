//! A tiny seeded PRNG for workload generation and tests.
//!
//! The workspace builds with no external crates, so `rand` is replaced
//! by this xorshift64* generator (Vigna, "An experimental exploration
//! of Marsaglia's xorshift generators, scrambled"). It is *not*
//! cryptographic; it exists so that every synthetic workload and
//! stress test is reproducible from an explicit `u64` seed.

/// Seeded xorshift64* generator.
///
/// Deterministic in its seed: two generators constructed with the same
/// seed produce identical streams on every platform.
///
/// # Examples
///
/// ```
/// use aqua_rational::rng::XorShift64Star;
///
/// let mut a = XorShift64Star::new(42);
/// let mut b = XorShift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_f64(1.0, 2.0);
/// assert!((1.0..2.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. A zero seed (invalid for plain
    /// xorshift) is remapped to a fixed nonzero constant.
    pub fn new(seed: u64) -> XorShift64Star {
        // SplitMix64 scramble so that small consecutive seeds (0, 1, 2..)
        // start from well-separated states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64Star {
            state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of the raw output).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive on both ends).
    ///
    /// Uses rejection sampling, so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Largest multiple of n that fits in u64: reject above it.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range_u64(0, n as u64 - 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = XorShift64Star::new(7);
        let mut b = XorShift64Star::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64Star::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64Star::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0, "stuck state");
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = XorShift64Star::new(123);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = XorShift64Star::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(3, 7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
            let f = r.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.index(4);
            assert!(i < 4);
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints never hit");
    }

    #[test]
    fn rough_uniformity() {
        // 8 buckets, 80k draws: each bucket within 10% of expectation.
        let mut r = XorShift64Star::new(99);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.index(8)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((9_000..=11_000).contains(&b), "bucket {i}: {b}");
        }
    }
}
