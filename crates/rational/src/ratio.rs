use std::cmp::Ordering;
use std::fmt;

use crate::{RatioError, Result};

/// An exact rational number: a reduced fraction of two `i128`s.
///
/// Invariants (maintained by every constructor and operation):
///
/// * the denominator is strictly positive;
/// * numerator and denominator are coprime;
/// * zero is represented canonically as `0/1`.
///
/// These invariants make derived `PartialEq`/`Hash` structural equality
/// coincide with numeric equality.
///
/// # Examples
///
/// ```
/// use aqua_rational::Ratio;
///
/// let half = Ratio::new(2, 4)?;
/// assert_eq!(half.numer(), 1);
/// assert_eq!(half.denom(), 2);
/// assert!(half < Ratio::ONE);
/// # Ok::<(), aqua_rational::RatioError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    numer: i128,
    denom: i128, // > 0, gcd(numer, denom) == 1
}

/// Greatest common divisor of the absolute values (binary-free Euclid).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.unsigned_abs() as i128;
    b = b.unsigned_abs() as i128;
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The additive identity, `0/1`.
    pub const ZERO: Ratio = Ratio { numer: 0, denom: 1 };
    /// The multiplicative identity, `1/1`.
    pub const ONE: Ratio = Ratio { numer: 1, denom: 1 };

    /// Creates a reduced ratio from a numerator and denominator.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ZeroDenominator`] if `denom == 0` and
    /// [`RatioError::Overflow`] if `denom == i128::MIN` (whose negation
    /// does not fit in `i128`).
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_rational::Ratio;
    ///
    /// assert_eq!(Ratio::new(-3, -6)?, Ratio::new(1, 2)?);
    /// # Ok::<(), aqua_rational::RatioError>(())
    /// ```
    pub fn new(numer: i128, denom: i128) -> Result<Ratio> {
        if denom == 0 {
            return Err(RatioError::ZeroDenominator);
        }
        if denom == i128::MIN || numer == i128::MIN {
            // `abs`/negation below would overflow; such extremes never
            // arise from sane assays, so reject rather than special-case.
            return Err(RatioError::Overflow);
        }
        let (mut n, mut d) = (numer, denom);
        if d < 0 {
            n = -n;
            d = -d;
        }
        let g = gcd(n, d);
        if g > 1 {
            n /= g;
            d /= g;
        }
        Ok(Ratio { numer: n, denom: d })
    }

    /// Creates a ratio from an integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_rational::Ratio;
    ///
    /// assert_eq!(Ratio::from_int(7).to_string(), "7");
    /// ```
    pub const fn from_int(n: i128) -> Ratio {
        Ratio { numer: n, denom: 1 }
    }

    /// The (reduced) numerator. Negative iff the ratio is negative.
    pub const fn numer(self) -> i128 {
        self.numer
    }

    /// The (reduced) denominator; always strictly positive.
    pub const fn denom(self) -> i128 {
        self.denom
    }

    /// Whether this ratio equals zero.
    pub const fn is_zero(self) -> bool {
        self.numer == 0
    }

    /// Whether this ratio is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.numer > 0
    }

    /// Whether this ratio is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.numer < 0
    }

    /// Whether this ratio is an integer (denominator 1).
    pub const fn is_integer(self) -> bool {
        self.denom == 1
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Overflow`] if any intermediate exceeds `i128`.
    pub fn checked_add(self, rhs: Ratio) -> Result<Ratio> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d); using the
        // lcm keeps intermediates as small as possible.
        let g = gcd(self.denom, rhs.denom);
        let l = (self.denom / g)
            .checked_mul(rhs.denom)
            .ok_or(RatioError::Overflow)?;
        let left = self
            .numer
            .checked_mul(l / self.denom)
            .ok_or(RatioError::Overflow)?;
        let right = rhs
            .numer
            .checked_mul(l / rhs.denom)
            .ok_or(RatioError::Overflow)?;
        let n = left.checked_add(right).ok_or(RatioError::Overflow)?;
        Ratio::new(n, l)
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Overflow`] if any intermediate exceeds `i128`.
    pub fn checked_sub(self, rhs: Ratio) -> Result<Ratio> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Overflow`] if any intermediate exceeds `i128`.
    pub fn checked_mul(self, rhs: Ratio) -> Result<Ratio> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.numer, rhs.denom);
        let g2 = gcd(rhs.numer, self.denom);
        let n = (self.numer / g1)
            .checked_mul(rhs.numer / g2)
            .ok_or(RatioError::Overflow)?;
        let d = (self.denom / g2)
            .checked_mul(rhs.denom / g1)
            .ok_or(RatioError::Overflow)?;
        Ratio::new(n, d)
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ZeroDenominator`] if `rhs` is zero and
    /// [`RatioError::Overflow`] on overflow.
    pub fn checked_div(self, rhs: Ratio) -> Result<Ratio> {
        if rhs.is_zero() {
            return Err(RatioError::ZeroDenominator);
        }
        self.checked_mul(rhs.checked_recip()?)
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Overflow`] only for `i128::MIN` numerators,
    /// which [`Ratio::new`] already rejects; in practice this never fails
    /// for ratios built through the public API.
    pub fn checked_neg(self) -> Result<Ratio> {
        let n = self.numer.checked_neg().ok_or(RatioError::Overflow)?;
        Ok(Ratio {
            numer: n,
            denom: self.denom,
        })
    }

    /// Checked multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ZeroDenominator`] if this ratio is zero.
    pub fn checked_recip(self) -> Result<Ratio> {
        Ratio::new(self.denom, self.numer)
    }

    /// Absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            numer: self.numer.abs(),
            denom: self.denom,
        }
    }

    /// Largest integer `<= self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_rational::Ratio;
    ///
    /// assert_eq!(Ratio::new(7, 2)?.floor(), 3);
    /// assert_eq!(Ratio::new(-7, 2)?.floor(), -4);
    /// # Ok::<(), aqua_rational::RatioError>(())
    /// ```
    pub fn floor(self) -> i128 {
        self.numer.div_euclid(self.denom)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        -(-self.numer).div_euclid(self.denom)
    }

    /// Nearest integer, rounding half away from zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_rational::Ratio;
    ///
    /// assert_eq!(Ratio::new(5, 2)?.round(), 3);
    /// assert_eq!(Ratio::new(-5, 2)?.round(), -3);
    /// assert_eq!(Ratio::new(2, 3)?.round(), 1);
    /// # Ok::<(), aqua_rational::RatioError>(())
    /// ```
    pub fn round(self) -> i128 {
        if self.numer < 0 {
            return -self.abs().round();
        }
        let q = self.numer / self.denom;
        let r = self.numer % self.denom;
        if r >= self.denom - r {
            q + 1
        } else {
            q
        }
    }

    /// Approximates this ratio as an `f64`.
    ///
    /// Used only at the LP boundary; everything else stays exact.
    pub fn to_f64(self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// The smaller of two ratios.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two ratios.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Sums an iterator of ratios with checked arithmetic.
    ///
    /// # Errors
    ///
    /// Returns the first [`RatioError::Overflow`] encountered.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_rational::Ratio;
    ///
    /// let parts = [Ratio::new(1, 3)?, Ratio::new(2, 5)?];
    /// assert_eq!(Ratio::checked_sum(parts)?, Ratio::new(11, 15)?);
    /// # Ok::<(), aqua_rational::RatioError>(())
    /// ```
    pub fn checked_sum<I: IntoIterator<Item = Ratio>>(iter: I) -> Result<Ratio> {
        let mut acc = Ratio::ZERO;
        for r in iter {
            acc = acc.checked_add(r)?;
        }
        Ok(acc)
    }
}

impl Default for Ratio {
    /// The default ratio is [`Ratio::ZERO`] (the derive would produce the
    /// invalid representation `0/0`).
    fn default() -> Ratio {
        Ratio::ZERO
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Compare a/b vs c/d as a*d vs c*b. Denominators are positive so
        // the sign is preserved. i128 products may overflow for adversarial
        // values, so fall back to exact wide arithmetic via f64 only when
        // the checked products fail — in practice assay ratios are tiny.
        match (
            self.numer.checked_mul(other.denom),
            other.numer.checked_mul(self.denom),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl From<i32> for Ratio {
    fn from(n: i32) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

impl From<u32> for Ratio {
    fn from(n: u32) -> Ratio {
        Ratio::from_int(n as i128)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Ratio {
    /// Serializes as the canonical `"n/d"` (or `"n"`) string, keeping
    /// exactness across any serde format.
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Ratio {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Ratio, D::Error> {
        let text = <String as serde::Deserialize>::deserialize(deserializer)?;
        text.parse().map_err(serde::de::Error::custom)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn new_reduces_to_lowest_terms() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(6, 3), Ratio::from_int(2));
        assert_eq!(r(0, 5), Ratio::ZERO);
    }

    #[test]
    fn new_normalizes_sign_to_numerator() {
        assert_eq!(r(1, -2), r(-1, 2));
        assert_eq!(r(-1, -2), r(1, 2));
        assert!(r(1, -2).denom() > 0);
    }

    #[test]
    fn new_rejects_zero_denominator() {
        assert_eq!(Ratio::new(1, 0), Err(RatioError::ZeroDenominator));
    }

    #[test]
    fn new_rejects_i128_min() {
        assert_eq!(Ratio::new(i128::MIN, 3), Err(RatioError::Overflow));
        assert_eq!(Ratio::new(3, i128::MIN), Err(RatioError::Overflow));
    }

    #[test]
    fn add_matches_hand_computation() {
        assert_eq!(r(1, 3).checked_add(r(2, 5)).unwrap(), r(11, 15));
        assert_eq!(r(1, 2).checked_add(r(1, 2)).unwrap(), Ratio::ONE);
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(r(1, 2).checked_sub(r(1, 3)).unwrap(), r(1, 6));
        assert_eq!(r(1, 2).checked_neg().unwrap(), r(-1, 2));
    }

    #[test]
    fn mul_cross_reduces() {
        // Would overflow without cross-reduction.
        let big = r(i128::MAX / 2, 1);
        let tiny = r(2, i128::MAX / 2);
        assert_eq!(big.checked_mul(tiny).unwrap(), Ratio::from_int(2));
    }

    #[test]
    fn div_by_zero_is_error() {
        assert_eq!(
            r(1, 2).checked_div(Ratio::ZERO),
            Err(RatioError::ZeroDenominator)
        );
    }

    #[test]
    fn recip_swaps() {
        assert_eq!(r(3, 7).checked_recip().unwrap(), r(7, 3));
        assert_eq!(r(-3, 7).checked_recip().unwrap(), r(-7, 3));
        assert_eq!(
            Ratio::ZERO.checked_recip(),
            Err(RatioError::ZeroDenominator)
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(r(1, 3) < r(2, 5));
        assert!(r(-1, 2) < Ratio::ZERO);
        assert!(r(7, 2) > Ratio::from_int(3));
        let mut v = vec![r(3, 2), r(1, 3), Ratio::ONE];
        v.sort();
        assert_eq!(v, vec![r(1, 3), Ratio::ONE, r(3, 2)]);
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(7, 2).round(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(1, 3).round(), 0);
        assert_eq!(r(2, 3).round(), 1);
        assert_eq!(Ratio::from_int(5).floor(), 5);
        assert_eq!(Ratio::from_int(5).ceil(), 5);
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        let huge = r(i128::MAX, 1);
        assert_eq!(huge.checked_add(huge), Err(RatioError::Overflow));
        assert_eq!(huge.checked_mul(huge), Err(RatioError::Overflow));
    }

    #[test]
    fn checked_sum_accumulates() {
        let parts = [r(1, 4), r(1, 4), r(1, 2)];
        assert_eq!(Ratio::checked_sum(parts).unwrap(), Ratio::ONE);
        assert_eq!(Ratio::checked_sum([]).unwrap(), Ratio::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(Ratio::from_int(-4).to_string(), "-4");
        assert_eq!(Ratio::ZERO.to_string(), "0");
        assert_eq!(format!("{:?}", r(1, 2)), "Ratio(1/2)");
    }

    #[test]
    fn to_f64_is_close() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 3).min(r(1, 2)), r(1, 3));
        assert_eq!(r(1, 3).max(r(1, 2)), r(1, 2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Ratio::default(), Ratio::ZERO);
    }
}
