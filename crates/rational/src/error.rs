use std::error::Error;
use std::fmt;

/// Error produced by checked rational arithmetic.
///
/// # Examples
///
/// ```
/// use aqua_rational::{Ratio, RatioError};
///
/// assert_eq!(Ratio::new(1, 0), Err(RatioError::ZeroDenominator));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RatioError {
    /// A denominator of zero was supplied or produced (e.g. by division
    /// by a zero ratio).
    ZeroDenominator,
    /// An intermediate product or sum exceeded the range of `i128`.
    Overflow,
}

impl fmt::Display for RatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatioError::ZeroDenominator => write!(f, "rational denominator is zero"),
            RatioError::Overflow => write!(f, "rational arithmetic overflowed i128"),
        }
    }
}

impl Error for RatioError {}
