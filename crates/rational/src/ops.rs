//! Infallible operator impls for [`Ratio`].
//!
//! These panic on overflow / division by zero; the checked methods on
//! [`Ratio`] are the non-panicking alternative. Operators make test code
//! and the DAGSolve inner loops readable where inputs are already
//! validated.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::Ratio;

impl Add for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics if the sum overflows `i128`.
    fn add(self, rhs: Ratio) -> Ratio {
        self.checked_add(rhs).expect("ratio addition overflowed")
    }
}

impl Sub for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics if the difference overflows `i128`.
    fn sub(self, rhs: Ratio) -> Ratio {
        self.checked_sub(rhs).expect("ratio subtraction overflowed")
    }
}

impl Mul for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics if the product overflows `i128`.
    fn mul(self, rhs: Ratio) -> Ratio {
        self.checked_mul(rhs)
            .expect("ratio multiplication overflowed")
    }
}

impl Div for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics if `rhs` is zero or the quotient overflows `i128`.
    fn div(self, rhs: Ratio) -> Ratio {
        self.checked_div(rhs).expect("ratio division failed")
    }
}

impl Neg for Ratio {
    type Output = Ratio;

    fn neg(self) -> Ratio {
        self.checked_neg().expect("ratio negation overflowed")
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        *self = *self / rhs;
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |acc, r| acc + r)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::Ratio;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn operators_match_checked_forms() {
        assert_eq!(r(1, 3) + r(2, 5), r(11, 15));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), Ratio::from_int(2));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn assign_operators() {
        let mut x = r(1, 2);
        x += r(1, 4);
        assert_eq!(x, r(3, 4));
        x -= r(1, 4);
        assert_eq!(x, r(1, 2));
        x *= r(2, 1);
        assert_eq!(x, Ratio::ONE);
        x /= r(2, 1);
        assert_eq!(x, r(1, 2));
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![r(1, 6), r(1, 3), r(1, 2)];
        let total: Ratio = v.iter().sum();
        assert_eq!(total, Ratio::ONE);
        let total2: Ratio = v.into_iter().sum();
        assert_eq!(total2, Ratio::ONE);
    }

    #[test]
    #[should_panic(expected = "ratio division failed")]
    fn div_by_zero_panics() {
        let _ = r(1, 2) / Ratio::ZERO;
    }
}
