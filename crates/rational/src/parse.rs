//! Parsing of rationals from assay source text.
//!
//! Assays write ratios as integers (`10`), fractions (`1/3`), or simple
//! decimals (`0.9`, used by the paper's output-to-output constraints).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::{Ratio, RatioError};

/// Error returned when a string is not a valid rational literal.
///
/// # Examples
///
/// ```
/// use aqua_rational::Ratio;
///
/// assert!("1/0".parse::<Ratio>().is_err());
/// assert!("abc".parse::<Ratio>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError {
    input: String,
    reason: Reason,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Reason {
    Syntax,
    Arithmetic(RatioError),
}

impl ParseRatioError {
    fn syntax(input: &str) -> Self {
        ParseRatioError {
            input: input.to_owned(),
            reason: Reason::Syntax,
        }
    }
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            Reason::Syntax => write!(f, "invalid rational literal `{}`", self.input),
            Reason::Arithmetic(e) => write!(f, "invalid rational literal `{}`: {e}", self.input),
        }
    }
}

impl Error for ParseRatioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.reason {
            Reason::Syntax => None,
            Reason::Arithmetic(e) => Some(e),
        }
    }
}

impl From<RatioError> for ParseRatioError {
    fn from(e: RatioError) -> Self {
        ParseRatioError {
            input: String::new(),
            reason: Reason::Arithmetic(e),
        }
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"-3"`, `"11/15"`, or `"0.25"` into a [`Ratio`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseRatioError`] for malformed input, a zero
    /// denominator, or magnitudes exceeding `i128`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_rational::Ratio;
    ///
    /// let v: Ratio = "11/15".parse()?;
    /// assert_eq!(v, Ratio::new(11, 15).unwrap());
    /// let d: Ratio = "0.9".parse()?;
    /// assert_eq!(d, Ratio::new(9, 10).unwrap());
    /// # Ok::<(), aqua_rational::ParseRatioError>(())
    /// ```
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseRatioError::syntax(s));
        }
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().map_err(|_| ParseRatioError::syntax(s))?;
            let d: i128 = d.trim().parse().map_err(|_| ParseRatioError::syntax(s))?;
            return Ratio::new(n, d).map_err(|e| ParseRatioError {
                input: s.to_owned(),
                reason: Reason::Arithmetic(e),
            });
        }
        if let Some((int, frac)) = s.split_once('.') {
            let negative = int.trim_start().starts_with('-');
            let int_part: i128 = if int == "-" || int.is_empty() {
                0
            } else {
                int.parse().map_err(|_| ParseRatioError::syntax(s))?
            };
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRatioError::syntax(s));
            }
            if frac.len() > 30 {
                return Err(ParseRatioError {
                    input: s.to_owned(),
                    reason: Reason::Arithmetic(RatioError::Overflow),
                });
            }
            let frac_num: i128 = frac.parse().map_err(|_| ParseRatioError::syntax(s))?;
            let denom = 10i128
                .checked_pow(frac.len() as u32)
                .ok_or(ParseRatioError {
                    input: s.to_owned(),
                    reason: Reason::Arithmetic(RatioError::Overflow),
                })?;
            let whole = Ratio::from_int(int_part);
            let frac_part = Ratio::new(frac_num, denom).map_err(|e| ParseRatioError {
                input: s.to_owned(),
                reason: Reason::Arithmetic(e),
            })?;
            let combined = if negative {
                whole.checked_sub(frac_part)
            } else {
                whole.checked_add(frac_part)
            };
            return combined.map_err(|e| ParseRatioError {
                input: s.to_owned(),
                reason: Reason::Arithmetic(e),
            });
        }
        let n: i128 = s.parse().map_err(|_| ParseRatioError::syntax(s))?;
        Ok(Ratio::from_int(n))
    }
}

#[cfg(test)]
mod tests {
    use crate::Ratio;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn parses_integers() {
        assert_eq!("42".parse::<Ratio>().unwrap(), Ratio::from_int(42));
        assert_eq!("-7".parse::<Ratio>().unwrap(), Ratio::from_int(-7));
        assert_eq!(" 3 ".parse::<Ratio>().unwrap(), Ratio::from_int(3));
    }

    #[test]
    fn parses_fractions() {
        assert_eq!("11/15".parse::<Ratio>().unwrap(), r(11, 15));
        assert_eq!("2/4".parse::<Ratio>().unwrap(), r(1, 2));
        assert_eq!("-1/3".parse::<Ratio>().unwrap(), r(-1, 3));
        assert_eq!("1 / 2".parse::<Ratio>().unwrap(), r(1, 2));
    }

    #[test]
    fn parses_decimals() {
        assert_eq!("0.9".parse::<Ratio>().unwrap(), r(9, 10));
        assert_eq!("1.1".parse::<Ratio>().unwrap(), r(11, 10));
        assert_eq!("-0.5".parse::<Ratio>().unwrap(), r(-1, 2));
        assert!("2.".parse::<Ratio>().is_err());
        assert_eq!(".5".parse::<Ratio>().unwrap(), r(1, 2));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "abc", "1/0", "1//2", "1.2.3", "1/2/3", "0x10"] {
            assert!(bad.parse::<Ratio>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for v in [r(11, 15), r(-3, 7), Ratio::ZERO, Ratio::from_int(100)] {
            assert_eq!(v.to_string().parse::<Ratio>().unwrap(), v);
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = "1/0".parse::<Ratio>().unwrap_err();
        assert!(e.to_string().contains("1/0"));
        let e = "zzz".parse::<Ratio>().unwrap_err();
        assert!(e.to_string().contains("zzz"));
    }
}
