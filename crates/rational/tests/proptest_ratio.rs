// Compiled only with the `proptest-tests` feature: the dependency it
// needs is not vendored, so the default offline build skips it.
#![cfg(feature = "proptest-tests")]

//! Property-based tests: field axioms and rounding laws for `Ratio`.

use aqua_rational::Ratio;
use proptest::prelude::*;

/// Small-magnitude components keep checked arithmetic well inside `i128`
/// so the algebraic laws are exercised without overflow noise.
fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-1_000_000i128..=1_000_000, 1i128..=1_000_000)
        .prop_map(|(n, d)| Ratio::new(n, d).expect("nonzero denominator"))
}

proptest! {
    #[test]
    fn addition_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_distributes(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn zero_is_additive_identity(a in small_ratio()) {
        prop_assert_eq!(a + Ratio::ZERO, a);
        prop_assert_eq!(a - a, Ratio::ZERO);
    }

    #[test]
    fn one_is_multiplicative_identity(a in small_ratio()) {
        prop_assert_eq!(a * Ratio::ONE, a);
    }

    #[test]
    fn reciprocal_inverts(a in small_ratio()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.checked_recip().unwrap(), Ratio::ONE);
    }

    #[test]
    fn invariants_hold(a in small_ratio(), b in small_ratio()) {
        for v in [a + b, a - b, a * b] {
            prop_assert!(v.denom() > 0);
            // Reduced: gcd(n, d) == 1 is equivalent to re-normalizing
            // yielding the same representation.
            prop_assert_eq!(Ratio::new(v.numer(), v.denom()).unwrap(), v);
        }
    }

    #[test]
    fn floor_ceil_bracket(a in small_ratio()) {
        let f = Ratio::from_int(a.floor());
        let c = Ratio::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(c - f <= Ratio::ONE);
    }

    #[test]
    fn round_is_nearest(a in small_ratio()) {
        let r = Ratio::from_int(a.round());
        let err = (a - r).abs();
        prop_assert!(err <= Ratio::new(1, 2).unwrap());
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a < b, (a - b).is_negative());
        prop_assert_eq!(a == b, (a - b).is_zero());
    }

    #[test]
    fn display_roundtrips(a in small_ratio()) {
        prop_assert_eq!(a.to_string().parse::<Ratio>().unwrap(), a);
    }

    #[test]
    fn to_f64_tracks_ordering(a in small_ratio(), b in small_ratio()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }
}
