// Compiled only with the `proptest-tests` feature: the dependency it
// needs is not vendored, so the default offline build skips it.
#![cfg(feature = "proptest-tests")]

//! Property tests: DAG structural invariants survive construction and
//! mutation.

use aqua_dag::{Dag, NodeId, Ratio};
use proptest::prelude::*;

/// Builds a random valid layered DAG from a mix plan: each entry is
/// (source picks, ratio parts).
#[derive(Debug, Clone)]
struct Plan {
    inputs: usize,
    mixes: Vec<Vec<(usize, u64)>>, // per mix: (pool index, parts)
}

fn plan() -> impl Strategy<Value = Plan> {
    (2usize..5).prop_flat_map(|inputs| {
        let mix = proptest::collection::vec((0usize..64, 1u64..10), 2..4);
        proptest::collection::vec(mix, 1..8).prop_map(move |mixes| Plan { inputs, mixes })
    })
}

fn build(p: &Plan) -> Dag {
    let mut dag = Dag::new();
    let mut pool: Vec<NodeId> = (0..p.inputs)
        .map(|i| dag.add_input(format!("in{i}")))
        .collect();
    for (i, mix) in p.mixes.iter().enumerate() {
        // Map picks into the current pool, dedup by node.
        let mut parts: Vec<(NodeId, u64)> = Vec::new();
        for &(pick, w) in mix {
            let node = pool[pick % pool.len()];
            if let Some(e) = parts.iter_mut().find(|(n, _)| *n == node) {
                e.1 += w;
            } else {
                parts.push((node, w));
            }
        }
        let m = dag.add_mix(format!("m{i}"), &parts, 0).expect("valid");
        pool.push(m);
    }
    // Terminate every dangling product.
    let leaves: Vec<NodeId> = dag
        .node_ids()
        .filter(|&n| dag.out_edges(n).is_empty() && !dag.in_edges(n).is_empty())
        .collect();
    for (i, l) in leaves.into_iter().enumerate() {
        dag.add_process(format!("s{i}"), "sense.OD", l);
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_dags_validate(p in plan()) {
        let dag = build(&p);
        prop_assert!(dag.validate().is_ok(), "{:?}", dag.validate());
    }

    #[test]
    fn in_edge_fractions_sum_to_one(p in plan()) {
        let dag = build(&p);
        for n in dag.node_ids() {
            if dag.in_edges(n).is_empty() {
                continue;
            }
            let sum = Ratio::checked_sum(
                dag.in_edges(n).iter().map(|&e| dag.edge(e).fraction),
            )
            .unwrap();
            prop_assert_eq!(sum, Ratio::ONE);
        }
    }

    #[test]
    fn topological_order_is_consistent(p in plan()) {
        let dag = build(&p);
        let order = dag.topological_order().unwrap();
        prop_assert_eq!(order.len(), dag.num_nodes());
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for e in dag.edge_ids() {
            let edge = dag.edge(e);
            prop_assert!(pos[&edge.src] < pos[&edge.dst]);
        }
    }

    #[test]
    fn backward_slice_contains_all_ancestors(p in plan()) {
        let dag = build(&p);
        for n in dag.node_ids() {
            let slice = dag.backward_slice(n);
            for &e in dag.in_edges(n) {
                prop_assert!(slice.contains(&dag.edge(e).src));
            }
            // Everything in the slice reaches n.
            for &m in &slice {
                prop_assert!(dag.reaches(m, n) || m == n);
            }
        }
    }

    #[test]
    fn cut_edges_disappear_from_adjacency(p in plan()) {
        let mut dag = build(&p);
        // Cut the first live edge and re-check bookkeeping.
        let Some(e) = dag.edge_ids().find(|&e| dag.edge_is_live(e)) else {
            return Ok(());
        };
        let edge = dag.edge(e).clone();
        dag.cut_edge(e);
        prop_assert!(!dag.edge_is_live(e));
        prop_assert!(!dag.out_edges(edge.src).contains(&e));
        prop_assert!(!dag.in_edges(edge.dst).contains(&e));
    }

    #[test]
    fn dot_mentions_every_node(p in plan()) {
        let dag = build(&p);
        let dot = dag.to_dot("g");
        for n in dag.node_ids() {
            let needle = format!("label=\"{}\"", dag.node(n).name);
            prop_assert!(dot.contains(&needle), "missing {needle}");
        }
    }
}
