// Compiled only with the `serde-tests` feature: the dependency it
// needs is not vendored, so the default offline build skips it.
#![cfg(feature = "serde-tests")]

//! Serde round-trips for the data-structure crates (requires the
//! `serde` feature: `cargo test -p aqua-dag --features serde`).

#![cfg(feature = "serde")]

use aqua_dag::{Dag, Ratio};

#[test]
fn ratio_roundtrips_exactly() {
    for (n, d) in [(11i128, 15i128), (-3, 7), (0, 1), (1_000_000, 1)] {
        let r = Ratio::new(n, d).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: Ratio = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}

#[test]
fn ratio_deserialize_validates() {
    assert!(serde_json::from_str::<Ratio>("\"1/0\"").is_err());
    assert!(serde_json::from_str::<Ratio>("\"bogus\"").is_err());
}

#[test]
fn dag_roundtrips_with_structure() {
    let mut d = Dag::new();
    let a = d.add_input("A");
    let b = d.add_input("B");
    let m = d.add_mix("mx", &[(a, 1), (b, 4)], 30).unwrap();
    d.add_process("sense", "sense.OD", m);
    let json = serde_json::to_string(&d).unwrap();
    let back: Dag = serde_json::from_str(&json).unwrap();
    assert_eq!(d, back);
    assert!(back.validate().is_ok());
    assert_eq!(
        back.edge(back.in_edges(m)[0]).fraction,
        Ratio::new(1, 5).unwrap()
    );
}
