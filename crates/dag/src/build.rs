//! Typed builders that keep edge-fraction invariants.

use aqua_rational::{Ratio, RatioError};

use crate::graph::{Dag, NodeId, NodeKind};

impl Dag {
    /// Adds an external fluid input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Input)
    }

    /// Adds a constrained input (fixed available volume; see §3.5).
    pub fn add_constrained_input(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::ConstrainedInput)
    }

    /// Adds a mix node combining `parts` in the given integer ratio
    /// parts, e.g. `&[(a, 1), (b, 4)]` for `mix A:B in ratio 1:4`.
    ///
    /// Edge fractions are normalized to sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ZeroDenominator`] if all parts are zero, or
    /// [`RatioError::Overflow`] on absurd part magnitudes.
    pub fn add_mix(
        &mut self,
        name: impl Into<String>,
        parts: &[(NodeId, u64)],
        seconds: u64,
    ) -> Result<NodeId, RatioError> {
        let ratios: Vec<(NodeId, Ratio)> = parts
            .iter()
            .map(|&(n, p)| (n, Ratio::from_int(p as i128)))
            .collect();
        self.add_mix_exact(name, &ratios, seconds)
    }

    /// Adds a mix node with exact rational ratio parts.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ZeroDenominator`] if the parts sum to zero.
    pub fn add_mix_exact(
        &mut self,
        name: impl Into<String>,
        parts: &[(NodeId, Ratio)],
        seconds: u64,
    ) -> Result<NodeId, RatioError> {
        let total = Ratio::checked_sum(parts.iter().map(|&(_, r)| r))?;
        if total.is_zero() {
            return Err(RatioError::ZeroDenominator);
        }
        let node = self.add_node(name, NodeKind::Mix { seconds });
        for &(src, part) in parts {
            let fraction = part.checked_div(total)?;
            self.add_edge(src, node, fraction);
        }
        Ok(node)
    }

    /// Adds a pass-through processing node (incubate, sense, ...).
    pub fn add_process(
        &mut self,
        name: impl Into<String>,
        op: impl Into<String>,
        input: NodeId,
    ) -> NodeId {
        let node = self.add_node(name, NodeKind::Process { op: op.into() });
        self.add_edge(input, node, Ratio::ONE);
        node
    }

    /// Adds a separation node whose output volume is `fraction` of its
    /// input (`None` = measured at run time).
    pub fn add_separate(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        fraction: Option<Ratio>,
    ) -> NodeId {
        let node = self.add_node(name, NodeKind::Separate { fraction });
        self.add_edge(input, node, Ratio::ONE);
        node
    }

    /// Adds a final output node consuming `from`'s fluid.
    pub fn add_output(&mut self, name: impl Into<String>, from: NodeId) -> NodeId {
        let node = self.add_node(name, NodeKind::Output);
        self.add_edge(from, node, Ratio::ONE);
        node
    }

    /// Adds an excess (discard) node consuming `from`'s fluid; used by
    /// cascading. The edge fraction is the *discarded share* of the
    /// source's output, known a priori (§3.4.1).
    pub fn add_excess(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        discard_share: Ratio,
    ) -> NodeId {
        let node = self.add_node(name, NodeKind::Excess);
        self.add_edge(from, node, discard_share);
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_are_normalized() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 10).unwrap();
        let fr: Vec<Ratio> = d.in_edges(k).iter().map(|&e| d.edge(e).fraction).collect();
        assert_eq!(
            fr,
            vec![Ratio::new(1, 5).unwrap(), Ratio::new(4, 5).unwrap()]
        );
        assert_eq!(Ratio::checked_sum(fr).unwrap(), Ratio::ONE);
    }

    #[test]
    fn three_way_mix() {
        // The glycomics `MIX effluent AND buffer4 AND NaOH IN RATIOS 1:100:1`.
        let mut d = Dag::new();
        let e = d.add_input("effluent");
        let b4 = d.add_input("buffer4");
        let naoh = d.add_input("NaOH");
        let m = d
            .add_mix("perm", &[(e, 1), (b4, 100), (naoh, 1)], 30)
            .unwrap();
        let fr: Vec<Ratio> = d.in_edges(m).iter().map(|&x| d.edge(x).fraction).collect();
        assert_eq!(fr[1], Ratio::new(100, 102).unwrap());
        assert_eq!(fr[0], Ratio::new(1, 102).unwrap());
    }

    #[test]
    fn zero_ratio_mix_is_rejected() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        assert!(d.add_mix("bad", &[(a, 0), (b, 0)], 0).is_err());
    }

    #[test]
    fn exact_ratio_mix() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let half = Ratio::new(1, 2).unwrap();
        let k = d
            .add_mix_exact("K", &[(a, half), (b, Ratio::ONE)], 0)
            .unwrap();
        let fr: Vec<Ratio> = d.in_edges(k).iter().map(|&x| d.edge(x).fraction).collect();
        assert_eq!(
            fr,
            vec![Ratio::new(1, 3).unwrap(), Ratio::new(2, 3).unwrap()]
        );
    }

    #[test]
    fn process_separate_output_edges_are_unit() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_process("inc", "incubate", a);
        let s = d.add_separate("sep", p, Some(Ratio::new(1, 2).unwrap()));
        let o = d.add_output("out", s);
        for n in [p, s, o] {
            assert_eq!(d.edge(d.in_edges(n)[0]).fraction, Ratio::ONE);
        }
    }
}
