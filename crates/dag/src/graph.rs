//! Core graph structure: nodes, edges, traversal.

use std::fmt;

use aqua_rational::Ratio;

use crate::validate::DagError;

/// Handle to a node of a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Zero-based index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to an edge of a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// Zero-based index of the edge.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What operation a node performs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// An external fluid source: the assay may load up to the machine's
    /// capacity of this fluid.
    Input,
    /// A volume-aggregating operation (mix): output volume equals the
    /// sum of input volumes, combined in the in-edge fractions.
    Mix {
        /// Wet-path duration in seconds (informational).
        seconds: u64,
    },
    /// A pass-through operation (incubate, sense target, heat):
    /// single input, output volume equals input volume.
    Process {
        /// Operation label, e.g. `"incubate"`.
        op: String,
    },
    /// A separation step: output volume is `fraction` of the input when
    /// known at compile time, or measured at run time when `None`
    /// (the statically-unknown case of §3.5).
    Separate {
        /// Known output-to-input fraction, or `None` for run-time
        /// measurement.
        fraction: Option<Ratio>,
    },
    /// A final output of the assay (leaf).
    Output,
    /// Discarded excess introduced by cascading (§3.4.1); its Vnorm is
    /// derived from its source node rather than from consumers.
    Excess,
    /// A constrained input introduced by DAG partitioning (§3.5): its
    /// available volume is fixed (by a run-time measurement or a
    /// conservative split), not free like a true input.
    ConstrainedInput,
}

impl NodeKind {
    /// Whether nodes of this kind act as sources (no in-edges).
    pub fn is_source(&self) -> bool {
        matches!(self, NodeKind::Input | NodeKind::ConstrainedInput)
    }

    /// Whether nodes of this kind act as sinks (no out-edges).
    pub fn is_sink(&self) -> bool {
        matches!(self, NodeKind::Output | NodeKind::Excess)
    }
}

/// One node of the assay DAG.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    /// Human-readable name (fluid or operation label).
    pub name: String,
    /// The operation this node performs.
    pub kind: NodeKind,
    pub(crate) in_edges: Vec<EdgeId>,
    pub(crate) out_edges: Vec<EdgeId>,
}

/// One edge of the assay DAG: fluid produced by `src` consumed by `dst`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// Producing node.
    pub src: NodeId,
    /// Consuming node.
    pub dst: NodeId,
    /// Fraction of `dst`'s total input contributed by this fluid; the
    /// in-edge fractions of every node sum to 1.
    pub fraction: Ratio,
}

/// The assay DAG. See the crate docs for the model.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dag {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Dag {
        Dag::default()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DAG.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The edge behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DAG.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// In-edges of a node (order of insertion).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DAG.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.nodes[id.0].in_edges
    }

    /// Out-edges of a node (order of insertion).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DAG.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.nodes[id.0].out_edges
    }

    /// Iterates over all node handles.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over all edge handles.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Finds a node by name (first match).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// The number of uses of a node's output fluid (its out-degree).
    pub fn num_uses(&self, id: NodeId) -> usize {
        self.nodes[id.0].out_edges.len()
    }

    /// Nodes in topological order (sources first).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Cycle`] if the graph has a cycle (which would
    /// mean a malformed assay).
    pub fn topological_order(&self) -> Result<Vec<NodeId>, DagError> {
        let n = self.nodes.len();
        let mut indegree: Vec<usize> = self.nodes.iter().map(|nd| nd.in_edges.len()).collect();
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indegree[i] == 0).map(NodeId).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            order.push(id);
            for &e in &self.nodes[id.0].out_edges {
                let d = self.edges[e.0].dst;
                indegree[d.0] -= 1;
                if indegree[d.0] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DagError::Cycle)
        }
    }

    /// All output (leaf) nodes.
    pub fn outputs(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).kind == NodeKind::Output)
            .collect()
    }

    /// All input (source) nodes, including constrained inputs.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).kind.is_source())
            .collect()
    }

    /// Adds a raw node. Prefer the typed builders in the `build` module
    /// ([`Dag::add_input`], [`Dag::add_mix`], ...), which maintain the
    /// fraction invariants.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind,
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a raw edge with an explicit fraction. Prefer the typed
    /// builders, which compute fractions from mix ratios.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, fraction: Ratio) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { src, dst, fraction });
        self.nodes[src.0].out_edges.push(id);
        self.nodes[dst.0].in_edges.push(id);
        id
    }

    /// Re-points an edge's source to another node, keeping its fraction.
    ///
    /// Used by static replication to redistribute uses among replicas.
    ///
    /// # Panics
    ///
    /// Panics if either id is stale.
    pub fn redirect_edge_src(&mut self, edge: EdgeId, new_src: NodeId) {
        let old_src = self.edges[edge.0].src;
        self.nodes[old_src.0].out_edges.retain(|&e| e != edge);
        self.edges[edge.0].src = new_src;
        self.nodes[new_src.0].out_edges.push(edge);
    }

    /// Overwrites an edge's fraction; the caller is responsible for
    /// keeping the destination's fractions normalized (checked by
    /// [`Dag::validate`]). Used by cascading's final-stage rewiring.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is stale.
    pub fn set_edge_fraction(&mut self, edge: EdgeId, fraction: Ratio) {
        self.edges[edge.0].fraction = fraction;
    }

    /// Removes an edge (used by partitioning's edge cuts). The edge id
    /// is invalidated; other ids remain stable.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is stale.
    pub fn cut_edge(&mut self, edge: EdgeId) -> Edge {
        let e = self.edges[edge.0].clone();
        self.nodes[e.src.0].out_edges.retain(|&x| x != edge);
        self.nodes[e.dst.0].in_edges.retain(|&x| x != edge);
        // Mark the slot dead by making it a self-loop on a sentinel
        // fraction; traversals never see it because no node lists it.
        self.edges[edge.0].fraction = Ratio::ZERO;
        e
    }

    /// Whether an edge is still attached (not cut).
    pub fn edge_is_live(&self, edge: EdgeId) -> bool {
        let e = &self.edges[edge.0];
        self.nodes[e.src.0].out_edges.contains(&edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topological_order_respects_edges() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let k = d.add_mix("K", &[(a, 1), (b, 1)], 0).unwrap();
        let o = d.add_output("out", k);
        let order = d.topological_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(k));
        assert!(pos(b) < pos(k));
        assert!(pos(k) < pos(o));
    }

    #[test]
    fn cycle_is_detected() {
        let mut d = Dag::new();
        let x = d.add_node("x", NodeKind::Process { op: "p".into() });
        let y = d.add_node("y", NodeKind::Process { op: "p".into() });
        d.add_edge(x, y, Ratio::ONE);
        d.add_edge(y, x, Ratio::ONE);
        assert!(matches!(d.topological_order(), Err(DagError::Cycle)));
    }

    #[test]
    fn redirect_edge_src_moves_use() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let a2 = d.add_input("A2");
        let b = d.add_input("B");
        let k = d.add_mix("K", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_output("out", k);
        let e = d.in_edges(k)[0];
        assert_eq!(d.edge(e).src, a);
        d.redirect_edge_src(e, a2);
        assert_eq!(d.edge(e).src, a2);
        assert_eq!(d.num_uses(a), 0);
        assert_eq!(d.num_uses(a2), 1);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn cut_edge_detaches() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_process("heat", "incubate", a);
        d.add_output("out", p);
        let e = d.in_edges(p)[0];
        let cut = d.cut_edge(e);
        assert_eq!(cut.src, a);
        assert_eq!(d.num_uses(a), 0);
        assert!(d.in_edges(p).is_empty());
        assert!(!d.edge_is_live(e));
    }

    #[test]
    fn find_node_by_name() {
        let mut d = Dag::new();
        let a = d.add_input("Glucose");
        assert_eq!(d.find_node("Glucose"), Some(a));
        assert_eq!(d.find_node("missing"), None);
    }
}
