//! In-place assay edits and dirty slices for incremental replanning.
//!
//! A push-mode session retains its DAG across edits; each edit is
//! *diffed* against the retained graph ([`set_mix_ratio`] returns only
//! the edges whose fraction actually changed) and the downstream
//! replanner recomputes just the dirty backward slice in reverse
//! topological order ([`Dag::dirty_slice`]). Structural edits that
//! cannot be expressed in place (removing a node from the append-only
//! arena) rebuild via [`rebuild_without`] with a stable id remap.

use std::cmp::Reverse;
use std::error::Error;
use std::fmt;

use aqua_rational::Ratio;

use crate::graph::{Dag, EdgeId, NodeId, NodeKind};
use crate::validate::DagError;

/// Error applying an edit to a retained DAG.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EditError {
    /// The edited node is not a mix (ratios only exist on mixes).
    NotAMix {
        /// Name of the node.
        node: String,
    },
    /// The edit's source set does not match the mix's current inputs —
    /// that is a topology change, not a ratio change.
    SourceMismatch {
        /// Name of the edited mix.
        node: String,
    },
    /// A ratio part was zero (parts must be positive).
    ZeroPart {
        /// Name of the edited mix.
        node: String,
    },
    /// The removed node still has consumers.
    HasConsumers {
        /// Name of the node.
        node: String,
    },
    /// Exact arithmetic overflowed while normalizing parts.
    Arithmetic,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::NotAMix { node } => write!(f, "node `{node}` is not a mix"),
            EditError::SourceMismatch { node } => write!(
                f,
                "ratio edit on `{node}` names different sources than its current inputs"
            ),
            EditError::ZeroPart { node } => {
                write!(f, "ratio edit on `{node}` has a zero part")
            }
            EditError::HasConsumers { node } => {
                write!(f, "node `{node}` still has consumers")
            }
            EditError::Arithmetic => write!(f, "edit arithmetic overflowed"),
        }
    }
}

impl Error for EditError {}

/// Rewrites a mix's in-edge fractions from integer ratio parts, keyed
/// by source node. Returns the *diff*: only the edges whose fraction
/// actually changed, with their new value (empty means the edit was a
/// no-op). The source set must equal the mix's current inputs — one
/// part per in-edge — since anything else is a topology change.
///
/// # Errors
///
/// See [`EditError`]. On error the DAG is unchanged.
pub fn set_mix_ratio(
    dag: &mut Dag,
    node: NodeId,
    parts: &[(NodeId, u64)],
) -> Result<Vec<(EdgeId, Ratio)>, EditError> {
    let name = || dag.node(node).name.clone();
    if !matches!(dag.node(node).kind, NodeKind::Mix { .. }) {
        return Err(EditError::NotAMix { node: name() });
    }
    let ins: Vec<EdgeId> = dag.in_edges(node).to_vec();
    if ins.len() != parts.len() {
        return Err(EditError::SourceMismatch { node: name() });
    }
    let mut total: u64 = 0;
    for &(_, p) in parts {
        if p == 0 {
            return Err(EditError::ZeroPart { node: name() });
        }
        total = total.checked_add(p).ok_or(EditError::Arithmetic)?;
    }
    // Match each in-edge to exactly one part by source node.
    let mut used = vec![false; parts.len()];
    let mut new_fractions = Vec::with_capacity(ins.len());
    for &e in &ins {
        let src = dag.edge(e).src;
        let Some(i) = parts
            .iter()
            .enumerate()
            .position(|(i, &(s, _))| s == src && !used[i])
        else {
            return Err(EditError::SourceMismatch { node: name() });
        };
        used[i] = true;
        let f = Ratio::new(parts[i].1 as i128, total as i128).map_err(|_| EditError::Arithmetic)?;
        new_fractions.push((e, f));
    }
    let changed: Vec<(EdgeId, Ratio)> = new_fractions
        .into_iter()
        .filter(|&(e, f)| dag.edge(e).fraction != f)
        .collect();
    for &(e, f) in &changed {
        dag.set_edge_fraction(e, f);
    }
    Ok(changed)
}

/// Rebuilds the DAG without `node` (which must have no consumers) and
/// without its in-edges. Returns the new DAG and the node remap:
/// `remap[old.index()]` is the node's id in the new graph, `None` for
/// the removed node. Live edges are compacted; dead (cut) edge slots
/// are dropped.
///
/// # Errors
///
/// Returns [`EditError::HasConsumers`] if the node has live out-edges.
pub fn rebuild_without(dag: &Dag, node: NodeId) -> Result<(Dag, Vec<Option<NodeId>>), EditError> {
    if dag.out_edges(node).iter().any(|&e| dag.edge_is_live(e)) {
        return Err(EditError::HasConsumers {
            node: dag.node(node).name.clone(),
        });
    }
    let mut out = Dag::new();
    let mut remap: Vec<Option<NodeId>> = Vec::with_capacity(dag.num_nodes());
    for id in dag.node_ids() {
        if id == node {
            remap.push(None);
        } else {
            let n = dag.node(id);
            remap.push(Some(out.add_node(n.name.clone(), n.kind.clone())));
        }
    }
    for e in dag.edge_ids() {
        if !dag.edge_is_live(e) {
            continue;
        }
        let edge = dag.edge(e);
        if edge.dst == node {
            continue;
        }
        let (Some(src), Some(dst)) = (remap[edge.src.index()], remap[edge.dst.index()]) else {
            continue;
        };
        out.add_edge(src, dst, edge.fraction);
    }
    Ok((out, remap))
}

impl Dag {
    /// Topological position per node (`pos[n.index()]` is the node's
    /// rank in one fixed topological order). Positions let callers sort
    /// arbitrary node sets into (reverse) topological order in
    /// `O(k log k)` without re-walking the graph.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Cycle`] if the graph has a cycle.
    pub fn topo_positions(&self) -> Result<Vec<usize>, DagError> {
        let order = self.topological_order()?;
        let mut pos = vec![0usize; self.num_nodes()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        Ok(pos)
    }

    /// The dirty slice of an edit at `target`: every node whose Vnorm
    /// an upstream-propagating recompute must revisit — the backward
    /// slice of `target`, including it — sorted into *reverse*
    /// topological order using `topo_pos` (from [`Dag::topo_positions`]
    /// on this graph). The order is deterministic: ties are impossible
    /// because positions are a permutation.
    pub fn dirty_slice(&self, target: NodeId, topo_pos: &[usize]) -> Vec<NodeId> {
        let mut slice = self.backward_slice(target);
        slice.sort_by_key(|id| Reverse(topo_pos[id.index()]));
        slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    fn diamond() -> (Dag, [NodeId; 4]) {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 4)], 0).unwrap();
        let o = d.add_output("o", m);
        (d, [a, b, m, o])
    }

    #[test]
    fn ratio_edit_returns_only_changed_edges() {
        let (mut d, [a, b, m, _]) = diamond();
        let changed = set_mix_ratio(&mut d, m, &[(a, 1), (b, 4)]).unwrap();
        assert!(changed.is_empty(), "same ratio must be a no-op diff");
        let changed = set_mix_ratio(&mut d, m, &[(b, 9), (a, 1)]).unwrap();
        assert_eq!(changed.len(), 2);
        assert_eq!(d.edge(d.in_edges(m)[0]).fraction, r(1, 10));
        assert_eq!(d.edge(d.in_edges(m)[1]).fraction, r(9, 10));
        assert!(d.validate().is_ok());
    }

    #[test]
    fn ratio_edit_rejects_topology_changes() {
        let (mut d, [a, _, m, o]) = diamond();
        let c = d.add_input("C");
        assert!(matches!(
            set_mix_ratio(&mut d, m, &[(a, 1), (c, 4)]),
            Err(EditError::SourceMismatch { .. })
        ));
        assert!(matches!(
            set_mix_ratio(&mut d, m, &[(a, 1)]),
            Err(EditError::SourceMismatch { .. })
        ));
        assert!(matches!(
            set_mix_ratio(&mut d, o, &[(m, 1)]),
            Err(EditError::NotAMix { .. })
        ));
        let b = d.in_edges(m)[1];
        let b = d.edge(b).src;
        assert!(matches!(
            set_mix_ratio(&mut d, m, &[(a, 0), (b, 1)]),
            Err(EditError::ZeroPart { .. })
        ));
    }

    #[test]
    fn rebuild_without_drops_node_and_in_edges() {
        let (d, [a, b, m, o]) = diamond();
        let (rebuilt, remap) = rebuild_without(&d, o).unwrap();
        assert_eq!(rebuilt.num_nodes(), 3);
        assert_eq!(rebuilt.num_edges(), 2);
        assert!(remap[o.index()].is_none());
        let new_m = remap[m.index()].unwrap();
        assert_eq!(rebuilt.node(new_m).name, "m");
        assert_eq!(rebuilt.num_uses(new_m), 0);
        assert_eq!(rebuilt.num_uses(remap[a.index()].unwrap()), 1);
        assert_eq!(rebuilt.num_uses(remap[b.index()].unwrap()), 1);
        assert!(rebuilt.validate().is_ok());
    }

    #[test]
    fn rebuild_without_rejects_interior_nodes() {
        let (d, [_, _, m, _]) = diamond();
        assert!(matches!(
            rebuild_without(&d, m),
            Err(EditError::HasConsumers { .. })
        ));
    }

    #[test]
    fn dirty_slice_is_reverse_topological() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let k = d.add_mix("K", &[(a, 1), (b, 1)], 0).unwrap();
        let m = d.add_mix("M", &[(k, 1), (b, 1)], 0).unwrap();
        d.add_output("o", m);
        let pos = d.topo_positions().unwrap();
        let slice = d.dirty_slice(m, &pos);
        assert_eq!(slice.len(), 4);
        assert_eq!(slice[0], m);
        for w in slice.windows(2) {
            assert!(pos[w[0].index()] > pos[w[1].index()]);
        }
    }
}
