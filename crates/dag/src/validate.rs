//! Structural validation of assay DAGs.

use std::error::Error;
use std::fmt;

use aqua_rational::Ratio;

use crate::graph::{Dag, NodeId, NodeKind};

/// Structural error in an assay DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// The graph contains a cycle.
    Cycle,
    /// A node's in-degree is invalid for its kind.
    BadInDegree {
        /// The offending node's name.
        node: String,
        /// Its actual in-degree.
        found: usize,
        /// Human-readable expectation.
        expected: &'static str,
    },
    /// A node's out-degree is invalid for its kind.
    BadOutDegree {
        /// The offending node's name.
        node: String,
        /// Its actual out-degree.
        found: usize,
        /// Human-readable expectation.
        expected: &'static str,
    },
    /// A node's in-edge fractions do not sum to one.
    FractionsNotNormalized {
        /// The offending node's name.
        node: String,
        /// The actual sum.
        sum: Ratio,
    },
    /// An edge fraction is zero or negative.
    NonPositiveFraction {
        /// The offending edge's source node name.
        src: String,
        /// The offending edge's destination node name.
        dst: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cycle => write!(f, "assay graph contains a cycle"),
            DagError::BadInDegree {
                node,
                found,
                expected,
            } => write!(
                f,
                "node `{node}` has in-degree {found}, expected {expected}"
            ),
            DagError::BadOutDegree {
                node,
                found,
                expected,
            } => write!(
                f,
                "node `{node}` has out-degree {found}, expected {expected}"
            ),
            DagError::FractionsNotNormalized { node, sum } => write!(
                f,
                "in-edge fractions of node `{node}` sum to {sum}, expected 1"
            ),
            DagError::NonPositiveFraction { src, dst } => {
                write!(f, "edge {src} -> {dst} has a non-positive fraction")
            }
        }
    }
}

impl Error for DagError {}

impl Dag {
    /// Checks structural invariants:
    ///
    /// * acyclicity;
    /// * source kinds (input, constrained input) have no in-edges, sink
    ///   kinds (output, excess) have no out-edges and exactly one in-edge;
    /// * process/separate nodes have exactly one in-edge; mixes at least
    ///   one;
    /// * every node's in-edge fractions sum to 1 (excess edges excepted —
    ///   their fraction is a share of the *source*, not of the sink's
    ///   input);
    /// * all fractions are strictly positive.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), DagError> {
        self.topological_order()?;
        for id in self.node_ids() {
            self.validate_node(id)?;
        }
        for eid in self.edge_ids() {
            if !self.edge_is_live(eid) {
                continue;
            }
            let e = self.edge(eid);
            if !e.fraction.is_positive() {
                return Err(DagError::NonPositiveFraction {
                    src: self.node(e.src).name.clone(),
                    dst: self.node(e.dst).name.clone(),
                });
            }
        }
        Ok(())
    }

    fn validate_node(&self, id: NodeId) -> Result<(), DagError> {
        let node = self.node(id);
        let ins = self.in_edges(id).len();
        let outs = self.out_edges(id).len();
        let bad_in = |expected| {
            Err(DagError::BadInDegree {
                node: node.name.clone(),
                found: ins,
                expected,
            })
        };
        let bad_out = |expected| {
            Err(DagError::BadOutDegree {
                node: node.name.clone(),
                found: outs,
                expected,
            })
        };
        match &node.kind {
            NodeKind::Input | NodeKind::ConstrainedInput => {
                if ins != 0 {
                    return bad_in("0 (source node)");
                }
            }
            NodeKind::Mix { .. } => {
                if ins == 0 {
                    return bad_in("at least 1");
                }
            }
            NodeKind::Process { .. } | NodeKind::Separate { .. } => {
                if ins != 1 {
                    return bad_in("exactly 1");
                }
            }
            NodeKind::Output | NodeKind::Excess => {
                if ins != 1 {
                    return bad_in("exactly 1");
                }
                if outs != 0 {
                    return bad_out("0 (sink node)");
                }
            }
        }
        // Fraction normalization: the in-edge fractions of a node must
        // sum to 1 — except sinks fed by excess edges, whose fraction is
        // relative to the source.
        if ins > 0 && node.kind != NodeKind::Excess {
            let sum = Ratio::checked_sum(self.in_edges(id).iter().map(|&e| self.edge(e).fraction))
                .map_err(|_| DagError::FractionsNotNormalized {
                    node: node.name.clone(),
                    sum: Ratio::ZERO,
                })?;
            if sum != Ratio::ONE {
                return Err(DagError::FractionsNotNormalized {
                    node: node.name.clone(),
                    sum,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_figure2_dag_passes() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
        let l = d.add_mix("L", &[(b, 2), (c, 1)], 0).unwrap();
        let m = d.add_mix("M", &[(k, 2), (l, 1)], 0).unwrap();
        let n = d.add_mix("N", &[(l, 2), (c, 3)], 0).unwrap();
        d.add_output("M_out", m);
        d.add_output("N_out", n);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn input_with_in_edge_fails() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        d.add_edge(a, b, Ratio::ONE);
        assert!(matches!(d.validate(), Err(DagError::BadInDegree { .. })));
    }

    #[test]
    fn output_with_out_edge_fails() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let o = d.add_output("out", a);
        let p = d.add_node("p", NodeKind::Process { op: "x".into() });
        d.add_edge(o, p, Ratio::ONE);
        assert!(matches!(d.validate(), Err(DagError::BadOutDegree { .. })));
    }

    #[test]
    fn unnormalized_fractions_fail() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_node("m", NodeKind::Mix { seconds: 0 });
        d.add_edge(a, m, Ratio::new(1, 2).unwrap());
        d.add_edge(b, m, Ratio::new(1, 3).unwrap()); // sums to 5/6
        d.add_output("o", m);
        assert!(matches!(
            d.validate(),
            Err(DagError::FractionsNotNormalized { .. })
        ));
    }

    #[test]
    fn excess_edges_are_exempt_from_normalization() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("c'", &[(a, 1), (b, 9)], 0).unwrap();
        // 9/10 of c' discarded.
        d.add_excess("ex", m, Ratio::new(9, 10).unwrap());
        let m2 = d
            .add_mix_exact("c", &[(m, Ratio::ONE), (b, Ratio::from_int(9))], 0)
            .unwrap();
        d.add_output("o", m2);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn zero_fraction_edge_fails() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_node("p", NodeKind::Process { op: "x".into() });
        d.add_edge(a, p, Ratio::ONE);
        d.add_output("o", p);
        // Sneak in a dead-weight zero edge.
        let b = d.add_input("B");
        let m = d.add_node("m", NodeKind::Mix { seconds: 0 });
        d.add_edge(b, m, Ratio::ZERO);
        d.add_output("o2", m);
        assert!(d.validate().is_err());
    }

    #[test]
    fn multi_input_process_fails() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let p = d.add_node("p", NodeKind::Process { op: "x".into() });
        d.add_edge(a, p, Ratio::new(1, 2).unwrap());
        d.add_edge(b, p, Ratio::new(1, 2).unwrap());
        d.add_output("o", p);
        assert!(matches!(d.validate(), Err(DagError::BadInDegree { .. })));
    }
}
