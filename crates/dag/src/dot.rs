//! Graphviz export for debugging and documentation.

use std::fmt::Write as _;

use crate::graph::{Dag, NodeKind};

impl Dag {
    /// Renders the DAG in Graphviz `dot` syntax.
    ///
    /// Node shapes encode kinds: inputs are houses, mixes are boxes,
    /// separations are trapezia, outputs are double circles, excess
    /// nodes are grey diamonds. Edges are labeled with their fractions.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_dag::Dag;
    ///
    /// let mut d = Dag::new();
    /// let a = d.add_input("A");
    /// d.add_output("out", a);
    /// let dot = d.to_dot("tiny");
    /// assert!(dot.starts_with("digraph tiny {"));
    /// assert!(dot.contains("\"A\""));
    /// ```
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {title} {{");
        let _ = writeln!(out, "  rankdir=TB;");
        for id in self.node_ids() {
            let node = self.node(id);
            let shape = match node.kind {
                NodeKind::Input => "house",
                NodeKind::ConstrainedInput => "invhouse",
                NodeKind::Mix { .. } => "box",
                NodeKind::Process { .. } => "ellipse",
                NodeKind::Separate { .. } => "trapezium",
                NodeKind::Output => "doublecircle",
                NodeKind::Excess => "diamond",
            };
            let style = if node.kind == NodeKind::Excess {
                ", style=filled, fillcolor=gray80"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}\", shape={shape}{style}];",
                id.index(),
                node.name
            );
        }
        for eid in self.edge_ids() {
            if !self.edge_is_live(eid) {
                continue;
            }
            let e = self.edge(eid);
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                e.src.index(),
                e.dst.index(),
                e.fraction
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Dag;

    #[test]
    fn dot_includes_all_live_edges() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
        d.add_output("o", k);
        let dot = d.to_dot("g");
        assert!(dot.contains("label=\"1/5\""));
        assert!(dot.contains("label=\"4/5\""));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn cut_edges_are_omitted() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_process("p", "incubate", a);
        d.add_output("o", p);
        let e = d.in_edges(p)[0];
        d.cut_edge(e);
        let dot = d.to_dot("g");
        // Only the p->o edge remains.
        assert_eq!(dot.matches(" -> ").count(), 1);
    }
}
