//! Backward slices (Tip, 1995) over the assay DAG.
//!
//! The backward slice of a node is the set of nodes whose re-execution
//! regenerates that node's fluid. Regeneration (Biostream's reactive
//! policy, used as the paper's fallback) re-executes a slice; static
//! replication (§3.4.2) replicates part of one.

use std::collections::HashSet;

use crate::graph::{Dag, NodeId};

impl Dag {
    /// All nodes that transitively feed `target`, including `target`.
    ///
    /// The result is in no particular order; combine with
    /// [`Dag::topological_order`] for execution order.
    pub fn backward_slice(&self, target: NodeId) -> Vec<NodeId> {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![target];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            for &e in self.in_edges(id) {
                stack.push(self.edge(e).src);
            }
        }
        seen.into_iter().collect()
    }

    /// All nodes transitively reachable from `source`, including it.
    ///
    /// Used by §3.5 partitioning to find nodes that transitively lead to
    /// an unknown-volume instruction.
    pub fn forward_slice(&self, source: NodeId) -> Vec<NodeId> {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![source];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            for &e in self.out_edges(id) {
                stack.push(self.edge(e).dst);
            }
        }
        seen.into_iter().collect()
    }

    /// Whether `from` can reach `to` along edges.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.forward_slice(from).contains(&to)
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Dag;

    #[test]
    fn backward_slice_of_diamond() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let k = d.add_mix("K", &[(a, 1), (b, 1)], 0).unwrap();
        let l = d.add_mix("L", &[(b, 1), (c, 1)], 0).unwrap();
        let m = d.add_mix("M", &[(k, 1), (l, 1)], 0).unwrap();
        d.add_output("o", m);
        let mut slice = d.backward_slice(m);
        slice.sort();
        assert_eq!(slice, vec![a, b, c, k, l, m]);
        let mut slice_k = d.backward_slice(k);
        slice_k.sort();
        assert_eq!(slice_k, vec![a, b, k]);
    }

    #[test]
    fn forward_slice_and_reachability() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let k = d.add_mix("K", &[(a, 1), (b, 1)], 0).unwrap();
        let o = d.add_output("o", k);
        assert!(d.reaches(a, o));
        assert!(!d.reaches(o, a));
        let mut fs = d.forward_slice(b);
        fs.sort();
        assert_eq!(fs, vec![b, k, o]);
    }
}
