//! Assay DAG intermediate representation (Figure 2 of the paper).
//!
//! Nodes represent operations — fluid inputs, volume-aggregating mixes,
//! pass-through processing steps (incubate/sense), separations, final
//! outputs — and edges represent true dependences: *this* node's output
//! fluid is consumed by *that* node. Each edge carries the exact
//! fraction of the consumer's total input contributed by that fluid
//! (e.g. a `mix A:B in ratio 1:4` node has in-edge fractions `1/5` and
//! `4/5`).
//!
//! The DAG is the substrate of everything in `aqua-volume`: DAGSolve's
//! two passes, the LP formulation, cascading, static replication, and
//! run-time partitioning are all defined as computations or rewrites on
//! this graph.
//!
//! # Examples
//!
//! Building Figure 2's running example:
//!
//! ```
//! use aqua_dag::{Dag, Ratio};
//!
//! let mut dag = Dag::new();
//! let a = dag.add_input("A");
//! let b = dag.add_input("B");
//! let c = dag.add_input("C");
//! let k = dag.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
//! let l = dag.add_mix("L", &[(b, 2), (c, 1)], 0).unwrap();
//! let m = dag.add_mix("M", &[(k, 2), (l, 1)], 0).unwrap();
//! let n = dag.add_mix("N", &[(l, 2), (c, 3)], 0).unwrap();
//! dag.add_output("outM", m);
//! dag.add_output("outN", n);
//! assert_eq!(dag.num_nodes(), 9);
//! assert!(dag.validate().is_ok());
//! // The A -> K edge carries 1/5 of K's input.
//! let e = dag.in_edges(k)[0];
//! assert_eq!(dag.edge(e).fraction, Ratio::new(1, 5).unwrap());
//! ```

#![warn(missing_docs)]

mod build;
mod dot;
pub mod edit;
mod graph;
mod slice;
mod validate;

pub use aqua_rational::Ratio;
pub use edit::{rebuild_without, set_mix_ratio, EditError};
pub use graph::{Dag, Edge, EdgeId, Node, NodeId, NodeKind};
pub use validate::DagError;
