//! Constant evaluation and loop unrolling: AST -> [`FlatAssay`].

use std::collections::HashMap;

use aqua_rational::Ratio;

use crate::ast::*;
use crate::diag::{LangError, Span};
use crate::flat::{FlatAssay, FlatFluid, FlatOp, FluidId};

/// Safety valve against accidental unroll explosions.
const MAX_OPS: usize = 2_000_000;

/// Unrolls and constant-folds a parsed assay.
///
/// # Errors
///
/// Returns [`LangError`] for undeclared fluids/vars, non-constant loop
/// bounds, zero-total mix ratios, out-of-range array indices, or unroll
/// explosions.
pub fn compile_to_flat_ast(assay: &Assay) -> Result<FlatAssay, LangError> {
    let mut cx = Cx {
        flat: FlatAssay {
            name: assay.name.clone(),
            fluids: Vec::new(),
            ops: Vec::new(),
        },
        scalars: HashMap::new(),
        fluid_decls: HashMap::new(),
        var_decls: HashMap::new(),
        bindings: HashMap::new(),
        it: None,
    };
    for (name, len) in &assay.fluids {
        cx.fluid_decls.insert(name.clone(), *len);
    }
    for (name, dims) in &assay.vars {
        cx.var_decls.insert(name.clone(), dims.clone());
    }
    cx.run_block(&assay.body)?;
    Ok(cx.flat)
}

struct Cx {
    flat: FlatAssay,
    /// Scalar environment: name + indices -> value.
    scalars: HashMap<(String, Vec<i64>), i64>,
    fluid_decls: HashMap<String, Option<u64>>,
    var_decls: HashMap<String, Vec<u64>>,
    /// Current binding of each concrete fluid name to its instance.
    bindings: HashMap<String, FluidId>,
    /// The previous statement's product.
    it: Option<FluidId>,
}

impl Cx {
    fn run_block(&mut self, body: &[Stmt]) -> Result<(), LangError> {
        for stmt in body {
            self.run_stmt(stmt)?;
        }
        Ok(())
    }

    fn run_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        if self.flat.ops.len() > MAX_OPS {
            return Err(LangError::new(
                stmt.span(),
                format!("assay unrolls to more than {MAX_OPS} operations"),
            ));
        }
        match stmt {
            Stmt::Assign {
                var,
                indices,
                value,
                span,
            } => {
                if !self.var_decls.contains_key(var) {
                    return Err(LangError::new(*span, format!("undeclared VAR `{var}`")));
                }
                let idx = self.eval_indices(indices)?;
                let v = self.eval(value)?;
                self.scalars.insert((var.clone(), idx), v);
                Ok(())
            }
            Stmt::Mix {
                dst,
                fluids,
                ratios,
                seconds,
                span,
            } => {
                let mut parts = Vec::with_capacity(fluids.len());
                for (i, f) in fluids.iter().enumerate() {
                    let id = self.use_fluid(f)?;
                    let part = if ratios.is_empty() {
                        Ratio::ONE
                    } else {
                        let v = self.eval(&ratios[i])?;
                        if v < 0 {
                            return Err(LangError::new(
                                ratios[i].span(),
                                format!("negative ratio part {v}"),
                            ));
                        }
                        Ratio::from_int(v as i128)
                    };
                    parts.push((id, part));
                }
                if parts.iter().all(|(_, r)| r.is_zero()) {
                    return Err(LangError::new(*span, "mix ratios are all zero"));
                }
                // Drop zero-ratio components entirely (mixing none of a
                // fluid is not a use).
                parts.retain(|(_, r)| r.is_positive());
                let seconds = self.eval_seconds(seconds)?;
                let out = self.produce(dst.as_ref(), "mix", *span)?;
                self.flat.ops.push(FlatOp::Mix {
                    out,
                    parts,
                    seconds,
                });
                Ok(())
            }
            Stmt::Incubate {
                fluid,
                temp,
                seconds,
                span,
            }
            | Stmt::Concentrate {
                fluid,
                temp,
                seconds,
                span,
            } => {
                let input = self.use_fluid(fluid)?;
                let temp_c = self.eval(temp)?;
                let seconds = self.eval_seconds(seconds)?;
                // The product rebinds the source name (incubating `x`
                // yields the new `x`) and becomes `it`.
                let rebind = if fluid.name == "it" {
                    None
                } else {
                    Some(fluid.clone())
                };
                let out = self.produce(rebind.as_ref(), "incubate", *span)?;
                let op = if matches!(stmt, Stmt::Incubate { .. }) {
                    FlatOp::Incubate {
                        out,
                        input,
                        temp_c,
                        seconds,
                    }
                } else {
                    FlatOp::Concentrate {
                        out,
                        input,
                        temp_c,
                        seconds,
                    }
                };
                self.flat.ops.push(op);
                Ok(())
            }
            Stmt::Separate {
                kind,
                src,
                matrix,
                using,
                seconds,
                effluent,
                waste,
                yield_hint,
                span,
            } => {
                let input = self.use_fluid(src)?;
                let seconds = self.eval_seconds(seconds)?;
                let out = self.produce(Some(effluent), "separate", *span)?;
                let waste_id = self.fresh_fluid(&self.resolve_name(waste)?, false);
                self.bindings.insert(self.resolve_name(waste)?, waste_id);
                let yield_hint = match yield_hint {
                    Some((p, q)) => Some(
                        Ratio::new(*p as i128, *q as i128)
                            .map_err(|_| LangError::new(*span, "invalid YIELD fraction"))?,
                    ),
                    None => None,
                };
                self.flat.ops.push(FlatOp::Separate {
                    out,
                    waste: waste_id,
                    input,
                    kind: *kind,
                    matrix: matrix.clone(),
                    using: using.clone(),
                    seconds,
                    yield_hint,
                });
                Ok(())
            }
            Stmt::Sense {
                mode,
                fluid,
                target,
                span: _,
            } => {
                let input = self.use_fluid(fluid)?;
                let target = self.render_target(target)?;
                self.flat.ops.push(FlatOp::Sense {
                    input,
                    mode: *mode,
                    target,
                });
                Ok(())
            }
            Stmt::Output {
                fluid,
                weight,
                span,
            } => {
                let input = self.use_fluid(fluid)?;
                let weight = match weight {
                    Some(w) => {
                        let v = self.eval(w)?;
                        u64::try_from(v).ok().filter(|&v| v > 0).ok_or_else(|| {
                            LangError::new(
                                *span,
                                format!("OUTPUT weight must be positive, got {v}"),
                            )
                        })?
                    }
                    None => 1,
                };
                self.flat.ops.push(FlatOp::Output { input, weight });
                Ok(())
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                span,
            } => {
                let lo = self.eval(from)?;
                let hi = self.eval(to)?;
                if hi - lo > 1_000_000 {
                    return Err(LangError::new(*span, "loop trip count is absurd"));
                }
                for i in lo..=hi {
                    self.scalars.insert((var.clone(), Vec::new()), i);
                    self.run_block(body)?;
                }
                Ok(())
            }
            Stmt::While {
                lhs,
                op,
                rhs,
                bound,
                body,
                span,
            } => {
                let bound = self.eval(bound)?;
                if !(0..=1_000_000).contains(&bound) {
                    return Err(LangError::new(*span, format!("absurd WHILE bound {bound}")));
                }
                let mut iterations = 0;
                while self.eval_cond(lhs, *op, rhs)? {
                    if iterations >= bound {
                        return Err(LangError::new(
                            *span,
                            format!(
                                "WHILE condition still holds after the declared bound of                                  {bound} iterations — the §3.5 hint is wrong"
                            ),
                        ));
                    }
                    self.run_block(body)?;
                    iterations += 1;
                }
                Ok(())
            }
            Stmt::If {
                lhs,
                op,
                rhs,
                then_body,
                else_body,
                span: _,
            } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                if self.eval_cond2(l, *op, r) {
                    self.run_block(then_body)
                } else {
                    self.run_block(else_body)
                }
            }
        }
    }

    fn eval_cond(&self, lhs: &Expr, op: CmpOp, rhs: &Expr) -> Result<bool, LangError> {
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        Ok(self.eval_cond2(l, op, r))
    }

    fn eval_cond2(&self, l: i64, op: CmpOp, r: i64) -> bool {
        match op {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    /// Resolves a fluid expression to the concrete instance consumed.
    fn use_fluid(&mut self, f: &FluidExpr) -> Result<FluidId, LangError> {
        if f.name == "it" {
            return self
                .it
                .ok_or_else(|| LangError::new(f.span, "`it` used before any product exists"));
        }
        let key = self.resolve_name(f)?;
        if let Some(&id) = self.bindings.get(&key) {
            return Ok(id);
        }
        // First use of a declared, never-produced fluid: an external
        // input.
        let base_declared = self.fluid_decls.contains_key(&f.name);
        if !base_declared {
            return Err(LangError::new(
                f.span,
                format!("undeclared fluid `{}`", f.name),
            ));
        }
        let id = self.fresh_fluid(&key, true);
        self.bindings.insert(key, id);
        Ok(id)
    }

    /// Creates the product instance of an operation and updates `it` /
    /// the destination binding.
    fn produce(
        &mut self,
        dst: Option<&FluidExpr>,
        what: &str,
        span: Span,
    ) -> Result<FluidId, LangError> {
        let id = match dst {
            Some(d) => {
                let key = self.resolve_name(d)?;
                if !self.fluid_decls.contains_key(&d.name) {
                    return Err(LangError::new(
                        span,
                        format!("undeclared fluid `{}`", d.name),
                    ));
                }
                let id = self.fresh_fluid(&key, false);
                self.bindings.insert(key, id);
                id
            }
            None => self.fresh_fluid(&format!("{}@{}", what, self.flat.ops.len()), false),
        };
        self.it = Some(id);
        Ok(id)
    }

    fn fresh_fluid(&mut self, name: &str, is_input: bool) -> FluidId {
        self.flat.fluids.push(FlatFluid {
            name: name.to_owned(),
            is_input,
        });
        FluidId(self.flat.fluids.len() - 1)
    }

    /// Renders `name[indices]` with indices evaluated.
    fn resolve_name(&self, f: &FluidExpr) -> Result<String, LangError> {
        if f.indices.is_empty() {
            return Ok(f.name.clone());
        }
        let mut out = f.name.clone();
        for idx in &f.indices {
            let v = self.eval(idx)?;
            if let Some(Some(len)) = self.fluid_decls.get(&f.name) {
                if v < 1 || v as u64 > *len {
                    return Err(LangError::new(
                        f.span,
                        format!("index {v} out of range for `{}[{len}]`", f.name),
                    ));
                }
            }
            out.push_str(&format!("[{v}]"));
        }
        Ok(out)
    }

    fn render_target(&self, e: &Expr) -> Result<String, LangError> {
        match e {
            Expr::Var(name, indices, _) => {
                let mut out = name.clone();
                for idx in indices {
                    out.push_str(&format!("[{}]", self.eval(idx)?));
                }
                Ok(out)
            }
            other => Err(LangError::new(
                other.span(),
                "SENSE target must be a variable",
            )),
        }
    }

    fn eval_indices(&self, indices: &[Expr]) -> Result<Vec<i64>, LangError> {
        indices.iter().map(|e| self.eval(e)).collect()
    }

    fn eval_seconds(&self, e: &Expr) -> Result<u64, LangError> {
        let v = self.eval(e)?;
        u64::try_from(v).map_err(|_| LangError::new(e.span(), format!("negative duration {v}")))
    }

    fn eval(&self, e: &Expr) -> Result<i64, LangError> {
        match e {
            Expr::Int(v, span) => i64::try_from(*v)
                .map_err(|_| LangError::new(*span, "integer literal overflows i64")),
            Expr::Var(name, indices, span) => {
                let idx = self.eval_indices(indices)?;
                self.scalars
                    .get(&(name.clone(), idx))
                    .copied()
                    .ok_or_else(|| {
                        LangError::new(*span, format!("variable `{name}` read before assignment"))
                    })
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                let out = match op {
                    BinOp::Add => l.checked_add(r),
                    BinOp::Sub => l.checked_sub(r),
                    BinOp::Mul => l.checked_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(LangError::new(*span, "division by zero"));
                        }
                        l.checked_div(r)
                    }
                };
                out.ok_or_else(|| LangError::new(*span, "scalar arithmetic overflowed"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn flat(src: &str) -> FlatAssay {
        compile_to_flat_ast(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn glucose_flattens_to_ten_ops() {
        let f = flat(
            "ASSAY glucose START
             fluid Glucose, Reagent, Sample;
             fluid a, b, c, d, e;
             VAR Result[5];
             a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
             SENSE OPTICAL it INTO Result[1];
             b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
             SENSE OPTICAL it INTO Result[2];
             c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
             SENSE OPTICAL it INTO Result[3];
             d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
             SENSE OPTICAL it INTO Result[4];
             e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
             SENSE OPTICAL it INTO Result[5];
             END",
        );
        assert_eq!(f.ops.len(), 10);
        // Inputs: Glucose, Reagent, Sample.
        assert_eq!(f.inputs().len(), 3);
        // Reagent is used 5 times, Glucose 4, Sample 1.
        let reagent = f
            .inputs()
            .into_iter()
            .find(|&i| f.fluid(i).name == "Reagent")
            .unwrap();
        assert_eq!(f.use_counts()[reagent.index()], 5);
    }

    #[test]
    fn for_loop_unrolls_with_arithmetic() {
        let f = flat(
            "ASSAY e START
             fluid inhibitor, diluent, Diluted_Inhibitor[4];
             VAR i, temp, dil;
             dil = 1;
             temp = 1;
             FOR i FROM 1 TO 4 START
               Diluted_Inhibitor[i] = MIX inhibitor AND diluent IN RATIOS 1:dil FOR 30;
               temp = temp * 10;
               dil = temp - 1;
             ENDFOR
             END",
        );
        assert_eq!(f.ops.len(), 4);
        // Dilution ratios: 1:1, 1:9, 1:99, 1:999.
        let expected = [1i128, 9, 99, 999];
        for (op, want) in f.ops.iter().zip(expected) {
            match op {
                FlatOp::Mix { parts, .. } => {
                    assert_eq!(parts[1].1, Ratio::from_int(want));
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn it_threads_through_statements() {
        let f = flat(
            "ASSAY g START
             fluid A, B;
             MIX A AND B FOR 30;
             INCUBATE it AT 37 FOR 30;
             SENSE OPTICAL it INTO R;
             END",
        );
        match (&f.ops[0], &f.ops[1], &f.ops[2]) {
            (
                FlatOp::Mix { out: mix_out, .. },
                FlatOp::Incubate {
                    out: inc_out,
                    input: inc_in,
                    ..
                },
                FlatOp::Sense {
                    input: sense_in, ..
                },
            ) => {
                assert_eq!(mix_out, inc_in);
                assert_eq!(inc_out, sense_in);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incubate_rebinds_named_fluid() {
        let f = flat(
            "ASSAY g START
             fluid A, B, x;
             x = MIX A AND B FOR 5;
             INCUBATE x AT 37 FOR 60;
             SENSE OPTICAL x INTO R;
             END",
        );
        // The sense consumes the *incubated* x, not the raw mix.
        match (&f.ops[1], &f.ops[2]) {
            (FlatOp::Incubate { out, .. }, FlatOp::Sense { input, .. }) => {
                assert_eq!(out, input)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn separate_without_hint_is_unknown_volume() {
        let f = flat(
            "ASSAY g START
             fluid s, m, b, e, w, out;
             fluid A, B;
             s = MIX A AND B FOR 5;
             SEPARATE s MATRIX m USING b FOR 30 INTO e AND w;
             MIX e AND A FOR 5;
             END",
        );
        match &f.ops[1] {
            FlatOp::Separate {
                yield_hint: None,
                matrix,
                ..
            } => assert_eq!(matrix, "m"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn yield_hint_becomes_fraction() {
        let f = flat(
            "ASSAY g START
             fluid s, m, b, e, w;
             fluid A, B;
             s = MIX A AND B FOR 5;
             LCSEPARATE s MATRIX m USING b FOR 30 INTO e AND w YIELD 1/2;
             SENSE OPTICAL e INTO R;
             END",
        );
        match &f.ops[1] {
            FlatOp::Separate { yield_hint, .. } => {
                assert_eq!(*yield_hint, Some(Ratio::new(1, 2).unwrap()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_folds_at_compile_time() {
        let f = flat(
            "ASSAY g START
             fluid A, B;
             VAR x;
             x = 5;
             IF x > 3 START
               MIX A AND B IN RATIOS 2:1 FOR 5;
             ELSE
               MIX A AND B IN RATIOS 1:2 FOR 5;
             ENDIF
             END",
        );
        assert_eq!(f.ops.len(), 1);
        match &f.ops[0] {
            FlatOp::Mix { parts, .. } => assert_eq!(parts[0].1, Ratio::from_int(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_for_undeclared_and_uninitialized() {
        let parse_flat = |src: &str| compile_to_flat_ast(&parse(src).unwrap());
        assert!(parse_flat(
            "ASSAY g START
             MIX A AND B FOR 5;
             END"
        )
        .is_err());
        assert!(parse_flat(
            "ASSAY g START
             fluid A, B;
             VAR t;
             MIX A AND B IN RATIOS 1:t FOR 5;
             END"
        )
        .is_err());
        assert!(parse_flat(
            "ASSAY g START
             fluid A;
             SENSE OPTICAL it INTO R;
             END"
        )
        .is_err());
    }

    #[test]
    fn zero_ratio_component_is_dropped() {
        let f = flat(
            "ASSAY g START
             fluid A, B, C;
             MIX A AND B AND C IN RATIOS 1:0:1 FOR 5;
             SENSE OPTICAL it INTO R;
             END",
        );
        match &f.ops[0] {
            FlatOp::Mix { parts, .. } => assert_eq!(parts.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_index_out_of_range_is_rejected() {
        let r = compile_to_flat_ast(
            &parse(
                "ASSAY g START
                 fluid D[2];
                 fluid A, B;
                 D[3] = MIX A AND B FOR 5;
                 END",
            )
            .unwrap(),
        );
        assert!(r.is_err());
    }
}

#[cfg(test)]
mod while_tests {
    use super::*;
    use crate::parse;

    #[test]
    fn while_unrolls_until_condition_fails() {
        let f = compile_to_flat_ast(
            &parse(
                "ASSAY w START
                 fluid A, B;
                 VAR n;
                 n = 0;
                 WHILE n < 3 BOUND 10 START
                   MIX A AND B FOR 5;
                   SENSE OPTICAL it INTO R[n];
                   n = n + 1;
                 ENDWHILE
                 END",
            )
            .unwrap(),
        )
        .unwrap();
        // 3 iterations x 2 fluid ops.
        assert_eq!(f.ops.len(), 6);
    }

    #[test]
    fn while_bound_violation_is_a_compile_error() {
        let err = compile_to_flat_ast(
            &parse(
                "ASSAY w START
                 fluid A, B;
                 VAR n;
                 n = 0;
                 WHILE n < 100 BOUND 3 START
                   MIX A AND B FOR 5;
                   n = n + 1;
                 ENDWHILE
                 END",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.message.contains("hint is wrong"), "{err}");
    }

    #[test]
    fn while_with_false_condition_runs_zero_times() {
        let f = compile_to_flat_ast(
            &parse(
                "ASSAY w START
                 fluid A, B;
                 VAR n;
                 n = 5;
                 WHILE n < 3 BOUND 10 START
                   MIX A AND B FOR 5;
                 ENDWHILE
                 MIX A AND B FOR 1;
                 END",
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(f.ops.len(), 1);
    }

    #[test]
    fn absurd_while_bound_is_rejected() {
        let err = compile_to_flat_ast(
            &parse(
                "ASSAY w START
                 fluid A, B;
                 VAR n;
                 n = 0;
                 WHILE n < 1 BOUND 99999999 START
                   MIX A AND B FOR 5;
                 ENDWHILE
                 END",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.message.contains("absurd"), "{err}");
    }
}
