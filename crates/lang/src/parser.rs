//! Recursive-descent parser for the assay language.

use crate::ast::*;
use crate::diag::{LangError, Span};
use crate::lexer::{Token, TokenKind};

pub(crate) fn parse_tokens(tokens: &[Token]) -> Result<Assay, LangError> {
    let mut p = Parser { tokens, pos: 0 };
    p.parse_assay()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn span_here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .or_else(|| self.tokens.last().map(|t| t.span))
            .unwrap_or_default()
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> LangError {
        LangError::new(self.span_here(), msg)
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<Span, LangError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                let s = t.span;
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(LangError::new(
                t.span,
                format!("expected {what}, found {:?}", t.kind),
            )),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span, LangError> {
        match self.peek() {
            Some(t) => {
                if let TokenKind::Ident(name) = &t.kind {
                    if name == kw {
                        let s = t.span;
                        self.pos += 1;
                        return Ok(s);
                    }
                }
                Err(LangError::new(
                    t.span,
                    format!("expected `{kw}`, found {:?}", t.kind),
                ))
            }
            None => Err(self.error(format!("expected `{kw}`, found end of input"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Ident(n), .. }) if n == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), LangError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(name),
                span,
            }) => {
                let out = (name.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            Some(t) => Err(LangError::new(
                t.span,
                format!("expected {what}, found {:?}", t.kind),
            )),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<(u64, Span), LangError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Int(v),
                span,
            }) => {
                let out = (*v, *span);
                self.pos += 1;
                Ok(out)
            }
            Some(t) => Err(LangError::new(
                t.span,
                format!("expected {what}, found {:?}", t.kind),
            )),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn parse_assay(&mut self) -> Result<Assay, LangError> {
        self.expect_keyword("ASSAY")?;
        let (name, _) = self.expect_ident("assay name")?;
        self.expect_keyword("START")?;
        let mut fluids = Vec::new();
        let mut vars = Vec::new();
        // Declarations may be interleaved with the body in the paper's
        // listings, but always precede first use; we accept them anywhere
        // at the top level before statements for simplicity, plus
        // interleaved.
        let mut body = Vec::new();
        loop {
            if self.eat_keyword("END") {
                break;
            }
            if self.at_keyword("fluid") {
                self.pos += 1;
                self.parse_decl_list(&mut fluids)?;
            } else if self.at_keyword("VAR") {
                self.pos += 1;
                self.parse_var_list(&mut vars)?;
            } else if self.peek().is_none() {
                return Err(self.error("missing `END`"));
            } else {
                body.push(self.parse_stmt()?);
            }
        }
        Ok(Assay {
            name,
            fluids,
            vars,
            body,
        })
    }

    fn parse_decl_list(&mut self, out: &mut Vec<(String, Option<u64>)>) -> Result<(), LangError> {
        loop {
            let (name, _) = self.expect_ident("fluid name")?;
            let mut len = None;
            if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LBracket)) {
                self.pos += 1;
                let (n, _) = self.expect_int("array length")?;
                self.expect_kind(&TokenKind::RBracket, "`]`")?;
                len = Some(n);
            }
            out.push((name, len));
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Comma) => {
                    self.pos += 1;
                }
                Some(TokenKind::Semicolon) => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected `,` or `;` in fluid declaration")),
            }
        }
    }

    fn parse_var_list(&mut self, out: &mut Vec<(String, Vec<u64>)>) -> Result<(), LangError> {
        loop {
            let (name, _) = self.expect_ident("variable name")?;
            let mut dims = Vec::new();
            while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LBracket)) {
                self.pos += 1;
                let (n, _) = self.expect_int("array dimension")?;
                self.expect_kind(&TokenKind::RBracket, "`]`")?;
                dims.push(n);
            }
            out.push((name, dims));
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Comma) => {
                    self.pos += 1;
                }
                Some(TokenKind::Semicolon) => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected `,` or `;` in VAR declaration")),
            }
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, LangError> {
        if self.at_keyword("FOR") {
            return self.parse_for();
        }
        if self.at_keyword("WHILE") {
            return self.parse_while();
        }
        if self.at_keyword("IF") {
            return self.parse_if();
        }
        for (kw, kind) in [
            ("SEPARATE", SepKind::Affinity),
            ("LCSEPARATE", SepKind::LiquidChromatography),
            ("CESEPARATE", SepKind::Electrophoresis),
            ("SIZESEPARATE", SepKind::Size),
        ] {
            if self.at_keyword(kw) {
                return self.parse_separate(kind);
            }
        }
        if self.at_keyword("MIX") {
            return self.parse_mix(None);
        }
        if self.at_keyword("INCUBATE") {
            return self.parse_incubate(false);
        }
        if self.at_keyword("CONCENTRATE") {
            return self.parse_incubate(true);
        }
        if self.at_keyword("SENSE") {
            return self.parse_sense();
        }
        if self.at_keyword("OUTPUT") {
            return self.parse_output();
        }
        // `name[...] = MIX ...` or scalar assignment.
        let (name, span) = self.expect_ident("statement")?;
        let mut indices = Vec::new();
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LBracket)) {
            self.pos += 1;
            indices.push(self.parse_expr()?);
            self.expect_kind(&TokenKind::RBracket, "`]`")?;
        }
        self.expect_kind(&TokenKind::Equals, "`=`")?;
        if self.at_keyword("MIX") {
            let dst = FluidExpr {
                name,
                indices,
                span,
            };
            return self.parse_mix(Some(dst));
        }
        let value = self.parse_expr()?;
        self.expect_kind(&TokenKind::Semicolon, "`;`")?;
        Ok(Stmt::Assign {
            var: name,
            indices,
            value,
            span,
        })
    }

    fn parse_fluid_expr(&mut self) -> Result<FluidExpr, LangError> {
        let (name, span) = self.expect_ident("fluid name")?;
        let mut indices = Vec::new();
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LBracket)) {
            self.pos += 1;
            indices.push(self.parse_expr()?);
            self.expect_kind(&TokenKind::RBracket, "`]`")?;
        }
        Ok(FluidExpr {
            name,
            indices,
            span,
        })
    }

    fn parse_mix(&mut self, dst: Option<FluidExpr>) -> Result<Stmt, LangError> {
        let span = self.expect_keyword("MIX")?;
        let mut fluids = vec![self.parse_fluid_expr()?];
        while self.eat_keyword("AND") {
            fluids.push(self.parse_fluid_expr()?);
        }
        let mut ratios = Vec::new();
        if self.eat_keyword("IN") {
            self.expect_keyword("RATIOS")?;
            ratios.push(self.parse_expr()?);
            while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Colon)) {
                self.pos += 1;
                ratios.push(self.parse_expr()?);
            }
            if ratios.len() != fluids.len() {
                return Err(LangError::new(
                    span,
                    format!(
                        "MIX of {} fluids has {} ratio parts",
                        fluids.len(),
                        ratios.len()
                    ),
                ));
            }
        }
        self.expect_keyword("FOR")?;
        let seconds = self.parse_expr()?;
        self.expect_kind(&TokenKind::Semicolon, "`;`")?;
        Ok(Stmt::Mix {
            dst,
            fluids,
            ratios,
            seconds,
            span,
        })
    }

    fn parse_separate(&mut self, kind: SepKind) -> Result<Stmt, LangError> {
        let span = self.bump().expect("checked keyword").span;
        let src = self.parse_fluid_expr()?;
        self.expect_keyword("MATRIX")?;
        let (matrix, _) = self.expect_ident("matrix fluid")?;
        self.expect_keyword("USING")?;
        let (using, _) = self.expect_ident("carrier fluid")?;
        self.expect_keyword("FOR")?;
        let seconds = self.parse_expr()?;
        self.expect_keyword("INTO")?;
        let effluent = self.parse_fluid_expr()?;
        self.expect_keyword("AND")?;
        let waste = self.parse_fluid_expr()?;
        let mut yield_hint = None;
        if self.eat_keyword("YIELD") {
            let (p, _) = self.expect_int("yield numerator")?;
            self.expect_kind(&TokenKind::Slash, "`/`")?;
            let (q, qspan) = self.expect_int("yield denominator")?;
            if q == 0 || p > q {
                return Err(LangError::new(qspan, "YIELD must be a fraction in (0, 1]"));
            }
            yield_hint = Some((p, q));
        }
        self.expect_kind(&TokenKind::Semicolon, "`;`")?;
        Ok(Stmt::Separate {
            kind,
            src,
            matrix,
            using,
            seconds,
            effluent,
            waste,
            yield_hint,
            span,
        })
    }

    fn parse_incubate(&mut self, concentrate: bool) -> Result<Stmt, LangError> {
        let span = self.bump().expect("checked keyword").span;
        let fluid = self.parse_fluid_expr()?;
        self.expect_keyword("AT")?;
        let temp = self.parse_expr()?;
        self.expect_keyword("FOR")?;
        let seconds = self.parse_expr()?;
        self.expect_kind(&TokenKind::Semicolon, "`;`")?;
        Ok(if concentrate {
            Stmt::Concentrate {
                fluid,
                temp,
                seconds,
                span,
            }
        } else {
            Stmt::Incubate {
                fluid,
                temp,
                seconds,
                span,
            }
        })
    }

    fn parse_sense(&mut self) -> Result<Stmt, LangError> {
        let span = self.expect_keyword("SENSE")?;
        let mode = if self.eat_keyword("OPTICAL") {
            SenseMode::Optical
        } else if self.eat_keyword("FLUORESCENCE") {
            SenseMode::Fluorescence
        } else {
            return Err(self.error("expected `OPTICAL` or `FLUORESCENCE` after SENSE"));
        };
        let fluid = self.parse_fluid_expr()?;
        self.expect_keyword("INTO")?;
        let target = self.parse_expr()?;
        self.expect_kind(&TokenKind::Semicolon, "`;`")?;
        Ok(Stmt::Sense {
            mode,
            fluid,
            target,
            span,
        })
    }

    fn parse_output(&mut self) -> Result<Stmt, LangError> {
        let span = self.expect_keyword("OUTPUT")?;
        let fluid = self.parse_fluid_expr()?;
        let weight = if self.eat_keyword("WEIGHT") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_kind(&TokenKind::Semicolon, "`;`")?;
        Ok(Stmt::Output {
            fluid,
            weight,
            span,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, LangError> {
        let span = self.expect_keyword("FOR")?;
        let (var, _) = self.expect_ident("loop variable")?;
        self.expect_keyword("FROM")?;
        let from = self.parse_expr()?;
        self.expect_keyword("TO")?;
        let to = self.parse_expr()?;
        self.expect_keyword("START")?;
        let mut body = Vec::new();
        while !self.at_keyword("ENDFOR") {
            if self.peek().is_none() {
                return Err(self.error("missing `ENDFOR`"));
            }
            body.push(self.parse_stmt()?);
        }
        self.expect_keyword("ENDFOR")?;
        Ok(Stmt::For {
            var,
            from,
            to,
            body,
            span,
        })
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp, LangError> {
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            Some(TokenKind::EqEq) => CmpOp::Eq,
            Some(TokenKind::NotEq) => CmpOp::Ne,
            _ => return Err(self.error("expected comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    fn parse_while(&mut self) -> Result<Stmt, LangError> {
        let span = self.expect_keyword("WHILE")?;
        let lhs = self.parse_expr()?;
        let op = self.parse_cmp_op()?;
        let rhs = self.parse_expr()?;
        self.expect_keyword("BOUND")?;
        let bound = self.parse_expr()?;
        self.expect_keyword("START")?;
        let mut body = Vec::new();
        while !self.at_keyword("ENDWHILE") {
            if self.peek().is_none() {
                return Err(self.error("missing `ENDWHILE`"));
            }
            body.push(self.parse_stmt()?);
        }
        self.expect_keyword("ENDWHILE")?;
        Ok(Stmt::While {
            lhs,
            op,
            rhs,
            bound,
            body,
            span,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt, LangError> {
        let span = self.expect_keyword("IF")?;
        let lhs = self.parse_expr()?;
        let op = self.parse_cmp_op()?;
        let rhs = self.parse_expr()?;
        self.expect_keyword("START")?;
        let mut then_body = Vec::new();
        let mut else_body = Vec::new();
        loop {
            if self.at_keyword("ENDIF") {
                break;
            }
            if self.at_keyword("ELSE") {
                self.pos += 1;
                while !self.at_keyword("ENDIF") {
                    if self.peek().is_none() {
                        return Err(self.error("missing `ENDIF`"));
                    }
                    else_body.push(self.parse_stmt()?);
                }
                break;
            }
            if self.peek().is_none() {
                return Err(self.error("missing `ENDIF`"));
            }
            then_body.push(self.parse_stmt()?);
        }
        self.expect_keyword("ENDIF")?;
        Ok(Stmt::If {
            lhs,
            op,
            rhs,
            then_body,
            else_body,
            span,
        })
    }

    /// expr := term (("+"|"-") term)*
    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_term()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    /// term := atom (("*"|"/") atom)*
    fn parse_term(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_atom()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_atom()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_atom(&mut self) -> Result<Expr, LangError> {
        match self.peek().cloned() {
            Some(Token {
                kind: TokenKind::Int(v),
                span,
            }) => {
                self.pos += 1;
                Ok(Expr::Int(v, span))
            }
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token {
                kind: TokenKind::Ident(name),
                span,
            }) => {
                self.pos += 1;
                let mut indices = Vec::new();
                while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LBracket)) {
                    self.pos += 1;
                    indices.push(self.parse_expr()?);
                    self.expect_kind(&TokenKind::RBracket, "`]`")?;
                }
                Ok(Expr::Var(name, indices, span))
            }
            Some(t) => Err(LangError::new(
                t.span,
                format!("expected expression, found {:?}", t.kind),
            )),
            None => Err(self.error("expected expression, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Assay {
        parse_tokens(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_glucose_shape() {
        let a = parse(
            "ASSAY glucose START
             fluid Glucose, Reagent, Sample;
             fluid a, b;
             VAR Result[5];
             a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
             SENSE OPTICAL it INTO Result[1];
             END",
        );
        assert_eq!(a.name, "glucose");
        assert_eq!(a.fluids.len(), 5);
        assert_eq!(a.vars, vec![("Result".to_string(), vec![5])]);
        assert_eq!(a.body.len(), 2);
        assert!(matches!(&a.body[0], Stmt::Mix { dst: Some(d), fluids, .. }
            if d.name == "a" && fluids.len() == 2));
    }

    #[test]
    fn parses_separate_with_into() {
        let a = parse(
            "ASSAY g START
             fluid s, lectin, buffer1b, effluent, waste;
             SEPARATE s MATRIX lectin USING buffer1b FOR 30 INTO effluent AND waste;
             END",
        );
        assert!(matches!(
            &a.body[0],
            Stmt::Separate {
                kind: SepKind::Affinity,
                yield_hint: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_yield_hint() {
        let a = parse(
            "ASSAY g START
             fluid s, m, b, e, w;
             LCSEPARATE s MATRIX m USING b FOR 2400 INTO e AND w YIELD 1/2;
             END",
        );
        assert!(matches!(
            &a.body[0],
            Stmt::Separate {
                kind: SepKind::LiquidChromatography,
                yield_hint: Some((1, 2)),
                ..
            }
        ));
    }

    #[test]
    fn parses_for_loop_with_arithmetic() {
        let a = parse(
            "ASSAY e START
             fluid inhibitor, diluent, Diluted_Inhibitor[4];
             VAR i, temp, inhibitor_diluent;
             temp = 1;
             FOR i FROM 1 TO 4 START
               Diluted_Inhibitor[i] = MIX inhibitor AND diluent IN RATIOS 1:inhibitor_diluent FOR 30;
               temp = temp * 10;
               inhibitor_diluent = temp - 1;
             ENDFOR
             END",
        );
        assert_eq!(a.body.len(), 2);
        match &a.body[1] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 3);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else() {
        let a = parse(
            "ASSAY c START
             fluid A, B;
             VAR x;
             x = 3;
             IF x <= 3 START
               MIX A AND B FOR 5;
             ELSE
               MIX A AND B IN RATIOS 2:1 FOR 5;
             ENDIF
             END",
        );
        assert!(matches!(&a.body[1], Stmt::If { then_body, else_body, .. }
            if then_body.len() == 1 && else_body.len() == 1));
    }

    #[test]
    fn operator_precedence() {
        let a = parse(
            "ASSAY p START
             VAR x;
             x = 1 + 2 * 3;
             END",
        );
        match &a.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_mentions_line() {
        let err = parse_tokens(&lex("ASSAY x START\nBOGUS y;\nEND").unwrap()).unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn mismatched_ratio_arity_is_rejected() {
        let toks = lex("ASSAY m START
             fluid A, B, C;
             MIX A AND B AND C IN RATIOS 1:2 FOR 5;
             END")
        .unwrap();
        assert!(parse_tokens(&toks).is_err());
    }

    #[test]
    fn parses_output_with_weight() {
        let a = parse(
            "ASSAY g START
             fluid A, B, x;
             x = MIX A AND B FOR 5;
             OUTPUT x WEIGHT 3;
             END",
        );
        assert!(matches!(
            &a.body[1],
            Stmt::Output {
                weight: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_output_without_weight() {
        let a = parse(
            "ASSAY g START
             fluid A, B, x;
             x = MIX A AND B FOR 5;
             OUTPUT x;
             END",
        );
        assert!(matches!(&a.body[1], Stmt::Output { weight: None, .. }));
    }

    #[test]
    fn missing_end_is_rejected() {
        let toks = lex("ASSAY m START\nVAR x;").unwrap();
        assert!(parse_tokens(&toks).is_err());
    }
}
