//! The high-level assay language of §4.1.
//!
//! Assays are written in a small imperative language whose statements
//! mirror conventional wet-lab protocol notation (Figures 9–11 of the
//! paper):
//!
//! ```text
//! ASSAY glucose START
//! fluid Glucose, Reagent, Sample;
//! fluid a, b, c, d, e;
//! VAR Result[5];
//! a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
//! SENSE OPTICAL it INTO Result[1];
//! END
//! ```
//!
//! Supported constructs: `fluid` / `VAR` declarations (with arrays),
//! `MIX ... AND ... [IN RATIOS ...] FOR t`, `INCUBATE ... AT temp FOR
//! t`, `[LC]SEPARATE x MATRIX m USING b FOR t INTO eff AND waste
//! [YIELD r]`, `SENSE OPTICAL|FLUORESCENCE x INTO slot`,
//! `CONCENTRATE ... AT temp FOR t`, scalar arithmetic over `VAR`s,
//! `FOR i FROM a TO b START ... ENDFOR` (fully unrolled at compile
//! time), `WHILE cond BOUND n START ... ENDWHILE` (unknown-iteration
//! loops with the §3.5 programmer hint of an upper bound — a wrong
//! hint is a compile error), `IF`/`ELSE` over compile-time conditions,
//! and the `it` pseudo-fluid naming the previous statement's product.
//!
//! [`Assay`] implements `Display`, so parsed or programmatically built
//! assays can be formatted back to source text.
//!
//! The crate lowers source text to a [`FlatAssay`] — a fully unrolled,
//! constant-folded sequence of fluid operations with exact rational
//! ratios — which `aqua-compiler` turns into an assay DAG and AIS code.
//!
//! # Examples
//!
//! ```
//! use aqua_lang::compile_to_flat;
//!
//! let src = "
//! ASSAY demo START
//! fluid A, B;
//! MIX A AND B IN RATIOS 1 : 4 FOR 10;
//! SENSE OPTICAL it INTO R;
//! END";
//! let flat = compile_to_flat(src)?;
//! assert_eq!(flat.name, "demo");
//! assert_eq!(flat.ops.len(), 2);
//! # Ok::<(), aqua_lang::LangError>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod diag;
mod eval;
mod flat;
mod lexer;
mod parser;
mod print;

pub use ast::{Assay, Expr, SenseMode, SepKind, Stmt};
pub use diag::{LangError, Span};
pub use eval::compile_to_flat_ast;
pub use flat::{FlatAssay, FlatOp, FluidId};

/// Parses and unrolls an assay source into a [`FlatAssay`].
///
/// # Errors
///
/// Returns [`LangError`] with a source span for lexical, syntactic, or
/// semantic problems (undeclared fluids, non-constant loop bounds, ...).
pub fn compile_to_flat(src: &str) -> Result<FlatAssay, LangError> {
    let assay = parse(src)?;
    compile_to_flat_ast(&assay)
}

/// Parses an assay source into its AST.
///
/// # Errors
///
/// Returns [`LangError`] on lexical or syntax errors.
pub fn parse(src: &str) -> Result<Assay, LangError> {
    let tokens = lexer::lex(src)?;
    parser::parse_tokens(&tokens)
}
