//! Abstract syntax of the assay language.

use crate::diag::Span;

/// A parsed assay: name, declarations, statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Assay {
    /// The assay's name (from `ASSAY name START`).
    pub name: String,
    /// `fluid` declarations: (name, array length if any).
    pub fluids: Vec<(String, Option<u64>)>,
    /// `VAR` declarations: (name, array dimensions, possibly empty).
    pub vars: Vec<(String, Vec<u64>)>,
    /// The statement sequence.
    pub body: Vec<Stmt>,
}

/// Reference to a fluid: a bare name or an indexed array element.
#[derive(Debug, Clone, PartialEq)]
pub struct FluidExpr {
    /// Declared fluid name, or `it` for the previous product.
    pub name: String,
    /// Array indices (expressions over loop variables).
    pub indices: Vec<Expr>,
    /// Source position.
    pub span: Span,
}

/// A scalar expression over `VAR`s and literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(u64, Span),
    /// Variable reference (possibly array-indexed).
    Var(String, Vec<Expr>, Span),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        span: Span,
    },
}

impl Expr {
    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Var(_, _, s) => *s,
            Expr::Binary { span, .. } => *span,
        }
    }
}

/// Binary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
}

/// Comparison operators in `IF` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Which separation chemistry a `SEPARATE` statement requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SepKind {
    /// `SEPARATE ... MATRIX m` — affinity separation.
    Affinity,
    /// `LCSEPARATE` — liquid chromatography.
    LiquidChromatography,
    /// `CESEPARATE` — capillary electrophoresis.
    Electrophoresis,
    /// `SIZESEPARATE` — size-based.
    Size,
}

/// Which sensing modality a `SENSE` statement requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenseMode {
    /// `SENSE OPTICAL`.
    Optical,
    /// `SENSE FLUORESCENCE`.
    Fluorescence,
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = MIX f1 AND f2 [AND f3...] [IN RATIOS r1:r2[:r3...]] FOR t;`
    /// (`dst =` optional; the product is then only reachable as `it`).
    Mix {
        /// Optional destination fluid.
        dst: Option<FluidExpr>,
        /// The mixed fluids.
        fluids: Vec<FluidExpr>,
        /// Ratio expressions; empty = all equal.
        ratios: Vec<Expr>,
        /// Mixing time (seconds).
        seconds: Expr,
        /// Source position.
        span: Span,
    },
    /// `[dst =] [LC|CE|SIZE]SEPARATE src MATRIX m USING b FOR t INTO eff
    /// AND waste [YIELD p / q];`
    Separate {
        /// Which separation chemistry.
        kind: SepKind,
        /// The fluid being separated.
        src: FluidExpr,
        /// The affinity/chromatography matrix fluid.
        matrix: String,
        /// The carrier/pusher buffer.
        using: String,
        /// Separation time (seconds).
        seconds: Expr,
        /// Name bound to the effluent stream.
        effluent: FluidExpr,
        /// Name bound to the waste stream.
        waste: FluidExpr,
        /// Optional programmer hint: known output fraction `p/q`
        /// (absent = volume measured at run time, §3.5).
        yield_hint: Option<(u64, u64)>,
        /// Source position.
        span: Span,
    },
    /// `INCUBATE f AT temp FOR t;`
    Incubate {
        /// The incubated fluid.
        fluid: FluidExpr,
        /// Temperature (deg C).
        temp: Expr,
        /// Duration (seconds).
        seconds: Expr,
        /// Source position.
        span: Span,
    },
    /// `CONCENTRATE f AT temp FOR t;`
    Concentrate {
        /// The concentrated fluid.
        fluid: FluidExpr,
        /// Temperature (deg C).
        temp: Expr,
        /// Duration (seconds).
        seconds: Expr,
        /// Source position.
        span: Span,
    },
    /// `SENSE OPTICAL f INTO slot;`
    Sense {
        /// Sensing modality.
        mode: SenseMode,
        /// The sensed fluid (consumed).
        fluid: FluidExpr,
        /// Result variable (possibly indexed).
        target: Expr,
        /// Source position.
        span: Span,
    },
    /// `OUTPUT f [WEIGHT n];` — declare `f` a final assay output,
    /// optionally with a relative production weight (the paper's
    /// `Va:Vb:Vc` output proportions; default weight 1).
    Output {
        /// The output fluid (consumed).
        fluid: FluidExpr,
        /// Relative weight among outputs.
        weight: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// `var = expr;` — scalar assignment.
    Assign {
        /// Variable name.
        var: String,
        /// Array indices, if any.
        indices: Vec<Expr>,
        /// Assigned value.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// `FOR i FROM a TO b START ... ENDFOR` — unrolled at compile time.
    For {
        /// Loop variable.
        var: String,
        /// Inclusive lower bound.
        from: Expr,
        /// Inclusive upper bound.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `WHILE cond BOUND n START ... ENDWHILE` — an unknown-iteration
    /// loop with the programmer's §3.5 hint: an upper bound `n` on the
    /// iteration count. The compiler conservatively unrolls the body
    /// `n` times (re-evaluating the condition, which over scalar state
    /// is decidable at compile time; a condition that is still true
    /// after `n` iterations is a compile error — the hint was wrong).
    While {
        /// Left comparison operand.
        lhs: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right comparison operand.
        rhs: Expr,
        /// The programmer's iteration bound.
        bound: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `IF a op b START ... [ELSE ...] ENDIF` over compile-time scalars.
    If {
        /// Left comparison operand.
        lhs: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right comparison operand.
        rhs: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Mix { span, .. }
            | Stmt::Separate { span, .. }
            | Stmt::Incubate { span, .. }
            | Stmt::Concentrate { span, .. }
            | Stmt::Sense { span, .. }
            | Stmt::Output { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::If { span, .. } => *span,
        }
    }
}
