//! The flat (unrolled) assay representation.
//!
//! All loops are unrolled, all scalar arithmetic folded, all fluid
//! references resolved to SSA-style instances. This is the hand-off
//! point to the DAG lowering in `aqua-compiler`.

use aqua_rational::Ratio;

use crate::ast::{SenseMode, SepKind};

/// Handle to one concrete fluid instance (SSA value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FluidId(pub(crate) usize);

impl FluidId {
    /// Zero-based index into [`FlatAssay::fluids`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Metadata of one fluid instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatFluid {
    /// Human-readable name (`Glucose`, `Diluted_Inhibitor[2]`,
    /// `it@14`, ...).
    pub name: String,
    /// Whether this fluid is an external input (never produced by an
    /// operation).
    pub is_input: bool,
}

/// One unrolled fluid operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatOp {
    /// Mix `parts` (with exact ratio weights) into `out`.
    Mix {
        /// The product.
        out: FluidId,
        /// The consumed fluids and their ratio parts.
        parts: Vec<(FluidId, Ratio)>,
        /// Mixing time in seconds.
        seconds: u64,
    },
    /// Incubate `input` producing `out` (same volume).
    Incubate {
        /// The product.
        out: FluidId,
        /// The consumed fluid.
        input: FluidId,
        /// Temperature in deg C.
        temp_c: i64,
        /// Duration in seconds.
        seconds: u64,
    },
    /// Concentrate `input` producing `out`.
    Concentrate {
        /// The product.
        out: FluidId,
        /// The consumed fluid.
        input: FluidId,
        /// Temperature in deg C.
        temp_c: i64,
        /// Duration in seconds.
        seconds: u64,
    },
    /// Separate `input` into an effluent (and implicit waste).
    Separate {
        /// The effluent product.
        out: FluidId,
        /// The waste product (dead end unless the assay uses it).
        waste: FluidId,
        /// The consumed fluid.
        input: FluidId,
        /// Separation chemistry.
        kind: SepKind,
        /// Matrix fluid name (loaded into the separator, not part of
        /// the volume DAG).
        matrix: String,
        /// Pusher/carrier fluid name.
        using: String,
        /// Duration in seconds.
        seconds: u64,
        /// Known output fraction, or `None` for a run-time measured
        /// volume (§3.5).
        yield_hint: Option<Ratio>,
    },
    /// Declare `input` a final output, collected off-chip.
    Output {
        /// The consumed fluid.
        input: FluidId,
        /// Relative production weight among outputs.
        weight: u64,
    },
    /// Sense `input` (consuming it) into a dry result slot.
    Sense {
        /// The consumed fluid.
        input: FluidId,
        /// Sensing modality.
        mode: SenseMode,
        /// Result-slot label, e.g. `Result[3]`.
        target: String,
    },
}

/// A fully unrolled assay.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatAssay {
    /// The assay name.
    pub name: String,
    /// Fluid instance table.
    pub fluids: Vec<FlatFluid>,
    /// The operation sequence.
    pub ops: Vec<FlatOp>,
}

impl FlatAssay {
    /// Metadata for a fluid instance.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn fluid(&self, id: FluidId) -> &FlatFluid {
        &self.fluids[id.0]
    }

    /// All external input fluids.
    pub fn inputs(&self) -> Vec<FluidId> {
        self.fluids
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_input)
            .map(|(i, _)| FluidId(i))
            .collect()
    }

    /// Number of uses (consumptions) per fluid instance.
    pub fn use_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.fluids.len()];
        for op in &self.ops {
            match op {
                FlatOp::Mix { parts, .. } => {
                    for (f, _) in parts {
                        counts[f.0] += 1;
                    }
                }
                FlatOp::Incubate { input, .. }
                | FlatOp::Concentrate { input, .. }
                | FlatOp::Separate { input, .. }
                | FlatOp::Output { input, .. }
                | FlatOp::Sense { input, .. } => counts[input.0] += 1,
            }
        }
        counts
    }
}
