//! Diagnostics with source positions.

use std::error::Error;
use std::fmt;

/// A half-open byte range in the source, with a 1-based line for
/// human-readable messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize, line: usize) -> Span {
        Span { start, end, line }
    }

    /// A span covering both operands.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

/// An error from assay compilation, carrying the offending span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Where in the source the problem is.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    /// Creates an error at a span.
    pub fn new(span: Span, message: impl Into<String>) -> LangError {
        LangError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span.line, self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(0, 5, 1);
        let b = Span::new(10, 20, 3);
        let m = a.merge(b);
        assert_eq!((m.start, m.end, m.line), (0, 20, 1));
    }

    #[test]
    fn display_mentions_line() {
        let e = LangError::new(Span::new(0, 1, 7), "unexpected token");
        assert_eq!(e.to_string(), "line 7: unexpected token");
    }
}
