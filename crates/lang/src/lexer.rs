//! Tokenizer for the assay language.

use crate::diag::{LangError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Keyword or identifier (keywords are case-sensitive uppercase, as
    /// in the paper's listings; `fluid` is lowercase).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// `=`
    Equals,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Tokenizes assay source. `--` starts a comment to end of line.
///
/// # Errors
///
/// Returns [`LangError`] on stray characters or oversized integers.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    span: Span::new(start, i, line),
                });
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: u64 = text.parse().map_err(|_| {
                    LangError::new(
                        Span::new(start, i, line),
                        format!("integer literal `{text}` is too large"),
                    )
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: Span::new(start, i, line),
                });
            }
            _ => {
                let two = |k: TokenKind, i: &mut usize| {
                    *i += 2;
                    k
                };
                let one = |k: TokenKind, i: &mut usize| {
                    *i += 1;
                    k
                };
                let next = if i + 1 < bytes.len() {
                    bytes[i + 1] as char
                } else {
                    '\0'
                };
                let kind = match (c, next) {
                    ('<', '=') => two(TokenKind::Le, &mut i),
                    ('>', '=') => two(TokenKind::Ge, &mut i),
                    ('=', '=') => two(TokenKind::EqEq, &mut i),
                    ('!', '=') => two(TokenKind::NotEq, &mut i),
                    ('=', _) => one(TokenKind::Equals, &mut i),
                    (',', _) => one(TokenKind::Comma, &mut i),
                    (';', _) => one(TokenKind::Semicolon, &mut i),
                    (':', _) => one(TokenKind::Colon, &mut i),
                    ('[', _) => one(TokenKind::LBracket, &mut i),
                    (']', _) => one(TokenKind::RBracket, &mut i),
                    ('(', _) => one(TokenKind::LParen, &mut i),
                    (')', _) => one(TokenKind::RParen, &mut i),
                    ('+', _) => one(TokenKind::Plus, &mut i),
                    ('-', _) => one(TokenKind::Minus, &mut i),
                    ('*', _) => one(TokenKind::Star, &mut i),
                    ('/', _) => one(TokenKind::Slash, &mut i),
                    ('<', _) => one(TokenKind::Lt, &mut i),
                    ('>', _) => one(TokenKind::Gt, &mut i),
                    _ => {
                        return Err(LangError::new(
                            Span::new(start, start + 1, line),
                            format!("unexpected character `{c}`"),
                        ))
                    }
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i, line),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_mix_statement() {
        let k = kinds("a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Equals,
                TokenKind::Ident("MIX".into()),
                TokenKind::Ident("Glucose".into()),
                TokenKind::Ident("AND".into()),
                TokenKind::Ident("Reagent".into()),
                TokenKind::Ident("IN".into()),
                TokenKind::Ident("RATIOS".into()),
                TokenKind::Int(1),
                TokenKind::Colon,
                TokenKind::Int(1),
                TokenKind::Ident("FOR".into()),
                TokenKind::Int(10),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let k = kinds("VAR x; --buffer2 has PNGanF\nVAR y;");
        assert_eq!(k.len(), 6);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
    }

    #[test]
    fn arithmetic_and_comparison_operators() {
        let k = kinds("temp = temp * 10 - 1; x <= 3");
        assert!(k.contains(&TokenKind::Star));
        assert!(k.contains(&TokenKind::Minus));
        assert!(k.contains(&TokenKind::Le));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a = @").is_err());
        assert!(lex("99999999999999999999999999").is_err());
    }

    #[test]
    fn minus_vs_comment_disambiguation() {
        // A single minus is arithmetic; double minus is a comment.
        let k = kinds("a - b");
        assert_eq!(k.len(), 3);
        let k = kinds("a -- b");
        assert_eq!(k.len(), 1);
    }
}
