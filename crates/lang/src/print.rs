//! Pretty-printer: renders an [`Assay`] AST back to source text.
//!
//! `parse(print(parse(src)))` produces the same unrolled assay as
//! `parse(src)` (verified by round-trip tests), making the printer
//! usable for formatting tools and for persisting programmatically
//! built assays.

use std::fmt;

use crate::ast::*;

impl fmt::Display for Assay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ASSAY {} START", self.name)?;
        if !self.fluids.is_empty() {
            write!(f, "fluid ")?;
            for (i, (name, len)) in self.fluids.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match len {
                    Some(n) => write!(f, "{name}[{n}]")?,
                    None => write!(f, "{name}")?,
                }
            }
            writeln!(f, ";")?;
        }
        if !self.vars.is_empty() {
            write!(f, "VAR ")?;
            for (i, (name, dims)) in self.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}")?;
                for d in dims {
                    write!(f, "[{d}]")?;
                }
            }
            writeln!(f, ";")?;
        }
        for stmt in &self.body {
            write_stmt(f, stmt, 0)?;
        }
        writeln!(f, "END")
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

fn write_stmt(f: &mut fmt::Formatter<'_>, stmt: &Stmt, depth: usize) -> fmt::Result {
    indent(f, depth)?;
    match stmt {
        Stmt::Mix {
            dst,
            fluids,
            ratios,
            seconds,
            ..
        } => {
            if let Some(d) = dst {
                write!(f, "{} = ", FluidRef(d))?;
            }
            write!(f, "MIX ")?;
            for (i, fl) in fluids.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{}", FluidRef(fl))?;
            }
            if !ratios.is_empty() {
                write!(f, " IN RATIOS ")?;
                for (i, r) in ratios.iter().enumerate() {
                    if i > 0 {
                        write!(f, " : ")?;
                    }
                    write!(f, "{}", ExprRef(r))?;
                }
            }
            writeln!(f, " FOR {};", ExprRef(seconds))
        }
        Stmt::Separate {
            kind,
            src,
            matrix,
            using,
            seconds,
            effluent,
            waste,
            yield_hint,
            ..
        } => {
            let kw = match kind {
                SepKind::Affinity => "SEPARATE",
                SepKind::LiquidChromatography => "LCSEPARATE",
                SepKind::Electrophoresis => "CESEPARATE",
                SepKind::Size => "SIZESEPARATE",
            };
            write!(
                f,
                "{kw} {} MATRIX {matrix} USING {using} FOR {} INTO {} AND {}",
                FluidRef(src),
                ExprRef(seconds),
                FluidRef(effluent),
                FluidRef(waste)
            )?;
            if let Some((p, q)) = yield_hint {
                write!(f, " YIELD {p}/{q}")?;
            }
            writeln!(f, ";")
        }
        Stmt::Incubate {
            fluid,
            temp,
            seconds,
            ..
        } => writeln!(
            f,
            "INCUBATE {} AT {} FOR {};",
            FluidRef(fluid),
            ExprRef(temp),
            ExprRef(seconds)
        ),
        Stmt::Concentrate {
            fluid,
            temp,
            seconds,
            ..
        } => writeln!(
            f,
            "CONCENTRATE {} AT {} FOR {};",
            FluidRef(fluid),
            ExprRef(temp),
            ExprRef(seconds)
        ),
        Stmt::Sense {
            mode,
            fluid,
            target,
            ..
        } => {
            let kw = match mode {
                SenseMode::Optical => "OPTICAL",
                SenseMode::Fluorescence => "FLUORESCENCE",
            };
            writeln!(
                f,
                "SENSE {kw} {} INTO {};",
                FluidRef(fluid),
                ExprRef(target)
            )
        }
        Stmt::Output { fluid, weight, .. } => {
            write!(f, "OUTPUT {}", FluidRef(fluid))?;
            if let Some(w) = weight {
                write!(f, " WEIGHT {}", ExprRef(w))?;
            }
            writeln!(f, ";")
        }
        Stmt::Assign {
            var,
            indices,
            value,
            ..
        } => {
            write!(f, "{var}")?;
            for i in indices {
                write!(f, "[{}]", ExprRef(i))?;
            }
            writeln!(f, " = {};", ExprRef(value))
        }
        Stmt::For {
            var,
            from,
            to,
            body,
            ..
        } => {
            writeln!(
                f,
                "FOR {var} FROM {} TO {} START",
                ExprRef(from),
                ExprRef(to)
            )?;
            for s in body {
                write_stmt(f, s, depth + 1)?;
            }
            indent(f, depth)?;
            writeln!(f, "ENDFOR")
        }
        Stmt::While {
            lhs,
            op,
            rhs,
            bound,
            body,
            ..
        } => {
            writeln!(
                f,
                "WHILE {} {} {} BOUND {} START",
                ExprRef(lhs),
                cmp(*op),
                ExprRef(rhs),
                ExprRef(bound)
            )?;
            for s in body {
                write_stmt(f, s, depth + 1)?;
            }
            indent(f, depth)?;
            writeln!(f, "ENDWHILE")
        }
        Stmt::If {
            lhs,
            op,
            rhs,
            then_body,
            else_body,
            ..
        } => {
            writeln!(f, "IF {} {} {} START", ExprRef(lhs), cmp(*op), ExprRef(rhs))?;
            for s in then_body {
                write_stmt(f, s, depth + 1)?;
            }
            if !else_body.is_empty() {
                indent(f, depth)?;
                writeln!(f, "ELSE")?;
                for s in else_body {
                    write_stmt(f, s, depth + 1)?;
                }
            }
            indent(f, depth)?;
            writeln!(f, "ENDIF")
        }
    }
}

fn cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

struct FluidRef<'a>(&'a FluidExpr);

impl fmt::Display for FluidRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.name)?;
        for i in &self.0.indices {
            write!(f, "[{}]", ExprRef(i))?;
        }
        Ok(())
    }
}

struct ExprRef<'a>(&'a Expr);

impl fmt::Display for ExprRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Expr::Int(v, _) => write!(f, "{v}"),
            Expr::Var(name, indices, _) => {
                write!(f, "{name}")?;
                for i in indices {
                    write!(f, "[{}]", ExprRef(i))?;
                }
                Ok(())
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                // Fully parenthesized: precedence-safe without tracking
                // context.
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, "({} {sym} {})", ExprRef(lhs), ExprRef(rhs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile_to_flat, parse};

    /// Parse → print → parse must yield the same unrolled assay.
    fn roundtrip(src: &str) {
        let ast = parse(src).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        let flat1 = crate::eval::compile_to_flat_ast(&ast).unwrap();
        let flat2 = crate::eval::compile_to_flat_ast(&reparsed).unwrap();
        assert_eq!(flat1, flat2, "printed form diverged:\n{printed}");
        let _ = compile_to_flat(src).unwrap();
    }

    #[test]
    fn roundtrips_simple_assay() {
        roundtrip(
            "ASSAY g START
             fluid A, B;
             VAR R[2];
             MIX A AND B IN RATIOS 1 : 4 FOR 10;
             SENSE OPTICAL it INTO R[1];
             END",
        );
    }

    #[test]
    fn roundtrips_loops_and_conditionals() {
        roundtrip(
            "ASSAY g START
             fluid A, B, D[4];
             VAR i, t, n;
             t = 1;
             FOR i FROM 1 TO 4 START
               D[i] = MIX A AND B IN RATIOS 1 : t FOR 5;
               t = t * 10 - 1;
             ENDFOR
             n = 0;
             WHILE n < 2 BOUND 5 START
               MIX D[1] AND D[2] FOR 3;
               SENSE OPTICAL it INTO R[n];
               n = n + 1;
             ENDWHILE
             IF t > 10 START
               MIX A AND B FOR 1;
               SENSE OPTICAL it INTO X;
             ELSE
               MIX B AND A FOR 1;
               SENSE OPTICAL it INTO Y;
             ENDIF
             END",
        );
    }

    #[test]
    fn roundtrips_separations() {
        roundtrip(
            "ASSAY g START
             fluid A, B, s, m, buf, e1, w1, e2, w2;
             s = MIX A AND B FOR 30;
             SEPARATE s MATRIX m USING buf FOR 30 INTO e1 AND w1;
             MIX e1 AND A FOR 5;
             INCUBATE it AT 37 FOR 300;
             LCSEPARATE it MATRIX m USING buf FOR 60 INTO e2 AND w2 YIELD 1/3;
             CONCENTRATE e2 AT 90 FOR 10;
             SENSE FLUORESCENCE it INTO R;
             END",
        );
    }
}
