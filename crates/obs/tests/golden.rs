//! Golden tests: the Chrome-trace exporter must emit byte-stable
//! output for a deterministic recording (fake clock, single thread),
//! and the no-op sink path must record nothing.

use std::sync::Arc;

use aqua_obs::export::{chrome_trace, ObsReport};
use aqua_obs::{FakeClock, MemorySink, Obs};

/// A fixed single-threaded recording: nested solve spans plus two
/// counters, driven by a 1 µs-step fake clock.
fn deterministic_recording() -> Arc<MemorySink> {
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::with_sink_and_clock(sink.clone(), Arc::new(FakeClock::new(1_000)));
    {
        let _manage = obs.span("vol.manage"); // starts at 0 ns
        {
            let _dagsolve = obs.span("vol.dagsolve"); // starts at 1000 ns
        } // ends at 2000 ns
        {
            let _lp = obs.span("lp.solve"); // starts at 3000 ns
            obs.add("lp.pivots", 12);
        } // ends at 4000 ns
    } // ends at 5000 ns
    obs.add("ilp.nodes", 3);
    sink
}

#[test]
fn chrome_trace_is_byte_stable_under_a_fake_clock() {
    let golden = "\
{\"traceEvents\": [
  {\"name\": \"vol.manage\", \"cat\": \"aqua\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 5.000, \"pid\": 1, \"tid\": 1},
  {\"name\": \"vol.dagsolve\", \"cat\": \"aqua\", \"ph\": \"X\", \"ts\": 1.000, \"dur\": 1.000, \"pid\": 1, \"tid\": 1},
  {\"name\": \"lp.solve\", \"cat\": \"aqua\", \"ph\": \"X\", \"ts\": 3.000, \"dur\": 1.000, \"pid\": 1, \"tid\": 1},
  {\"name\": \"ilp.nodes\", \"cat\": \"aqua\", \"ph\": \"C\", \"ts\": 5.000, \"pid\": 1, \"tid\": 1, \"args\": {\"value\": 3}},
  {\"name\": \"lp.pivots\", \"cat\": \"aqua\", \"ph\": \"C\", \"ts\": 5.000, \"pid\": 1, \"tid\": 1, \"args\": {\"value\": 12}}
], \"displayTimeUnit\": \"ms\"}
";
    let sink = deterministic_recording();
    assert_eq!(chrome_trace(&sink), golden);
    // And it stays stable across repeated identical recordings.
    let again = deterministic_recording();
    assert_eq!(chrome_trace(&again), golden);
}

#[test]
fn report_json_is_byte_stable_under_a_fake_clock() {
    let sink = deterministic_recording();
    let report = ObsReport::from_sink(&sink);
    assert_eq!(
        report.to_json(),
        "{\"phases\": {\
         \"lp.solve\": {\"count\": 1, \"total_ns\": 1000}, \
         \"vol.dagsolve\": {\"count\": 1, \"total_ns\": 1000}, \
         \"vol.manage\": {\"count\": 1, \"total_ns\": 5000}}, \
         \"counters\": {\"ilp.nodes\": 3, \"lp.pivots\": 12}, \
         \"histograms\": {}}"
    );
}

#[test]
fn no_op_sink_records_nothing_and_report_stays_empty() {
    let sink = Arc::new(MemorySink::new());
    // Drive a full instrumentation workload through an OFF handle while
    // the sink exists: nothing may reach it.
    let off = Obs::off();
    for _ in 0..100 {
        let _s = off.span("lp.solve");
        off.add("lp.pivots", 1);
        off.record("sim.instr_ns", 42);
    }
    assert!(sink.is_empty());
    let report = ObsReport::from_sink(&sink);
    assert!(report.is_empty());
    assert!(report.phases.is_empty());
    assert!(report.counters.is_empty());
    assert!(report.histograms.is_empty());
}
