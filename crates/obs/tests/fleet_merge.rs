//! Property tests for fleet histogram merging.
//!
//! The replay soak's thread-count invariance rests on one algebraic
//! fact: folding N shard histograms together is order-invariant and
//! count/sum-exact versus a single stream observing every value. These
//! tests attack that fact with seeded randomized workloads
//! (`XorShift64Star`, so failures reproduce).

use aqua_obs::fleet::{BucketHistogram, FleetSink};
use aqua_obs::Sink;
use aqua_rational::rng::XorShift64Star;

/// Draws a value with a heavy tail: mostly small, occasionally huge —
/// the shape of per-instruction latencies, and the shape that stresses
/// every octave of the bucket table.
fn draw(rng: &mut XorShift64Star) -> u64 {
    let magnitude = rng.range_u64(0, 63);
    rng.next_u64() >> magnitude
}

/// Merging N shard histograms in any order equals the single-stream
/// reference: exact in count/sum/min/max, identical in every quantile.
#[test]
fn shard_merge_is_order_invariant_and_exact() {
    let mut rng = XorShift64Star::new(0xF1EE7);
    for trial in 0..20 {
        let shards = rng.range_u64(1, 9) as usize;
        let mut parts: Vec<BucketHistogram> = (0..shards).map(|_| BucketHistogram::new()).collect();
        let mut reference = BucketHistogram::new();
        let n = rng.range_u64(1, 2000) as usize;
        for _ in 0..n {
            let v = draw(&mut rng);
            let shard = rng.range_u64(0, shards as u64 - 1) as usize;
            parts[shard].observe(v);
            reference.observe(v);
        }

        // Forward merge order.
        let mut forward = BucketHistogram::new();
        for p in &parts {
            forward.merge(p);
        }
        // Reverse merge order.
        let mut reverse = BucketHistogram::new();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        // Pairwise tree merge (associativity).
        let mut tree: Vec<BucketHistogram> = parts.clone();
        while tree.len() > 1 {
            let b = tree.pop().expect("nonempty");
            let mut a = tree.pop().expect("nonempty");
            a.merge(&b);
            tree.push(a);
        }
        let tree = tree.pop().expect("one survivor");

        for merged in [&forward, &reverse, &tree] {
            assert_eq!(merged.count(), reference.count(), "trial {trial}: count");
            assert_eq!(merged.sum(), reference.sum(), "trial {trial}: sum");
            assert_eq!(merged.min(), reference.min(), "trial {trial}: min");
            assert_eq!(merged.max(), reference.max(), "trial {trial}: max");
            for q in [1, 100, 250, 500, 900, 990, 999, 1000] {
                assert_eq!(
                    merged.quantile_permille(q),
                    reference.quantile_permille(q),
                    "trial {trial}: q{q}"
                );
            }
        }
    }
}

/// Quantiles read from the bucketed histogram must bracket the true
/// order statistic: never below it, and at most one bucket width
/// (12.5 %) above it.
#[test]
fn quantiles_bracket_the_exact_order_statistic() {
    let mut rng = XorShift64Star::new(0x0B5E55ED);
    for trial in 0..10 {
        let n = rng.range_u64(10, 3000) as usize;
        let mut values: Vec<u64> = (0..n).map(|_| draw(&mut rng)).collect();
        let mut h = BucketHistogram::new();
        for &v in &values {
            h.observe(v);
        }
        values.sort_unstable();
        for q in [500u32, 990, 999] {
            let rank = ((n as u128 * q as u128).div_ceil(1000) as usize).clamp(1, n);
            let exact = values[rank - 1];
            let got = h.quantile_permille(q);
            assert!(
                got >= exact,
                "trial {trial}: q{q} underestimates {exact} as {got}"
            );
            // The covering bucket's upper bound is at most 1/8 above
            // its members, so the reported quantile stays close.
            let ceiling = exact.saturating_add(exact / 8).saturating_add(1);
            assert!(
                got <= ceiling,
                "trial {trial}: q{q} too loose: exact {exact}, got {got}"
            );
        }
    }
}

/// The FleetSink roll-up equals a single-stream reference even when the
/// values arrive via many threads, each hitting its own shard.
#[test]
fn fleet_sink_matches_single_stream_reference() {
    let mut rng = XorShift64Star::new(0x5EED_F00D);
    let values: Vec<u64> = (0..5000).map(|_| draw(&mut rng)).collect();

    let mut reference = BucketHistogram::new();
    for &v in &values {
        reference.observe(v);
    }

    let sink = FleetSink::new();
    std::thread::scope(|s| {
        for chunk in values.chunks(values.len().div_ceil(8)) {
            let sink = &sink;
            s.spawn(move || {
                for &v in chunk {
                    sink.record("lat", v);
                }
            });
        }
    });
    let snap = sink.snapshot();
    let h = snap.hist("lat").expect("histogram recorded");
    assert_eq!(h.count(), reference.count());
    assert_eq!(h.sum(), reference.sum());
    assert_eq!(h.min(), reference.min());
    assert_eq!(h.max(), reference.max());
    for q in [500, 990, 999] {
        assert_eq!(h.quantile_permille(q), reference.quantile_permille(q));
    }
}
