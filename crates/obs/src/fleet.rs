//! Fleet-scale aggregation: a lock-sharded [`Sink`] that rolls up
//! counters, span totals, and mergeable log-bucketed histograms from
//! many concurrent runs into one deterministic snapshot.
//!
//! [`MemorySink`](crate::MemorySink) keeps every span event — perfect
//! for a single traced run, hopeless for a million. [`FleetSink`]
//! instead keeps *aggregates only*, sharded across independent mutexes
//! so replay worker threads almost never contend:
//!
//! * **counters** — summed per name;
//! * **spans** — collapsed to `(count, total_ns)` per name;
//! * **histograms** — [`BucketHistogram`]: log-bucketed (8 sub-buckets
//!   per octave, ≤ 12.5 % relative bucket width), count/sum-exact, and
//!   **mergeable** — merging shard histograms is associative and
//!   commutative, so the rolled-up quantiles are independent of thread
//!   count and arrival order.
//!
//! [`FleetSink::snapshot`] merges the shards into a [`FleetSnapshot`]
//! whose [`to_json`](FleetSnapshot::to_json) rendering is byte-stable:
//! `BTreeMap` ordering, integers only, no floats, no timestamps. Two
//! snapshots of equal aggregate state render identical bytes — the
//! property the serve tier's `obs.snapshot` wire test pins.

use std::collections::hash_map::RandomState;
use std::collections::BTreeMap;
use std::hash::BuildHasher;
use std::sync::{Mutex, PoisonError};

use crate::Sink;

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two, so any
/// recorded value lands in a bucket whose width is at most 1/8 of the
/// value (12.5 % worst-case quantile error).
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Exact buckets 0..8, then 8 sub-buckets for each octave up to 2^63.
const BUCKETS: usize = SUBS * (65 - SUB_BITS as usize);

fn bucket_of(value: u64) -> usize {
    if value < SUBS as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((value >> shift) & (SUBS as u64 - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUBS + sub
    }
}

/// Largest value that lands in bucket `index` (quantiles report this
/// upper bound, so they never under-estimate).
fn bucket_upper(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let octave = (index / SUBS - 1) as u32 + SUB_BITS;
        let sub = (index % SUBS) as u64;
        let shift = octave - SUB_BITS;
        (((1u64 << SUB_BITS) + sub) << shift) | ((1u64 << shift).wrapping_sub(1))
    }
}

/// A mergeable log-bucketed histogram.
///
/// `count`, `sum`, `min`, and `max` are exact; quantiles are read from
/// the log buckets with ≤ 12.5 % relative error (reported as the
/// bucket's upper bound, so they never under-estimate). Merging is
/// associative, commutative, and count/sum-exact.
#[derive(Clone)]
pub struct BucketHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for BucketHistogram {
    fn default() -> BucketHistogram {
        BucketHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for BucketHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BucketHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl BucketHistogram {
    /// An empty histogram.
    pub fn new() -> BucketHistogram {
        BucketHistogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.counts[bucket_of(value)] += 1;
    }

    /// Folds `other` into `self`. Count- and sum-exact; associative and
    /// commutative, so shard merge order never changes the result.
    pub fn merge(&mut self, other: &BucketHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in per-mille (`500` = p50, `999` =
    /// p999), reported as the covering bucket's upper bound — but never
    /// beyond the exact observed `max`. Returns 0 when empty.
    pub fn quantile_permille(&self, q: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, ceiling — p999 of
        // 1000 observations is the 999th smallest.
        let rank = ((self.count as u128 * q as u128).div_ceil(1000) as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

/// Aggregated span statistics: how many times a span closed and the
/// total wall-clock it covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans under this name.
    pub count: u64,
    /// Summed duration across them, in ns (saturating).
    pub total_ns: u64,
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStats>,
    hists: BTreeMap<&'static str, BucketHistogram>,
}

impl Shard {
    fn merge_into(&self, snap: &mut FleetSnapshot) {
        for (&name, &v) in &self.counters {
            *snap.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &s) in &self.spans {
            let slot = snap.spans.entry(name).or_default();
            slot.count += s.count;
            slot.total_ns = slot.total_ns.saturating_add(s.total_ns);
        }
        for (&name, h) in &self.hists {
            snap.hists.entry(name).or_default().merge(h);
        }
    }
}

/// Number of independently locked shards. Replay pools are capped well
/// below this, so each worker thread effectively owns a shard.
const SHARDS: usize = 16;

/// A lock-sharded aggregate-only [`Sink`] for fleet-scale replay.
///
/// Each calling thread hashes to one of 16 independently locked
/// aggregate maps; [`FleetSink::snapshot`] merges them. Because the
/// histogram merge is order-invariant and counters are sums, a snapshot
/// taken after N runs is identical regardless of how many threads
/// executed them or in what order.
pub struct FleetSink {
    shards: [Mutex<Shard>; SHARDS],
    /// Fixed-seed hasher so a given thread maps to a stable shard for
    /// the sink's lifetime.
    hasher: RandomState,
}

impl Default for FleetSink {
    fn default() -> FleetSink {
        FleetSink {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            hasher: RandomState::new(),
        }
    }
}

impl FleetSink {
    /// An empty fleet aggregator.
    pub fn new() -> FleetSink {
        FleetSink::default()
    }

    fn shard(&self) -> &Mutex<Shard> {
        let h = self.hasher.hash_one(std::thread::current().id());
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Merges every shard into one deterministic snapshot. The live
    /// shards are left untouched; recording may continue concurrently
    /// (the snapshot then reflects some consistent-enough prefix).
    pub fn snapshot(&self) -> FleetSnapshot {
        let mut snap = FleetSnapshot::default();
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .merge_into(&mut snap);
        }
        snap
    }

    /// Clears every shard back to empty.
    pub fn reset(&self) {
        for shard in &self.shards {
            *shard.lock().unwrap_or_else(PoisonError::into_inner) = Shard::default();
        }
    }
}

impl Sink for FleetSink {
    fn span(&self, name: &'static str, _start_ns: u64, dur_ns: u64, _tid: u64) {
        let mut shard = self.shard().lock().unwrap_or_else(PoisonError::into_inner);
        let slot = shard.spans.entry(name).or_default();
        slot.count += 1;
        slot.total_ns = slot.total_ns.saturating_add(dur_ns);
    }

    fn add(&self, name: &'static str, delta: u64) {
        *self
            .shard()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counters
            .entry(name)
            .or_insert(0) += delta;
    }

    fn record(&self, name: &'static str, value: u64) {
        self.shard()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .hists
            .entry(name)
            .or_default()
            .observe(value);
    }
}

/// The merged roll-up of a [`FleetSink`]: every counter, span total,
/// and histogram across all shards, in deterministic (sorted) order.
#[derive(Default, Clone)]
pub struct FleetSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Span totals by name.
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// Merged histograms by name.
    pub hists: BTreeMap<&'static str, BucketHistogram>,
}

impl FleetSnapshot {
    /// One counter's value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// One histogram, if any observation was recorded under `name`.
    pub fn hist(&self, name: &str) -> Option<&BucketHistogram> {
        self.hists.get(name)
    }

    /// Renders the snapshot as deterministic, byte-stable JSON:
    /// sorted keys, integers only. Two snapshots with equal aggregate
    /// state produce identical bytes, so the serve tier's
    /// `obs.snapshot` endpoint can be compared byte-for-byte against a
    /// locally rendered roll-up.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"spans\":{");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"total_ns\":{}}}",
                s.count, s.total_ns
            ));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile_permille(500),
                h.quantile_permille(990),
                h.quantile_permille(999),
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use std::sync::Arc;

    #[test]
    fn buckets_tile_the_u64_line() {
        // Every value maps into range, and bucket_upper is consistent:
        // v <= bucket_upper(bucket_of(v)), and the upper bound is in
        // the same bucket.
        for v in (0..4096u64).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "value {v} escaped to bucket {b}");
            assert!(v <= bucket_upper(b), "upper bound below member {v}");
            assert_eq!(bucket_of(bucket_upper(b)), b, "upper bound left its bucket");
        }
        // Small values are exact.
        for v in 0..SUBS as u64 {
            assert_eq!(bucket_upper(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantiles_never_underestimate_and_stay_close() {
        let mut h = BucketHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile_permille(500);
        let p999 = h.quantile_permille(999);
        assert!((500..=563).contains(&p50), "p50 = {p50}");
        assert!((999..=1000).contains(&p999), "p999 = {p999}");
        assert!(h.quantile_permille(1000) <= h.max());
    }

    #[test]
    fn merge_is_count_and_sum_exact() {
        let mut a = BucketHistogram::new();
        let mut b = BucketHistogram::new();
        let mut reference = BucketHistogram::new();
        for v in [3u64, 17, 99, 1_000_000] {
            a.observe(v);
            reference.observe(v);
        }
        for v in [0u64, 8, 250_000] {
            b.observe(v);
            reference.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), reference.count());
        assert_eq!(a.sum(), reference.sum());
        assert_eq!(a.min(), reference.min());
        assert_eq!(a.max(), reference.max());
        for q in [500, 990, 999] {
            assert_eq!(a.quantile_permille(q), reference.quantile_permille(q));
        }
    }

    #[test]
    fn fleet_sink_aggregates_and_snapshot_is_stable() {
        let sink = Arc::new(FleetSink::new());
        let obs = Obs::with_sink(sink.clone());
        obs.add("fleet.runs", 2);
        obs.add("fleet.runs", 3);
        obs.record("fleet.lat", 10);
        obs.record("fleet.lat", 20);
        {
            let _s = obs.span("fleet.pass");
        }
        let snap = sink.snapshot();
        assert_eq!(snap.counter("fleet.runs"), 5);
        let h = snap.hist("fleet.lat").expect("histogram recorded");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert_eq!(snap.spans["fleet.pass"].count, 1);
        // Byte-stability: rendering twice is identical.
        assert_eq!(snap.to_json(), sink.snapshot().to_json());
        sink.reset();
        assert_eq!(
            sink.snapshot().to_json(),
            FleetSnapshot::default().to_json()
        );
    }

    #[test]
    fn snapshot_is_thread_count_invariant() {
        // The same 400 observations recorded from 1 thread and from 4
        // threads must roll up to byte-identical snapshots.
        let values: Vec<u64> = (0..400u64).map(|i| i * i % 10_007).collect();
        let single = Arc::new(FleetSink::new());
        for &v in &values {
            single.record("lat", v);
            single.add("n", 1);
        }
        let sharded = Arc::new(FleetSink::new());
        std::thread::scope(|s| {
            for chunk in values.chunks(100) {
                let sharded = sharded.clone();
                s.spawn(move || {
                    for &v in chunk {
                        sharded.record("lat", v);
                        sharded.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(single.snapshot().to_json(), sharded.snapshot().to_json());
    }
}
