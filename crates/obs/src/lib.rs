//! Dependency-free observability: spans, counters, and histograms
//! behind a pluggable [`Sink`].
//!
//! Every solver and runtime crate in the workspace threads an [`Obs`]
//! handle through its configuration struct. The default handle is
//! *off*: it holds no sink, every instrumentation call reduces to one
//! branch on a `None`, and the guard types are zero-field wrappers —
//! an un-instrumented run pays nothing measurable. Turning recording
//! on is a caller-side decision (`Obs::recording()`), never a library
//! default, so benchmarks compare identical code paths.
//!
//! Three primitives cover the paper's measurement needs:
//!
//! * **spans** — wall-clock phases ([`Obs::span`] returns a guard that
//!   reports on drop; spans nest naturally across call frames);
//! * **counters** — monotonically accumulated operation counts
//!   ([`Obs::add`]): simplex pivots, eta refactors, B&B nodes, vnorm
//!   passes, recovery-ladder tiers;
//! * **histograms** — value distributions ([`Obs::record`]), e.g.
//!   per-instruction execution latency.
//!
//! Time comes from a pluggable [`Clock`] so exporter output can be made
//! bit-stable in tests ([`FakeClock`]); production uses a monotonic
//! [`std::time::Instant`] anchor.
//!
//! The [`export`] module renders a recorded [`MemorySink`] as Chrome
//! trace-event JSON (load it in `chrome://tracing` or Perfetto), as a
//! compact text summary, or as an aggregated [`export::ObsReport`].
//!
//! # Examples
//!
//! ```
//! use aqua_obs::Obs;
//!
//! let (obs, sink) = Obs::recording();
//! {
//!     let _solve = obs.span("lp.solve");
//!     obs.add("lp.pivots", 42);
//! }
//! assert_eq!(sink.counter("lp.pivots"), 42);
//! assert_eq!(sink.spans().len(), 1);
//!
//! // The default handle is off: nothing is recorded, nothing is kept.
//! let off = Obs::default();
//! assert!(!off.enabled());
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod export;
pub mod fleet;

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

/// A source of monotonic nanosecond timestamps.
///
/// Implementations must be monotone non-decreasing per thread; the
/// absolute origin is arbitrary (exporters only use differences and
/// offsets from the earliest event).
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: a monotonic [`Instant`] anchored at creation.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic test clock: every reading advances by a fixed step.
///
/// With `step_ns = 1000`, the first reading is 0, the next 1000, and so
/// on — so a span opened and closed with no intervening readings always
/// has duration 1000 ns, making exporter output byte-stable for golden
/// tests.
pub struct FakeClock {
    next: AtomicU64,
    step_ns: u64,
}

impl FakeClock {
    /// A clock starting at 0 that advances `step_ns` per reading.
    pub fn new(step_ns: u64) -> FakeClock {
        FakeClock {
            next: AtomicU64::new(0),
            step_ns,
        }
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.next.fetch_add(self.step_ns, Ordering::Relaxed)
    }
}

/// Receiver for instrumentation events.
///
/// Implementations must be cheap and thread-safe: solver hot loops call
/// [`Sink::add`] while holding no other locks, and the batch pool emits
/// spans from many worker threads at once.
pub trait Sink: Send + Sync {
    /// A completed span: `name` ran on logical thread `tid` from
    /// `start_ns` for `dur_ns`.
    fn span(&self, name: &'static str, start_ns: u64, dur_ns: u64, tid: u64);
    /// Adds `delta` to the counter `name`.
    fn add(&self, name: &'static str, delta: u64);
    /// Records one observation of `value` in the histogram `name`.
    fn record(&self, name: &'static str, value: u64);
}

struct Inner {
    sink: Arc<dyn Sink>,
    clock: Arc<dyn Clock>,
    /// Small dense thread ids for trace export (OS ids are opaque).
    tids: Mutex<(HashMap<ThreadId, u64>, u64)>,
}

impl Inner {
    fn tid(&self) -> u64 {
        let mut guard = self.tids.lock().unwrap_or_else(PoisonError::into_inner);
        let (map, next) = &mut *guard;
        *map.entry(std::thread::current().id()).or_insert_with(|| {
            let id = *next;
            *next += 1;
            id
        })
    }
}

/// The instrumentation handle threaded through configuration structs.
///
/// Cloning is cheap (an `Option<Arc>`); the [`Default`] handle is off.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Obs(recording)"
        } else {
            "Obs(off)"
        })
    }
}

impl Obs {
    /// The no-op handle (same as [`Default`]): records nothing.
    pub fn off() -> Obs {
        Obs { inner: None }
    }

    /// A recording handle backed by a fresh in-memory sink and the
    /// monotonic production clock. Returns the handle and the sink to
    /// read results from.
    pub fn recording() -> (Obs, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Obs::with_sink(sink.clone()), sink)
    }

    /// A recording handle with an explicit sink and the monotonic
    /// production clock.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Obs {
        Obs::with_sink_and_clock(sink, Arc::new(MonotonicClock::new()))
    }

    /// A recording handle with explicit sink *and* clock (tests pass a
    /// [`FakeClock`] here for deterministic trace output).
    pub fn with_sink_and_clock(sink: Arc<dyn Sink>, clock: Arc<dyn Clock>) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                sink,
                clock,
                tids: Mutex::new((HashMap::new(), 1)),
            })),
        }
    }

    /// Whether instrumentation is live. Callers may branch on this to
    /// skip building expensive event payloads.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it reports to the sink when the guard drops.
    /// On an off handle this returns an empty guard and does no work.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            state: self
                .inner
                .as_ref()
                .map(|inner| (inner.clone(), name, inner.clock.now_ns())),
        }
    }

    /// Adds `delta` to the counter `name` (no-op when off).
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.sink.add(name, delta);
        }
    }

    /// Records one histogram observation (no-op when off).
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.sink.record(name, value);
        }
    }
}

/// RAII guard for an open span; reports on drop. Obtain via
/// [`Obs::span`]. Guards may nest freely (each captures its own start
/// time) and may be moved across function boundaries.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    state: Option<(Arc<Inner>, &'static str, u64)>,
}

impl SpanGuard {
    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, name, start_ns)) = self.state.take() {
            let end_ns = inner.clock.now_ns();
            let tid = inner.tid();
            inner
                .sink
                .span(name, start_ns, end_ns.saturating_sub(start_ns), tid);
        }
    }
}

/// One completed span as stored by [`MemorySink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static taxonomy, e.g. `lp.solve`).
    pub name: &'static str,
    /// Start timestamp in ns (clock origin).
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Dense logical thread id (1-based, assigned in first-use order).
    pub tid: u64,
}

/// Aggregated histogram state: count, sum, and extremes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSummary {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// An in-memory [`Sink`] accumulating spans, counters, and histograms
/// for later export.
#[derive(Default)]
pub struct MemorySink {
    spans: Mutex<Vec<SpanEvent>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, HistogramSummary>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// All recorded spans, in completion order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// One counter's value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSummary)> {
        self.hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
            && self
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
            && self
                .hists
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
    }
}

impl Sink for MemorySink {
    fn span(&self, name: &'static str, start_ns: u64, dur_ns: u64, tid: u64) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(SpanEvent {
                name,
                start_ns,
                dur_ns,
                tid,
            });
    }

    fn add(&self, name: &'static str, delta: u64) {
        *self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name)
            .or_insert(0) += delta;
    }

    fn record(&self, name: &'static str, value: u64) {
        self.hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name)
            .or_default()
            .observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        // None of these can reach a sink; they must simply not panic.
        let guard = obs.span("lp.solve");
        obs.add("lp.pivots", 7);
        obs.record("sim.instr_ns", 1234);
        drop(guard);
    }

    #[test]
    fn no_op_default_leaves_a_fresh_sink_untouched() {
        // The no-op path and a live sink must be fully independent:
        // instrument through an off handle while a sink exists, and the
        // sink stays empty (nothing leaks through globals).
        let sink = Arc::new(MemorySink::new());
        let off = Obs::default();
        {
            let _s = off.span("vol.manage");
            off.add("ilp.nodes", 3);
            off.record("h", 9);
        }
        assert!(sink.is_empty());
        assert_eq!(sink.counter("ilp.nodes"), 0);
        assert!(sink.spans().is_empty());
        assert!(sink.histograms().is_empty());
    }

    #[test]
    fn spans_nest_and_report_in_completion_order() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink_and_clock(sink.clone(), Arc::new(FakeClock::new(100)));
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
            }
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        // FakeClock(100): outer starts at 0, inner at 100, inner ends at
        // 200, outer at 300.
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].dur_ns, 100);
        assert_eq!(spans[1].start_ns, 0);
        assert_eq!(spans[1].dur_ns, 300);
    }

    #[test]
    fn counters_accumulate_and_histograms_summarize() {
        let (obs, sink) = Obs::recording();
        obs.add("lp.pivots", 3);
        obs.add("lp.pivots", 4);
        obs.record("lat", 10);
        obs.record("lat", 30);
        assert_eq!(sink.counter("lp.pivots"), 7);
        let hists = sink.histograms();
        assert_eq!(hists.len(), 1);
        let (name, h) = hists[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 30);
        assert_eq!(h.mean(), 20);
    }

    #[test]
    fn tids_are_dense_and_stable_per_thread() {
        let (obs, sink) = Obs::recording();
        {
            let _a = obs.span("a");
        }
        {
            let _b = obs.span("b");
        }
        let spans = sink.spans();
        assert_eq!(spans[0].tid, spans[1].tid);
        assert_eq!(spans[0].tid, 1);
    }
}
