//! Exporters for a recorded [`MemorySink`]: Chrome trace-event JSON,
//! a compact text summary, and the aggregated [`ObsReport`].
//!
//! The Chrome format is the Trace Event Format consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of complete (`"ph": "X"`) events with
//! microsecond timestamps, plus one counter (`"ph": "C"`) event per
//! recorded counter so operation totals ride along in the same file.
//! Output is deterministic for a deterministic recording: events are
//! sorted by (start, thread, name) and numbers are formatted with a
//! fixed precision.

use crate::{HistogramSummary, MemorySink, SpanEvent};

/// Renders the sink as Chrome trace-event JSON.
///
/// # Examples
///
/// ```
/// use aqua_obs::{export, FakeClock, MemorySink, Obs};
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let obs = Obs::with_sink_and_clock(sink.clone(), Arc::new(FakeClock::new(1_000)));
/// obs.span("lp.solve").end();
/// let json = export::chrome_trace(&sink);
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"lp.solve\""));
/// ```
pub fn chrome_trace(sink: &MemorySink) -> String {
    let mut spans = sink.spans();
    spans.sort_by(|a, b| (a.start_ns, a.tid, a.name).cmp(&(b.start_ns, b.tid, b.name)));
    let counters = sink.counters();

    let mut out = String::with_capacity(256 + spans.len() * 96 + counters.len() * 96);
    out.push_str("{\"traceEvents\": [");
    let mut first = true;
    let mut last_end_us = 0.0f64;
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = ns_to_us(s.start_ns);
        let dur = ns_to_us(s.dur_ns);
        last_end_us = last_end_us.max(ts + dur);
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"aqua\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            escape(s.name),
            fmt_us(ts),
            fmt_us(dur),
            s.tid
        ));
    }
    // Counters appear once, at the end of the timeline, as Chrome "C"
    // events so the totals are visible in the same trace.
    for (name, value) in &counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"aqua\", \"ph\": \"C\", \
             \"ts\": {}, \"pid\": 1, \"tid\": 1, \"args\": {{\"value\": {}}}}}",
            escape(name),
            fmt_us(last_end_us),
            value
        ));
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Per-span-name aggregate used by [`ObsReport`] and the text summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total wall time across them, in ns.
    pub total_ns: u64,
}

/// Aggregated view of one recording: per-phase wall time, operation
/// counters, and histogram summaries — the structure the bench
/// binaries serialize into `BENCH_obs.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Per-phase aggregates, sorted by name.
    pub phases: Vec<PhaseSummary>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl ObsReport {
    /// Aggregates a sink into a report. An empty sink yields an empty
    /// report (no phantom entries).
    pub fn from_sink(sink: &MemorySink) -> ObsReport {
        let mut by_name: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in sink.spans() {
            let entry = by_name.entry(s.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.saturating_add(s.dur_ns);
        }
        ObsReport {
            phases: by_name
                .into_iter()
                .map(|(name, (count, total_ns))| PhaseSummary {
                    name: name.to_owned(),
                    count,
                    total_ns,
                })
                .collect(),
            counters: sink
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            histograms: sink
                .histograms()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        }
    }

    /// Whether the report carries no data at all.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the report as one JSON object (no trailing newline),
    /// suitable for embedding as a value inside a larger document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\": {");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"total_ns\": {}}}",
                escape(&p.name),
                p.count,
                p.total_ns
            ));
        }
        out.push_str("}, \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", escape(name), value));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
                escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Renders the sink as a compact human-readable summary: one line per
/// phase (count, total time), then counters, then histograms.
pub fn text_summary(sink: &MemorySink) -> String {
    let report = ObsReport::from_sink(sink);
    let mut out = String::new();
    if !report.phases.is_empty() {
        out.push_str("phases:\n");
        for p in &report.phases {
            out.push_str(&format!(
                "  {:<28} x{:<6} {}\n",
                p.name,
                p.count,
                fmt_ns(p.total_ns)
            ));
        }
    }
    if !report.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &report.counters {
            out.push_str(&format!("  {name:<28} {value}\n"));
        }
    }
    if !report.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &report.histograms {
            out.push_str(&format!(
                "  {:<28} n={} mean={} min={} max={}\n",
                name,
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.min),
                fmt_ns(h.max)
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no observability data recorded)\n");
    }
    out
}

fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Microseconds with fixed 3-decimal precision (ns resolution), so a
/// deterministic recording formats identically everywhere.
fn fmt_us(us: f64) -> String {
    format!("{us:.3}")
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exposed for the sorted-event invariant; see golden tests.
#[doc(hidden)]
pub fn sorted_spans(sink: &MemorySink) -> Vec<SpanEvent> {
    let mut spans = sink.spans();
    spans.sort_by(|a, b| (a.start_ns, a.tid, a.name).cmp(&(b.start_ns, b.tid, b.name)));
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FakeClock, Obs};
    use std::sync::Arc;

    #[test]
    fn empty_sink_exports_an_empty_but_valid_trace() {
        let sink = MemorySink::new();
        let json = chrome_trace(&sink);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\": \"ms\"}"));
        assert!(ObsReport::from_sink(&sink).is_empty());
        assert_eq!(text_summary(&sink), "(no observability data recorded)\n");
    }

    #[test]
    fn report_aggregates_spans_by_name() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink_and_clock(sink.clone(), Arc::new(FakeClock::new(10)));
        obs.span("a").end();
        obs.span("a").end();
        obs.span("b").end();
        let report = ObsReport::from_sink(&sink);
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].name, "a");
        assert_eq!(report.phases[0].count, 2);
        assert_eq!(report.phases[0].total_ns, 20);
        assert_eq!(report.phases[1].name, "b");
        assert_eq!(report.phases[1].count, 1);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
