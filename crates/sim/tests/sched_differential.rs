//! Differential suite: the scheduled executor must be chemically
//! indistinguishable from the sequential executor.
//!
//! For every paper assay and a family of seeded synthetic programs,
//! fault-free and at 5% / 20% fault rates across 20 seeds each, the
//! scheduled replay's sense set, conservation delta, recovery-tier
//! counts, and violation count must equal the sequential run's —
//! while the schedule itself stays valid and its makespan never
//! exceeds the sequential baseline.

use aqua_assays::Benchmark;
use aqua_compiler::CompileOutput;
use aqua_sim::exec::{ExecConfig, ExecReport, Executor};
use aqua_sim::fault::FaultPlan;
use aqua_sim::sched::{plan, InstrDag, SchedOptions, Schedule};
use aqua_volume::Machine;

/// A machine with enough storage and ports for renamed parallelism
/// (the unit counts stay at the paper defaults).
fn big_machine() -> Machine {
    Machine::paper_default()
        .with_reservoirs(128)
        .with_input_ports(64)
}

fn schedule_for(out: &CompileOutput, machine: &Machine) -> Schedule {
    let sched = plan(out, machine, &SchedOptions::default());
    sched
        .validate()
        .unwrap_or_else(|e| panic!("invalid schedule: {e}"));
    assert!(
        sched.makespan_s <= sched.sequential_s,
        "schedule ({}s) slower than sequential ({}s)",
        sched.makespan_s,
        sched.sequential_s
    );
    assert!(
        sched.makespan_s >= sched.critical_path_s,
        "schedule ({}s) beats the critical path ({}s)",
        sched.makespan_s,
        sched.critical_path_s
    );
    sched
}

fn assert_equivalent(case: &str, seq: &ExecReport, sch: &ExecReport) {
    assert_eq!(
        seq.sense_results.len(),
        sch.sense_results.len(),
        "{case}: sense count"
    );
    for (a, b) in seq.sense_results.iter().zip(&sch.sense_results) {
        assert_eq!(a.target, b.target, "{case}: sense target");
        assert_eq!(a.volume_pl, b.volume_pl, "{case}: sense volume");
        assert_eq!(a.composition, b.composition, "{case}: sense composition");
    }
    assert_eq!(
        seq.conservation_delta_pl(),
        sch.conservation_delta_pl(),
        "{case}: conservation delta"
    );
    assert_eq!(seq.recovery, sch.recovery, "{case}: recovery counters");
    assert_eq!(seq.faults, sch.faults, "{case}: fault counters");
    assert_eq!(
        seq.violations.len(),
        sch.violations.len(),
        "{case}: violation count"
    );
    assert_eq!(seq.wet_seconds, sch.wet_seconds, "{case}: wet seconds");
    assert_eq!(seq.collected_pl, sch.collected_pl, "{case}: collected");
    assert_eq!(seq.input_pl, sch.input_pl, "{case}: input volume");
    assert_eq!(
        seq.dry_registers, sch.dry_registers,
        "{case}: dry registers"
    );
}

fn check_program(case: &str, out: &CompileOutput, machine: &Machine, config: &ExecConfig) {
    let sched = schedule_for(out, machine);
    let seq = Executor::new(machine, config.clone())
        .run(out)
        .unwrap_or_else(|e| panic!("{case}: sequential run failed: {e}"));
    let run = Executor::new(machine, config.clone())
        .run_scheduled(out, &sched)
        .unwrap_or_else(|e| panic!("{case}: scheduled run failed: {e}"));
    assert_equivalent(case, &seq, &run.report);
    assert_eq!(
        seq.wet_seconds, sched.sequential_s,
        "{case}: sequential baseline is exactly the sequential wet time"
    );
    assert!(
        run.realized_makespan_s >= run.makespan_s,
        "{case}: repairs can only lengthen the timeline"
    );
    if run.report.recovery.repair_s == 0 {
        assert_eq!(
            run.realized_makespan_s, run.makespan_s,
            "{case}: no repairs, no re-timing"
        );
        assert_eq!(run.shifted_instrs, 0, "{case}: no repairs, nothing shifts");
    }
}

fn paper_assays(machine: &Machine) -> Vec<(String, CompileOutput)> {
    Benchmark::table2_suite()
        .iter()
        .map(|b| (b.name().to_string(), b.compile(machine).expect("compiles")))
        .collect()
}

#[test]
fn fault_free_matches_sequential_on_paper_assays() {
    let machine = big_machine();
    for (name, out) in paper_assays(&machine) {
        check_program(&name, &out, &machine, &ExecConfig::default());
    }
}

#[test]
fn faulted_recovered_matches_sequential_on_paper_assays() {
    let machine = big_machine();
    let assays = paper_assays(&machine);
    for rate in [0.05, 0.20] {
        for seed in 0..20u64 {
            for (name, out) in &assays {
                let config = ExecConfig {
                    faults: FaultPlan::uniform(seed.wrapping_mul(31).wrapping_add(7), rate),
                    recover: true,
                    ..ExecConfig::default()
                };
                let case = format!("{name} rate={rate} seed={seed}");
                check_program(&case, out, &machine, &config);
            }
        }
    }
}

/// Synthetic wide programs: N independent mix→incubate→sense chains,
/// compiled from generated source. Seeds vary the ratios and
/// durations, so the DAG shapes differ run to run.
fn synthetic_source(seed: u64, chains: u64) -> String {
    let mut s = String::from("ASSAY synth START\nfluid A, B, C;\n");
    for i in 0..chains {
        s.push_str(&format!("fluid m{i};\n"));
    }
    s.push_str(&format!("VAR R[{chains}];\n"));
    let mut rng = aqua_rational::rng::XorShift64Star::new(seed);
    let mut next = move || rng.next_u64();
    for i in 0..chains {
        let r1 = next() % 4 + 1;
        let r2 = next() % 6 + 1;
        let mix_s = next() % 20 + 5;
        let inc_s = next() % 120 + 30;
        let pair = match next() % 3 {
            0 => ("A", "B"),
            1 => ("A", "C"),
            _ => ("B", "C"),
        };
        s.push_str(&format!(
            "m{i} = MIX {} AND {} IN RATIOS {r1} : {r2} FOR {mix_s};\n",
            pair.0, pair.1
        ));
        s.push_str(&format!("INCUBATE m{i} AT 37 FOR {inc_s};\n"));
        s.push_str(&format!("SENSE OPTICAL m{i} INTO R[{}];\n", i + 1));
    }
    s.push_str("END\n");
    s
}

#[test]
fn synthetic_chains_match_sequential_and_speed_up() {
    let machine = big_machine();
    let opts = aqua_compiler::CompileOptions::default();
    for seed in 0..10u64 {
        let src = synthetic_source(seed, 6);
        let out = aqua_compiler::compile(&src, &machine, &opts)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_program(
            &format!("synthetic seed={seed}"),
            &out,
            &machine,
            &ExecConfig::default(),
        );
        // Six independent chains on two mixers and two heaters must
        // overlap: the schedule beats the sequential baseline.
        let sched = plan(&out, &machine, &SchedOptions::default());
        assert!(
            sched.makespan_s < sched.sequential_s,
            "seed {seed}: no overlap ({} vs {})",
            sched.makespan_s,
            sched.sequential_s
        );
    }
}

#[test]
fn synthetic_chains_under_faults_match_sequential() {
    let machine = big_machine();
    let opts = aqua_compiler::CompileOptions::default();
    for seed in 0..20u64 {
        let src = synthetic_source(seed, 4);
        let out = aqua_compiler::compile(&src, &machine, &opts)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for rate in [0.05, 0.20] {
            let config = ExecConfig {
                faults: FaultPlan::uniform(seed, rate),
                recover: true,
                ..ExecConfig::default()
            };
            check_program(
                &format!("synthetic seed={seed} rate={rate}"),
                &out,
                &machine,
                &config,
            );
        }
    }
}

#[test]
fn dag_analysis_is_consistent() {
    let machine = big_machine();
    for (name, out) in paper_assays(&machine) {
        let dag = InstrDag::build(&out);
        assert_eq!(dag.len, out.program.instrs().len(), "{name}: node count");
        // Priorities dominate successors' priorities (critical path).
        for i in 0..dag.len {
            for &s in &dag.succs[i] {
                assert!(
                    dag.priority[i] >= dag.dur_s[i] + dag.priority[s as usize],
                    "{name}: priority inversion at {i}"
                );
                assert!((s as usize) > i, "{name}: backward edge {i}->{s}");
            }
        }
        assert!(dag.critical_path_s <= dag.sequential_s, "{name}: bounds");
    }
}
