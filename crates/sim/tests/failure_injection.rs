//! Failure-injection tests: the simulator must *report* violations —
//! never panic — when fed plans that break the physics.

use aqua_compiler::{compile, CompileOptions};
use aqua_rational::Ratio;
use aqua_sim::exec::{ExecConfig, Executor, Violation};
use aqua_volume::Machine;

const TWO_USES: &str = "
ASSAY t START
fluid A, B, C;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R1;
MIX A AND C FOR 10;
SENSE OPTICAL it INTO R2;
END";

#[test]
fn unmanaged_plans_do_not_panic() {
    let machine = Machine::paper_default();
    let out = compile(
        TWO_USES,
        &machine,
        &CompileOptions {
            skip_volume_management: true,
            ..Default::default()
        },
    )
    .unwrap();
    // Move-all semantics drain A at its first use; the run completes
    // and reports what happened instead of crashing.
    let report = Executor::new(&machine, ExecConfig::default())
        .run(&out)
        .unwrap();
    assert_eq!(report.sense_results.len(), 2);
}

#[test]
fn cross_machine_plans_report_deficits() {
    // Compile for a roomy machine, execute on a cramped one: planned
    // volumes exceed physical capacity, and every shortfall surfaces as
    // a Deficit/Overflow violation.
    let roomy = Machine::paper_default();
    let out = compile(TWO_USES, &roomy, &CompileOptions::default()).unwrap();
    let cramped = Machine::new(Ratio::from_int(20), Ratio::new(1, 10).unwrap()).unwrap();
    let report = Executor::new(&cramped, ExecConfig::default())
        .run(&out)
        .unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Deficit { .. } | Violation::Overflow { .. })),
        "expected deficits/overflows, got {:?}",
        report.violations
    );
}

#[test]
fn sub_least_count_meters_are_flagged() {
    // Compile for fine metering (0.1 nl), execute on coarse hardware
    // (5 nl least count): small planned transfers violate the meter.
    let fine = Machine::paper_default();
    let src = "
ASSAY t START
fluid A, B;
MIX A AND B IN RATIOS 1 : 30 FOR 10;
SENSE OPTICAL it INTO R;
END";
    let out = compile(src, &fine, &CompileOptions::default()).unwrap();
    let coarse = Machine::new(Ratio::from_int(100), Ratio::from_int(5)).unwrap();
    let report = Executor::new(&coarse, ExecConfig::default())
        .run(&out)
        .unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MeterUnderflow { .. })),
        "{:?}",
        report.violations
    );
}

#[test]
fn zero_yield_separation_downstream_is_graceful() {
    let machine = Machine::paper_default();
    let src = "
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
MIX eff AND A IN RATIOS 1 : 1 FOR 30;
SENSE OPTICAL it INTO R;
END";
    let out = compile(src, &machine, &CompileOptions::default()).unwrap();
    // A separation that yields (almost) nothing: downstream volumes
    // scale to (almost) nothing; the run ends without panicking.
    let config = ExecConfig {
        unknown_separation_yield: 0.001,
        ..ExecConfig::default()
    };
    let report = Executor::new(&machine, config).run(&out).unwrap();
    assert_eq!(report.sense_results.len(), 1);
    assert!(report.sense_results[0].volume_pl < 1000);
}

#[test]
fn deficit_tolerance_is_configurable() {
    let machine = Machine::paper_default();
    let out = compile(TWO_USES, &machine, &CompileOptions::default()).unwrap();
    // An absurdly large tolerance silences everything; zero tolerance
    // can only add violations relative to the default.
    let lenient = ExecConfig {
        deficit_tolerance_lc: u64::MAX / 1000,
        ..ExecConfig::default()
    };
    let strict = ExecConfig {
        deficit_tolerance_lc: 0,
        ..ExecConfig::default()
    };
    let lenient_report = Executor::new(&machine, lenient).run(&out).unwrap();
    let strict_report = Executor::new(&machine, strict).run(&out).unwrap();
    let deficits = |r: &aqua_sim::ExecReport| {
        r.violations
            .iter()
            .filter(|v| matches!(v, Violation::Deficit { .. }))
            .count()
    };
    assert!(deficits(&lenient_report) <= deficits(&strict_report));
}
