//! Differential fault testing over the paper's assays: under every
//! single-fault scenario, a recovering run either completes with the
//! same sensor-reading set as the fault-free run, or reports a typed,
//! non-panicking failure — never a silently wrong result.

use std::collections::BTreeMap;

use aqua_assays::Benchmark;
use aqua_sim::{
    ExecConfig, ExecReport, Executor, FaultPlan, ScriptedFault, ScriptedKind, Violation,
};
use aqua_volume::Machine;

/// The assay suite: the running example plus the paper benchmarks small
/// enough to sweep every dispense index (Enzyme10 is covered by the
/// `fault_sweep` benchmark instead).
fn suite() -> Vec<(&'static str, String)> {
    vec![
        ("fig2", aqua_assays::figure2::SOURCE.to_owned()),
        ("glucose", Benchmark::Glucose.source()),
        ("glycomics", Benchmark::Glycomics.source()),
        ("enzyme4", Benchmark::Enzyme.source()),
    ]
}

/// The single-fault scenarios, one scripted fault each.
fn scenarios() -> Vec<(&'static str, ScriptedKind)> {
    vec![
        ("transient", ScriptedKind::Transient),
        ("stuck-half", ScriptedKind::Stuck { per_mille: 500 }),
        ("over-meter", ScriptedKind::Meter { delta_lc: 2 }),
        ("under-meter", ScriptedKind::Meter { delta_lc: -2 }),
        ("sensor-high", ScriptedKind::Sensor { per_mille: 1400 }),
    ]
}

/// The multiset of sense-result targets (the observable outcome of the
/// assay, ignoring exact volumes which faults legitimately perturb).
fn sense_targets(report: &ExecReport) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for s in &report.sense_results {
        *m.entry(s.target.clone()).or_insert(0) += 1;
    }
    m
}

fn hard_violations(report: &ExecReport) -> Vec<&Violation> {
    report
        .violations
        .iter()
        .filter(|v| matches!(v, Violation::Deficit { .. } | Violation::Overflow { .. }))
        .collect()
}

#[test]
fn every_single_fault_recovers_or_fails_typed() {
    let machine = Machine::paper_default();
    for (assay, source) in suite() {
        let out = aqua_compiler::compile(&source, &machine, &Default::default())
            .unwrap_or_else(|e| panic!("{assay}: {e}"));
        let clean = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap_or_else(|e| panic!("{assay} fault-free: {e}"));
        let want = sense_targets(&clean);
        // Count metered dispenses in the clean run so the sweep covers
        // every index (inputs + metered moves ≈ wet instructions).
        let dispenses = clean.wet_instructions.max(8);
        for (scenario, kind) in scenarios() {
            for at in 0..dispenses {
                let config = ExecConfig {
                    faults: FaultPlan::script(ScriptedFault { at, kind }),
                    recover: true,
                    ..ExecConfig::default()
                };
                match Executor::new(&machine, config).run(&out) {
                    Ok(report) => {
                        // Completion must mean the full reading set —
                        // anything less must have surfaced as a typed
                        // violation, not vanished.
                        let got = sense_targets(&report);
                        if hard_violations(&report).is_empty() {
                            assert_eq!(
                                got, want,
                                "{assay}/{scenario}@{at}: silent result divergence"
                            );
                        } else {
                            // A reported failure is acceptable; a wrong
                            // *set* of readings with no report is not.
                            assert!(
                                got.len() <= want.len(),
                                "{assay}/{scenario}@{at}: extra readings"
                            );
                        }
                        // Every injected fault is counted.
                        if report.faults.total() == 0 {
                            // The scripted index was past the last
                            // dispense/measurement — a clean replay.
                            assert_eq!(got, want, "{assay}/{scenario}@{at}");
                        }
                    }
                    Err(err) => {
                        // Typed, matchable, non-panicking.
                        let _: &dyn std::error::Error = &err;
                        assert!(
                            matches!(err, aqua_sim::ExecError::RuntimeDispense { .. }),
                            "{assay}/{scenario}@{at}: unexpected structural error {err}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn uniform_faults_reproduce_exactly_per_seed() {
    let machine = Machine::paper_default();
    for (assay, source) in suite() {
        let out = aqua_compiler::compile(&source, &machine, &Default::default()).unwrap();
        for seed in [1u64, 17, 7777] {
            let mk = || {
                let config = ExecConfig {
                    faults: FaultPlan::uniform(seed, 0.15),
                    recover: true,
                    record_trace: true,
                    ..ExecConfig::default()
                };
                Executor::new(&machine, config).run(&out).unwrap()
            };
            let a = mk();
            let b = mk();
            assert_eq!(a.faults, b.faults, "{assay} seed {seed}: fault counters");
            assert_eq!(a.recovery, b.recovery, "{assay} seed {seed}: recovery");
            assert_eq!(a.trace, b.trace, "{assay} seed {seed}: trace");
            assert_eq!(
                a.violations, b.violations,
                "{assay} seed {seed}: violations"
            );
            let va: Vec<_> = a.sense_results.iter().map(|s| s.volume_pl).collect();
            let vb: Vec<_> = b.sense_results.iter().map(|s| s.volume_pl).collect();
            assert_eq!(va, vb, "{assay} seed {seed}: sensed volumes");
            assert_eq!(a.conservation_delta_pl(), 0, "{assay} seed {seed}");
        }
    }
}

#[test]
fn recovery_is_off_by_default_and_faults_stay_visible() {
    // The no-recovery contract: with faults on but recovery off, a
    // materially starved run reports a Deficit rather than patching
    // itself — the behavioral baseline the paper's Fig. 6 run-time
    // ladder is measured against.
    let machine = Machine::paper_default();
    let out = aqua_compiler::compile(&Benchmark::Glucose.source(), &machine, &Default::default())
        .unwrap();
    let mut saw_deficit = false;
    for seed in 0..20u64 {
        let config = ExecConfig {
            faults: FaultPlan::uniform(seed, 0.25),
            ..ExecConfig::default()
        };
        let report = Executor::new(&machine, config).run(&out).unwrap();
        assert_eq!(report.recovery.total_recovered(), 0, "seed {seed}");
        assert_eq!(report.recovery.extra_volume_pl, 0, "seed {seed}");
        saw_deficit |= report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Deficit { .. }));
        assert_eq!(report.conservation_delta_pl(), 0, "seed {seed}");
    }
    assert!(
        saw_deficit,
        "25% fault rate never starved glucose across 20 seeds"
    );
}
