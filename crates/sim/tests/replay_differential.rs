//! Replay-determinism differential tests.
//!
//! The replay service's contract: a recorded [`RunDescriptor`] replayed
//! at any thread count yields the same per-run digest as the original
//! recorded run — fault-free and faulted. These tests record a mixed
//! descriptor fleet (three real assays, fault-free and faulted at
//! several rates), replay it at 1, 2, and 8 threads, and require every
//! per-run digest and the order-invariant aggregate to be identical.

use aqua_compiler::{compile, CompileOptions};
use aqua_obs::fleet::FleetSink;
use aqua_obs::Obs;
use aqua_sim::replay::{replay, run_one, PlanSet, ReplayOptions, RunDescriptor};
use aqua_volume::Machine;
use std::sync::Arc;

fn plan_set() -> PlanSet {
    let machine = Machine::paper_default();
    let mut plans = PlanSet::new();
    for (name, src) in [
        ("figure2", aqua_assays::figure2::SOURCE.to_string()),
        ("glucose", aqua_assays::glucose::SOURCE.to_string()),
        ("glycomics", aqua_assays::glycomics::SOURCE.to_string()),
    ] {
        let out = compile(&src, &machine, &CompileOptions::default()).expect("assay compiles");
        plans.insert(name, machine.clone(), out);
    }
    plans
}

/// A mixed fleet: every assay, fault-free and faulted at three rates,
/// several seeds each.
fn fleet() -> Vec<RunDescriptor> {
    let mut out = Vec::new();
    for assay in ["figure2", "glucose", "glycomics"] {
        for seed in 0..4u64 {
            out.push(RunDescriptor::new(assay, seed));
        }
        for &rate_ppm in &[1_000u32, 5_000, 20_000] {
            for seed in 0..4u64 {
                out.push(RunDescriptor::faulted(assay, 77 + seed, rate_ppm));
            }
        }
    }
    out
}

#[test]
fn every_descriptor_replays_to_the_recorded_digest_at_any_thread_count() {
    let plans = plan_set();
    let descriptors = fleet();

    // "Record": run each descriptor standalone — the original runs.
    let recorded: Vec<u64> = descriptors
        .iter()
        .map(|d| run_one(&plans, d, Obs::off()).expect("recorded run").1)
        .collect();

    let mut aggregates = Vec::new();
    for threads in [1usize, 2, 8] {
        let opts = ReplayOptions {
            threads,
            keep_digests: true,
            ..ReplayOptions::default()
        };
        let fleet = replay(&plans, &descriptors, &opts).expect("replay");
        assert_eq!(fleet.runs, descriptors.len() as u64);
        for (i, (d, &digest)) in descriptors.iter().zip(&fleet.digests).enumerate() {
            assert_eq!(
                digest, recorded[i],
                "descriptor {i} ({}, seed {}, {} ppm) diverged at {threads} threads",
                d.assay, d.seed, d.fault_rate_ppm
            );
        }
        aggregates.push(fleet.aggregate_digest);
    }
    assert_eq!(
        aggregates[0], aggregates[1],
        "aggregate diverged at 2 threads"
    );
    assert_eq!(
        aggregates[0], aggregates[2],
        "aggregate diverged at 8 threads"
    );
}

#[test]
fn fleet_obs_rollup_is_thread_count_invariant() {
    let plans = plan_set();
    let descriptors = fleet();
    let mut renderings = Vec::new();
    for threads in [1usize, 4] {
        let sink = Arc::new(FleetSink::new());
        let opts = ReplayOptions {
            threads,
            obs: Obs::with_sink(sink.clone()),
            ..ReplayOptions::default()
        };
        let fleet = replay(&plans, &descriptors, &opts).expect("replay");
        let snap = sink.snapshot();
        assert_eq!(snap.counter("replay.runs"), fleet.runs);
        // The executor's own counters roll up too, and agree with the
        // fleet report's sums.
        assert_eq!(snap.counter("sim.faults"), fleet.faults_injected);
        renderings.push(snap.to_json());
    }
    // Counters and histograms (not wall-clock spans) are sums of
    // per-run deterministic values, so the aggregate matches exactly;
    // compare those sections rather than the timing-dependent spans.
    let strip_spans = |s: &str| {
        let start = s.find("\"spans\"").expect("spans section");
        let end = s.find("\"hists\"").expect("hists section");
        format!("{}{}", &s[..start], &s[end..])
    };
    let a = strip_spans(&renderings[0]);
    let b = strip_spans(&renderings[1]);
    // Histogram *counts* are invariant; sums include timing histograms
    // (replay.run_ns), so compare counter sections and histogram counts.
    assert_eq!(
        a.split("\"hists\"").next(),
        b.split("\"hists\"").next(),
        "counter roll-up diverged across thread counts"
    );
}

#[test]
fn descriptors_survive_a_log_roundtrip_and_still_replay_identically() {
    use aqua_sim::replay::DescriptorLog;

    let plans = plan_set();
    let descriptors = fleet();
    let dir = std::env::temp_dir().join(format!("replay-differential-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (mut log, _, _) = DescriptorLog::open(DescriptorLog::config(&dir)).expect("open");
        for d in &descriptors {
            log.append(d).expect("append");
        }
    }
    let (_log, recovered, report) =
        DescriptorLog::open(DescriptorLog::config(&dir)).expect("reopen");
    assert_eq!(report.records, descriptors.len());
    assert_eq!(recovered, descriptors, "log roundtrip altered a descriptor");

    let opts = ReplayOptions {
        threads: 2,
        keep_digests: true,
        ..ReplayOptions::default()
    };
    let original = replay(&plans, &descriptors, &opts).expect("replay originals");
    let rehydrated = replay(&plans, &recovered, &opts).expect("replay recovered");
    assert_eq!(original.aggregate_digest, rehydrated.aggregate_digest);
    assert_eq!(original.digests, rehydrated.digests);
    let _ = std::fs::remove_dir_all(&dir);
}
