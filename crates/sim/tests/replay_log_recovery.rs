//! Crash-recovery property tests for the replay descriptor log.
//!
//! The log's contract (mirroring the plan store's): rehydration after a
//! crash recovers **every descriptor that was durably written**, stops
//! at torn tails instead of yielding partial descriptors, and a
//! replayed fleet built from a damaged log never diverges from the
//! intact prefix — a recovered descriptor is byte-identical to what was
//! appended or absent, never altered. Randomized truncation and
//! corruption with seeded `XorShift64Star`, so failures reproduce.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::path::PathBuf;

use aqua_compiler::{compile, CompileOptions};
use aqua_obs::Obs;
use aqua_rational::rng::XorShift64Star;
use aqua_seglog::RecordSpan;
use aqua_sim::replay::{replay, run_one, DescriptorLog, PlanSet, ReplayOptions, RunDescriptor};
use aqua_volume::Machine;

fn test_dir(name: &str, trial: usize) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("replay_log_recovery")
        .join(format!("{name}-{}-{trial}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean test dir");
    }
    dir
}

/// Appends `n` random descriptors and returns them with their spans
/// (all in one segment — the default segment size is far larger).
fn fill_log(dir: &PathBuf, rng: &mut XorShift64Star, n: usize) -> Vec<(RunDescriptor, RecordSpan)> {
    let (mut log, existing, _) = DescriptorLog::open(DescriptorLog::config(dir)).expect("open");
    assert!(existing.is_empty());
    let assays = ["figure2", "glucose", "glycomics"];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let assay = assays[(rng.next_u64() % assays.len() as u64) as usize];
        let d = if rng.next_u64().is_multiple_of(2) {
            RunDescriptor::new(assay, rng.next_u64() ^ i as u64)
        } else {
            RunDescriptor::faulted(assay, rng.next_u64(), rng.range_u64(100, 50_000) as u32)
        };
        let span = log.append(&d).expect("append");
        out.push((d, span));
    }
    assert_eq!(log.segment_count(), 1, "test assumes a single segment");
    out
}

fn only_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().map(|e| e == "log").unwrap_or(false))
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1, "test assumes a single segment: {segs:?}");
    segs.pop().expect("one segment")
}

/// Truncating the log at any byte boundary must recover exactly the
/// descriptors that end at or before the cut — nothing partial,
/// nothing reordered, every survivor byte-identical.
#[test]
fn truncation_recovers_exactly_the_intact_prefix() {
    let mut rng = XorShift64Star::new(0x0DE5_C0DE);
    for trial in 0..12 {
        let dir = test_dir("truncate", trial);
        let appended = fill_log(&dir, &mut rng, 24);
        let seg = only_segment(&dir);
        let full_len = std::fs::metadata(&seg).expect("metadata").len();
        let first_offset = appended[0].1.offset;
        let cut = rng.range_u64(first_offset, full_len);
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open segment")
            .set_len(cut)
            .expect("truncate");

        let (_log, recovered, report) =
            DescriptorLog::open(DescriptorLog::config(&dir)).expect("recover");
        let expected: Vec<&RunDescriptor> = appended
            .iter()
            .filter(|(_, span)| span.offset + span.len <= cut)
            .map(|(d, _)| d)
            .collect();
        assert_eq!(
            recovered.len(),
            expected.len(),
            "trial {trial}: cut at {cut} of {full_len}"
        );
        for (r, e) in recovered.iter().zip(&expected) {
            assert_eq!(&r, e, "trial {trial}: recovered descriptor diverged");
        }
        if expected.len() < appended.len()
            && cut
                > expected
                    .iter()
                    .zip(&appended)
                    .map(|(_, (_, span))| span.offset + span.len)
                    .max()
                    .unwrap_or(first_offset)
        {
            assert!(report.truncated_bytes > 0, "torn tail must be truncated");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Flipping one byte inside the log must never surface an altered
/// descriptor: recovery stops at the corruption, and everything before
/// it survives byte-identically.
#[test]
fn corruption_never_yields_a_divergent_descriptor() {
    let mut rng = XorShift64Star::new(0xBAD_5EED);
    for trial in 0..12 {
        let dir = test_dir("corrupt", trial);
        let appended = fill_log(&dir, &mut rng, 24);
        let seg = only_segment(&dir);
        let mut bytes = std::fs::read(&seg).expect("read segment");
        let first_offset = appended[0].1.offset as usize;
        let victim = rng.range_u64(first_offset as u64, bytes.len() as u64 - 1) as usize;
        bytes[victim] ^= 0x40;
        std::fs::write(&seg, &bytes).expect("write corrupted");

        let (_log, recovered, _report) =
            DescriptorLog::open(DescriptorLog::config(&dir)).expect("recover");
        // Every recovered descriptor must match its appended original —
        // a corrupted record may be *dropped* but never *altered*.
        for (r, (a, _)) in recovered.iter().zip(&appended) {
            assert_eq!(
                r, a,
                "trial {trial}: corruption yielded a divergent descriptor"
            );
        }
        // Records strictly before the corrupted byte must all survive
        // (the scan stops at the first bad record, not before it).
        let intact_before = appended
            .iter()
            .filter(|(_, span)| (span.offset + span.len) as usize <= victim)
            .count();
        assert!(
            recovered.len() >= intact_before,
            "trial {trial}: lost descriptors before the corruption at {victim}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// End-to-end: a fleet replayed from a damaged log equals the same
/// descriptors replayed from memory — damage can shrink the fleet (to
/// an exact prefix) but never change any surviving run's digest, and
/// never yields a partial or divergent run.
#[test]
fn damaged_log_never_replays_a_divergent_or_partial_run() {
    let machine = Machine::paper_default();
    let mut plans = PlanSet::new();
    for (name, src) in [
        ("figure2", aqua_assays::figure2::SOURCE.to_string()),
        ("glucose", aqua_assays::glucose::SOURCE.to_string()),
        ("glycomics", aqua_assays::glycomics::SOURCE.to_string()),
    ] {
        let out = compile(&src, &machine, &CompileOptions::default()).expect("assay compiles");
        plans.insert(name, machine.clone(), out);
    }
    // Reference digests for every descriptor we might append, keyed by
    // the descriptor itself (descriptors are Eq).
    let mut reference: HashMap<Vec<u8>, u64> = HashMap::new();

    let mut rng = XorShift64Star::new(0xFEED_FACE);
    for trial in 0..4 {
        let dir = test_dir("replay", trial);
        let appended = fill_log(&dir, &mut rng, 12);
        for (d, _) in &appended {
            reference
                .entry(d.encode())
                .or_insert_with(|| run_one(&plans, d, Obs::off()).expect("reference run").1);
        }
        // Damage the tail: truncate or corrupt, coin-flip.
        let seg = only_segment(&dir);
        let full_len = std::fs::metadata(&seg).expect("metadata").len();
        if rng.next_u64().is_multiple_of(2) {
            let cut = rng.range_u64(appended[0].1.offset, full_len);
            OpenOptions::new()
                .write(true)
                .open(&seg)
                .expect("open")
                .set_len(cut)
                .expect("truncate");
        } else {
            let mut bytes = std::fs::read(&seg).expect("read");
            let victim = rng.range_u64(appended[0].1.offset, full_len - 1) as usize;
            bytes[victim] ^= 0x08;
            std::fs::write(&seg, &bytes).expect("write");
        }

        let (_log, recovered, _) =
            DescriptorLog::open(DescriptorLog::config(&dir)).expect("recover");
        assert!(recovered.len() <= appended.len());
        // The recovered fleet is an exact prefix of what was appended.
        for (r, (a, _)) in recovered.iter().zip(&appended) {
            assert_eq!(
                r, a,
                "trial {trial}: recovery reordered or altered the fleet"
            );
        }
        let opts = ReplayOptions {
            threads: 2,
            keep_digests: true,
            ..ReplayOptions::default()
        };
        let fleet = replay(&plans, &recovered, &opts).expect("replay recovered fleet");
        for (d, &digest) in recovered.iter().zip(&fleet.digests) {
            assert_eq!(
                digest,
                reference[&d.encode()],
                "trial {trial}: damaged log produced a divergent run"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
