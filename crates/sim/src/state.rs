//! Fluid contents of the wet datapath.

use std::collections::HashMap;

use aqua_ais::{Picoliters, WetLoc};

/// The contents of one location: total volume plus composition by
/// original input fluid. Volumes are picoliters; composition uses `f64`
/// because ratio splits need not be integral per component.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Contents {
    /// Total volume in picoliters.
    pub volume_pl: Picoliters,
    /// Volume per constituent input fluid (picoliters, fractional).
    pub composition: HashMap<String, f64>,
}

impl Contents {
    /// A pure volume of one named fluid.
    pub fn pure(name: &str, volume_pl: Picoliters) -> Contents {
        let mut composition = HashMap::new();
        composition.insert(name.to_owned(), volume_pl as f64);
        Contents {
            volume_pl,
            composition,
        }
    }

    /// Whether nothing is here.
    pub fn is_empty(&self) -> bool {
        self.volume_pl == 0
    }

    /// Splits off `amount` picoliters, preserving composition
    /// proportions. Callers must check availability first.
    ///
    /// # Panics
    ///
    /// Panics if `amount > self.volume_pl`.
    pub fn split(&mut self, amount: Picoliters) -> Contents {
        assert!(amount <= self.volume_pl, "split exceeds contents");
        if self.volume_pl == 0 {
            return Contents::default();
        }
        let share = amount as f64 / self.volume_pl as f64;
        let mut out = Contents {
            volume_pl: amount,
            composition: HashMap::new(),
        };
        for (k, v) in self.composition.iter_mut() {
            let taken = *v * share;
            *v -= taken;
            out.composition.insert(k.clone(), taken);
        }
        self.volume_pl -= amount;
        out
    }

    /// Merges another portion into this location.
    pub fn merge(&mut self, other: Contents) {
        self.volume_pl += other.volume_pl;
        for (k, v) in other.composition {
            *self.composition.entry(k).or_insert(0.0) += v;
        }
    }
}

/// All wet locations of the chip.
#[derive(Debug, Clone, Default)]
pub struct ChipState {
    contents: HashMap<WetLoc, Contents>,
    /// Fluid collected at output ports (accumulated, never read back).
    pub collected: HashMap<u32, Contents>,
    /// Sub-least-count residue lost in the channels (accumulated by
    /// [`ChipState::clear_residue`]), so the conservation identity
    /// `inputs = outputs + sensed + flushed + on-chip + residue` holds
    /// exactly.
    pub residue_pl: Picoliters,
}

impl ChipState {
    /// Creates an empty chip.
    pub fn new() -> ChipState {
        ChipState::default()
    }

    /// Read-only contents at a location (empty if untouched).
    pub fn at(&self, loc: WetLoc) -> Contents {
        self.contents.get(&loc).cloned().unwrap_or_default()
    }

    /// Volume at a location.
    pub fn volume(&self, loc: WetLoc) -> Picoliters {
        self.contents.get(&loc).map_or(0, |c| c.volume_pl)
    }

    /// Mutable contents at a location.
    pub fn at_mut(&mut self, loc: WetLoc) -> &mut Contents {
        self.contents.entry(loc).or_default()
    }

    /// Takes everything at a location.
    pub fn take_all(&mut self, loc: WetLoc) -> Contents {
        self.contents.remove(&loc).unwrap_or_default()
    }

    /// Takes `amount` from a location (caller checked availability).
    ///
    /// # Panics
    ///
    /// Panics if more than available is requested.
    pub fn take(&mut self, loc: WetLoc, amount: Picoliters) -> Contents {
        let c = self.at_mut(loc);
        let out = c.split(amount);
        if c.volume_pl == 0 {
            self.contents.remove(&loc);
        }
        out
    }

    /// Deposits a portion at a location, returning the new volume.
    pub fn deposit(&mut self, loc: WetLoc, portion: Contents) -> Picoliters {
        let c = self.at_mut(loc);
        c.merge(portion);
        c.volume_pl
    }

    /// Drops sub-least-count residue at a location (dead volume lost in
    /// the channels); keeps the state clean for reuse. The dropped
    /// volume is accumulated in [`ChipState::residue_pl`].
    pub fn clear_residue(&mut self, loc: WetLoc, least_count_pl: Picoliters) {
        if let Some(c) = self.contents.get(&loc) {
            if c.volume_pl < least_count_pl {
                self.residue_pl += c.volume_pl;
                self.contents.remove(&loc);
            }
        }
    }

    /// Total fluid currently on the chip (all locations), in pl.
    pub fn total_volume_pl(&self) -> Picoliters {
        self.contents.values().map(|c| c.volume_pl).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_proportions() {
        let mut c = Contents::pure("A", 600);
        c.merge(Contents::pure("B", 400));
        let taken = c.split(500);
        assert_eq!(taken.volume_pl, 500);
        assert!((taken.composition["A"] - 300.0).abs() < 1e-9);
        assert!((taken.composition["B"] - 200.0).abs() < 1e-9);
        assert_eq!(c.volume_pl, 500);
    }

    #[test]
    fn take_and_deposit_roundtrip() {
        let mut chip = ChipState::new();
        chip.deposit(WetLoc::Reservoir(1), Contents::pure("X", 1000));
        let portion = chip.take(WetLoc::Reservoir(1), 300);
        chip.deposit(WetLoc::Mixer(1), portion);
        assert_eq!(chip.volume(WetLoc::Reservoir(1)), 700);
        assert_eq!(chip.volume(WetLoc::Mixer(1)), 300);
    }

    #[test]
    fn take_all_empties() {
        let mut chip = ChipState::new();
        chip.deposit(WetLoc::Mixer(1), Contents::pure("X", 123));
        let c = chip.take_all(WetLoc::Mixer(1));
        assert_eq!(c.volume_pl, 123);
        assert_eq!(chip.volume(WetLoc::Mixer(1)), 0);
    }

    #[test]
    fn residue_is_cleared_below_least_count() {
        let mut chip = ChipState::new();
        chip.deposit(WetLoc::Reservoir(2), Contents::pure("X", 40));
        chip.clear_residue(WetLoc::Reservoir(2), 100);
        assert_eq!(chip.volume(WetLoc::Reservoir(2)), 0);
        // Dead volume is accounted, not silently lost.
        assert_eq!(chip.residue_pl, 40);
        chip.deposit(WetLoc::Reservoir(2), Contents::pure("X", 140));
        chip.clear_residue(WetLoc::Reservoir(2), 100);
        assert_eq!(chip.volume(WetLoc::Reservoir(2)), 140);
        assert_eq!(chip.residue_pl, 40);
    }

    #[test]
    fn total_volume_sums_all_locations() {
        let mut chip = ChipState::new();
        chip.deposit(WetLoc::Reservoir(1), Contents::pure("A", 300));
        chip.deposit(WetLoc::Mixer(1), Contents::pure("B", 200));
        assert_eq!(chip.total_volume_pl(), 500);
    }

    #[test]
    #[should_panic(expected = "split exceeds contents")]
    fn overdraw_panics() {
        let mut c = Contents::pure("A", 10);
        let _ = c.split(11);
    }
}
