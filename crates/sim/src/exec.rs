//! The AIS instruction executor.
//!
//! Runs a compiled program against [`crate::state::ChipState`],
//! resolving every transfer volume from the compiler's plan. For
//! partitioned (unknown-volume) assays, the executor lazily dispenses
//! each partition the first time one of its volumes is needed, feeding
//! separation measurements recorded during execution back into the
//! run-time dispenser (§3.5) — the work that runs on the fast
//! electronic controller on real hardware.
//!
//! The executor can also inject hardware faults from a seeded
//! [`crate::fault::FaultPlan`] and, with [`ExecConfig::recover`] on,
//! walk the Fig. 6 hierarchy *at run time* to close the resulting
//! shortfalls: re-dispense from source slack, regenerate the starved
//! fluid's backward slice, and re-solve volumes with the observed
//! availability as constraints.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aqua_ais::{Instr, Picoliters, SepPort, WetLoc};
use aqua_compiler::{CompileOutput, PlannedVolume, VolumeResolution};
use aqua_dag::{EdgeId, NodeId, Ratio};
use aqua_volume::dagsolve::VolumeAssignment;
use aqua_volume::unknown::PartitionError;
use aqua_volume::{Machine, ManagedOutcome, VolumeManagerOptions};

use crate::fault::{
    FaultCounters, FaultKind, FaultPlan, FaultState, RecoveryCounters, RecoveryTier,
};
use crate::sched::{rename_instr, JobSchedule, Schedule};
use crate::state::{ChipState, Contents};
use crate::trace::{TraceEvent, TraceKind};

/// Configuration of one execution.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Yield model for unknown-volume separations: the fraction of the
    /// input that comes out as effluent (default 1/2).
    pub unknown_separation_yield: f64,
    /// Shortfall tolerance in least counts: a metered move finding
    /// slightly less fluid than planned (rounding drift) is clamped
    /// rather than flagged (default 1 least count).
    pub deficit_tolerance_lc: u64,
    /// Record a per-instruction [`crate::trace::TraceEvent`] stream in
    /// the report (off by default; traces of large assays are big).
    pub record_trace: bool,
    /// Hardware faults to inject, drawn from a seeded PRNG stream
    /// (none by default — the default config is bit-identical to the
    /// pre-fault executor).
    pub faults: FaultPlan,
    /// Walk the run-time recovery ladder (re-dispense → regenerate →
    /// re-solve) on shortfalls and overflows instead of only reporting
    /// violations. Off by default: the unmanaged baseline and the
    /// violation-reporting tests rely on failures staying visible.
    pub recover: bool,
    /// Tier-1 budget: top-up dispenses attempted per shortfall before
    /// escalating (default 2).
    pub max_redispense: u32,
    /// Observability handle: the `sim.run` span, per-instruction
    /// `sim.instr_ns` histogram, and `sim.instructions` / `sim.faults` /
    /// `sim.recover.*` counters flow through here. The default
    /// [`aqua_obs::Obs::off`] handle reduces every probe to one branch.
    pub obs: aqua_obs::Obs,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            unknown_separation_yield: 0.5,
            deficit_tolerance_lc: 1,
            record_trace: false,
            faults: FaultPlan::none(),
            recover: false,
            max_redispense: 2,
            obs: aqua_obs::Obs::off(),
        }
    }
}

/// One recorded sensor reading.
#[derive(Debug, Clone)]
pub struct SenseResult {
    /// The result-slot label (`Result[3]`).
    pub target: String,
    /// Volume sensed, in picoliters.
    pub volume_pl: Picoliters,
    /// Composition of the sensed fluid (picoliters per input fluid).
    pub composition: HashMap<String, f64>,
}

/// A constraint violation observed during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A metered transfer below the least count.
    MeterUnderflow {
        /// Instruction index.
        instr: usize,
        /// Requested volume (pl).
        requested_pl: Picoliters,
    },
    /// A location exceeded the machine capacity.
    Overflow {
        /// Instruction index.
        instr: usize,
        /// The overfull location.
        loc: WetLoc,
        /// Volume after the transfer (pl).
        volume_pl: Picoliters,
    },
    /// A transfer found materially less fluid than planned — the
    /// condition that forces regeneration at run time.
    Deficit {
        /// Instruction index.
        instr: usize,
        /// The drained location.
        loc: WetLoc,
        /// Requested volume (pl).
        requested_pl: Picoliters,
        /// Actually available volume (pl).
        available_pl: Picoliters,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MeterUnderflow {
                instr,
                requested_pl,
            } => write!(
                f,
                "instruction {instr}: metered transfer of {requested_pl} pl is below the \
                 least count"
            ),
            Violation::Overflow {
                instr,
                loc,
                volume_pl,
            } => write!(f, "instruction {instr}: {loc} overflows at {volume_pl} pl"),
            Violation::Deficit {
                instr,
                loc,
                requested_pl,
                available_pl,
            } => write!(
                f,
                "instruction {instr}: {loc} holds {available_pl} pl but {requested_pl} pl \
                 were requested (regeneration needed)"
            ),
        }
    }
}

/// Execution report.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Sensor readings in program order.
    pub sense_results: Vec<SenseResult>,
    /// All violations (empty = clean run).
    pub violations: Vec<Violation>,
    /// Wet instructions executed.
    pub wet_instructions: u64,
    /// Fluid collected at output ports (pl per port).
    pub collected_pl: HashMap<u32, Picoliters>,
    /// The chip's contents when the program finished (parked products,
    /// unused leftovers).
    pub final_state: crate::state::ChipState,
    /// Dry (controller) registers after execution. `sense` writes the
    /// reading into its destination register (modeled as the sensed
    /// volume in picoliters); `dry-*` ALU ops compute over them.
    pub dry_registers: HashMap<String, i64>,
    /// Total wall time of the wet datapath in seconds (mix/incubate/
    /// separate/concentrate durations; transfers are counted as 1 s
    /// each) — the denominator of the paper's "run-time volume
    /// computation is negligible" argument.
    pub wet_seconds: u64,
    /// Per-instruction trace (only when [`ExecConfig::record_trace`]).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Faults injected during the run, by kind.
    pub faults: FaultCounters,
    /// Recovery actions taken, by ladder tier.
    pub recovery: RecoveryCounters,
    /// Total fluid drawn onto the chip through input ports, in pl (the
    /// fault-overhead numerator; with `extra_volume_pl` it closes the
    /// conservation identity against outputs + sensed + flushed +
    /// on-chip + residue).
    pub input_pl: Picoliters,
    /// Matrix/pusher volume flushed through separator columns, in pl.
    pub flushed_pl: Picoliters,
    /// Extra wet seconds spent on recovery, per instruction index:
    /// one second per top-up dispense and per overflow trim, the
    /// backward-slice step count per regeneration, zero for electronic
    /// re-solves. [`crate::sched::Schedule::splice`] consumes this map
    /// to re-time a schedule around observed repairs.
    pub repair_s: HashMap<usize, u64>,
}

/// Result of a scheduled execution ([`Executor::run_scheduled`]).
#[derive(Debug)]
pub struct ScheduledRun {
    /// The replay's report — bit-identical to sequential execution.
    pub report: ExecReport,
    /// The schedule's fault-free makespan, seconds.
    pub makespan_s: u64,
    /// Makespan after splicing the observed repairs back in, seconds.
    pub realized_makespan_s: u64,
    /// Instructions whose start time moved in the splice — faults
    /// quiesce only their dependence/occupancy cone.
    pub shifted_instrs: u64,
}

/// Execution error (structural problems; constraint violations are
/// reported in [`ExecReport::violations`] instead).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ExecError {
    /// The program references state the plan cannot resolve (compiler
    /// bug or hand-built program).
    Structural(String),
    /// The §3.5 run-time dispenser could not solve a partition's
    /// volumes (typed so the recovery engine and tests can match on
    /// the underlying [`PartitionError`]).
    RuntimeDispense {
        /// Instruction whose volume resolution triggered dispensing.
        instr: usize,
        /// The partition that failed.
        partition: usize,
        /// Why dispensing failed.
        error: PartitionError,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Structural(msg) => write!(f, "execution failed: {msg}"),
            ExecError::RuntimeDispense {
                instr,
                partition,
                error,
            } => write!(
                f,
                "instruction {instr}: run-time dispensing of partition {partition} \
                 failed: {error}"
            ),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Structural(_) => None,
            ExecError::RuntimeDispense { error, .. } => Some(error),
        }
    }
}

/// All mutable state of one run, bundled so the executor's helpers can
/// borrow its fields disjointly.
struct RunState<'a> {
    out: &'a CompileOutput,
    chip: ChipState,
    report: ExecReport,
    /// Lazy per-partition dispensing state (§3.5).
    dispensed: Vec<Option<VolumeAssignment>>,
    measurements: HashMap<(usize, NodeId), Ratio>,
    faults: FaultState,
    /// Edge volumes installed by a tier-3 whole-DAG replan, in pl.
    replanned_edges: HashMap<EdgeId, Picoliters>,
    /// Lazily computed per-node product compositions (tier 2).
    compositions: Option<Vec<HashMap<String, f64>>>,
    /// Cumulative unrecovered shortfall per starved source node, in pl
    /// (the tier-3 observation map).
    node_shortfall_pl: HashMap<NodeId, Picoliters>,
    /// Regenerations per source node (tier-3 escalation trigger).
    node_regens: HashMap<NodeId, u64>,
    lc_pl: Picoliters,
    cap_pl: Picoliters,
}

/// The AIS executor. Create one per run.
#[derive(Debug)]
pub struct Executor {
    machine: Machine,
    config: ExecConfig,
}

impl Executor {
    /// Creates an executor for a machine.
    pub fn new(machine: &Machine, config: ExecConfig) -> Executor {
        Executor {
            machine: machine.clone(),
            config,
        }
    }

    /// Runs a compiled assay to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program references volumes the plan
    /// cannot resolve (compiler bug) — never for fluidic constraint
    /// violations, which are collected in the report.
    pub fn run(&self, out: &CompileOutput) -> Result<ExecReport, ExecError> {
        self.run_with(out, None)
    }

    /// Runs a compiled assay under a plan schedule: the replay order is
    /// still original program order (so faults, recovery, sense sets,
    /// and conservation are bit-identical to [`Executor::run`]), but
    /// every instruction executes at its renamed physical location and
    /// scheduled storage spills relocate parked products. Afterwards,
    /// the repairs observed during the replay are spliced back into the
    /// schedule to re-time it.
    ///
    /// Uses the schedule's first job — for multi-instance schedules,
    /// replay each instance with [`Executor::run_job`].
    ///
    /// # Errors
    ///
    /// As [`Executor::run`].
    pub fn run_scheduled(
        &self,
        out: &CompileOutput,
        schedule: &Schedule,
    ) -> Result<ScheduledRun, ExecError> {
        let report = self.run_with(out, schedule.jobs.first())?;
        let splice = schedule.splice(&[&report.repair_s]);
        Ok(ScheduledRun {
            report,
            makespan_s: schedule.makespan_s,
            realized_makespan_s: splice.makespan_s,
            shifted_instrs: splice.shifted,
        })
    }

    /// Replays one job (assay instance) of a multi-instance schedule.
    ///
    /// # Errors
    ///
    /// As [`Executor::run`].
    pub fn run_job(&self, out: &CompileOutput, job: &JobSchedule) -> Result<ExecReport, ExecError> {
        self.run_with(out, Some(job))
    }

    fn run_with(
        &self,
        out: &CompileOutput,
        sched: Option<&JobSchedule>,
    ) -> Result<ExecReport, ExecError> {
        let _run_span = self.config.obs.span("sim.run");
        let lc_pl = (self.machine.least_count_nl() * Ratio::from_int(1000)).round() as u64;
        let cap_pl = (self.machine.max_capacity_nl() * Ratio::from_int(1000)).round() as u64;
        let mut st = RunState {
            out,
            chip: ChipState::new(),
            report: ExecReport::default(),
            dispensed: match &out.resolution {
                VolumeResolution::Partitioned(plan) => vec![None; plan.partitions.len()],
                _ => Vec::new(),
            },
            measurements: HashMap::new(),
            faults: FaultState::new(&self.config.faults),
            replanned_edges: HashMap::new(),
            compositions: None,
            node_shortfall_pl: HashMap::new(),
            node_regens: HashMap::new(),
            lc_pl,
            cap_pl,
        };

        let mut spill_ptr = 0usize;
        for (idx, orig) in out.program.instrs().iter().enumerate() {
            // Scheduled relocations due before this instruction (stall
            // spills and leftover carries): unmetered moves of parked
            // fluid (no fault draw — the seeded per-dispense PRNG
            // stream stays untouched). Carries are zero-volume no-ops
            // unless a fault left a remainder at a metered full drain.
            if let Some(js) = sched {
                while let Some(sp) = js.spills.get(spill_ptr) {
                    if sp.before_instr as usize != idx {
                        break;
                    }
                    let parked = st.chip.take_all(sp.from);
                    st.chip.deposit(sp.to, parked);
                    spill_ptr += 1;
                }
            }
            let renamed;
            let instr = match sched {
                Some(js) if !js.renames[idx].is_empty() => {
                    renamed = rename_instr(orig, &js.renames[idx]);
                    &renamed
                }
                _ => orig,
            };
            // Controller-side (simulation) time per instruction — only
            // sampled when a sink is attached.
            let instr_start = self.config.obs.enabled().then(std::time::Instant::now);
            if instr.is_wet() {
                st.report.wet_instructions += 1;
                st.report.wet_seconds += instr.wet_duration_s();
            }
            match instr {
                Instr::Comment(_) => {}
                Instr::Dry { op, dst, src } => {
                    let rhs = match src {
                        aqua_ais::DrySrc::Imm(v) => *v,
                        aqua_ais::DrySrc::Reg(r) => {
                            st.report.dry_registers.get(&r.0).copied().unwrap_or(0)
                        }
                    };
                    let cur = st.report.dry_registers.get(&dst.0).copied().unwrap_or(0);
                    let value = match op {
                        aqua_ais::DryOp::Mov => rhs,
                        aqua_ais::DryOp::Add => cur.wrapping_add(rhs),
                        aqua_ais::DryOp::Sub => cur.wrapping_sub(rhs),
                        aqua_ais::DryOp::Mul => cur.wrapping_mul(rhs),
                    };
                    st.report.dry_registers.insert(dst.0.clone(), value);
                }
                Instr::Input { dst, port } => {
                    self.exec_input(&mut st, idx, *dst, *port)?;
                }
                Instr::Output { port, src } => {
                    let port_idx = match port {
                        WetLoc::OutputPort(p) => *p,
                        other => {
                            return Err(ExecError::Structural(format!("bad output port {other}")))
                        }
                    };
                    let portion = self.metered_take(&mut st, idx, *src, None)?;
                    *st.report.collected_pl.entry(port_idx).or_insert(0) += portion.volume_pl;
                    st.chip.clear_residue(*src, lc_pl);
                }
                Instr::Move { dst, src, .. } | Instr::MoveAbs { dst, src, .. } => {
                    // `move-abs` carries its volume inline; it wins over
                    // the (usually absent) plan entry.
                    let inline = match instr {
                        Instr::MoveAbs { vol, .. } => Some(*vol),
                        _ => None,
                    };
                    let portion = self.metered_take(&mut st, idx, *src, inline)?;
                    if self.config.record_trace {
                        st.report.trace.push(TraceEvent {
                            instr: idx,
                            what: TraceKind::Transfer {
                                from: *src,
                                to: *dst,
                                volume_pl: portion.volume_pl,
                            },
                        });
                    }
                    self.deposit_checked(&mut st, idx, *dst, portion);
                    st.chip.clear_residue(*src, lc_pl);
                }
                Instr::Mix { unit, .. }
                | Instr::Incubate { unit, .. }
                | Instr::Concentrate { unit, .. } => {
                    // Volume-neutral wet operations.
                    if self.config.record_trace {
                        st.report.trace.push(TraceEvent {
                            instr: idx,
                            what: TraceKind::Operate {
                                unit: *unit,
                                volume_pl: st.chip.volume(*unit),
                            },
                        });
                    }
                }
                Instr::Separate { unit, .. } => {
                    if self.config.record_trace {
                        st.report.trace.push(TraceEvent {
                            instr: idx,
                            what: TraceKind::Operate {
                                unit: *unit,
                                volume_pl: st.chip.volume(*unit),
                            },
                        });
                    }
                    let input = st.chip.take_all(*unit);
                    // The matrix and pusher loads are flushed through
                    // the column by the separation (they do not join
                    // either output stream in our volume model).
                    if let WetLoc::Separator(n, _) = unit {
                        let matrix = st.chip.take_all(WetLoc::Separator(*n, SepPort::Matrix));
                        let pusher = st.chip.take_all(WetLoc::Separator(*n, SepPort::Pusher));
                        st.report.flushed_pl += matrix.volume_pl + pusher.volume_pl;
                    }
                    let fraction = if let Some(f) = out.volume_plan.separation_fractions.get(&idx) {
                        *f
                    } else {
                        self.config.unknown_separation_yield
                    };
                    let out_vol = ((input.volume_pl as f64) * fraction).round() as Picoliters;
                    let mut input = input;
                    let effluent = input.split(out_vol.min(input.volume_pl));
                    // Record the measurement for run-time dispensing —
                    // through the (possibly noisy) volume sensor.
                    if let Some(&key) = out.volume_plan.unknown_separations.get(&idx) {
                        let nl =
                            Ratio::new(effluent.volume_pl as i128, 1000).unwrap_or(Ratio::ZERO);
                        let (nl, fault) = st.faults.on_measurement(nl);
                        if let Some(kind) = fault {
                            let reading = (nl * Ratio::from_int(1000)).round().max(0) as u64;
                            self.trace_fault(&mut st, idx, kind, effluent.volume_pl, reading);
                        }
                        st.measurements.insert(key, nl);
                    }
                    let sep_index = match unit {
                        WetLoc::Separator(n, _) => *n,
                        other => {
                            return Err(ExecError::Structural(format!("bad separator {other}")))
                        }
                    };
                    st.chip
                        .deposit(WetLoc::Separator(sep_index, SepPort::Out1), effluent);
                    st.chip
                        .deposit(WetLoc::Separator(sep_index, SepPort::Out2), input);
                }
                Instr::Sense { unit, dst, .. } => {
                    let contents = st.chip.take_all(*unit);
                    // The "reading" written to the controller register is
                    // modeled as the sensed volume in picoliters.
                    st.report
                        .dry_registers
                        .insert(dst.0.clone(), contents.volume_pl as i64);
                    st.report.sense_results.push(SenseResult {
                        target: dst.0.clone(),
                        volume_pl: contents.volume_pl,
                        composition: contents.composition,
                    });
                }
            }
            if let Some(t0) = instr_start {
                self.config.obs.add("sim.instructions", 1);
                self.config
                    .obs
                    .record("sim.instr_ns", t0.elapsed().as_nanos() as u64);
            }
        }
        st.report.faults = st.faults.counters;
        st.report.final_state = st.chip;
        self.fold_obs_counters(&st.report);
        Ok(st.report)
    }

    /// Folds the run's fault and per-tier recovery totals into the
    /// observability sink (no-op when no sink is attached).
    fn fold_obs_counters(&self, report: &ExecReport) {
        let obs = &self.config.obs;
        if !obs.enabled() {
            return;
        }
        obs.add("sim.faults", report.faults.total());
        let rec = &report.recovery;
        obs.add("sim.recover.redispense", rec.redispense);
        obs.add("sim.recover.regenerate", rec.regenerate);
        obs.add("sim.recover.replan", rec.replan);
        obs.add("sim.recover.overflow_trims", rec.overflow_trims);
        obs.add("sim.recover.failures", rec.failures);
    }

    /// Executes an `input` load: the port supplies unlimited fluid, but
    /// the dispenser metering it onto the chip is fallible.
    fn exec_input(
        &self,
        st: &mut RunState,
        idx: usize,
        dst: WetLoc,
        port: WetLoc,
    ) -> Result<(), ExecError> {
        let WetLoc::InputPort(port_idx) = port else {
            return Err(ExecError::Structural(format!("bad input port {port}")));
        };
        let fluid = st
            .out
            .volume_plan
            .port_fluids
            .get(&port_idx)
            .cloned()
            .unwrap_or_else(|| format!("ip{port_idx}"));
        let planned = match self.resolve(st, idx)? {
            Some(v) => v.min(st.cap_pl),
            None => st.cap_pl, // load to capacity
        };
        let (nominal, fault) = st.faults.on_dispense(planned, st.lc_pl);
        let mut amount = nominal.min(st.cap_pl);
        if let Some(kind) = fault {
            self.trace_fault(st, idx, kind, planned, amount);
            if self.config.recover {
                // Tier 1 for inputs: the port never runs dry, so top-ups
                // alone close the gap (unless they keep faulting too).
                let mut attempts = 0u32;
                while amount < planned && attempts < self.config.max_redispense {
                    attempts += 1;
                    let missing = planned - amount;
                    let (got, refault) = st.faults.on_dispense(missing, st.lc_pl);
                    let got = got.min(missing);
                    if let Some(kind) = refault {
                        self.trace_fault(st, idx, kind, missing, got);
                    }
                    if got > 0 {
                        amount += got;
                        st.report.recovery.redispense += 1;
                        self.add_repair(st, idx, 1);
                        self.trace_recovery(
                            st,
                            idx,
                            RecoveryTier::Redispense,
                            dst,
                            got,
                            amount >= planned,
                        );
                    }
                }
            }
        }
        st.report.input_pl += amount;
        self.deposit_checked(st, idx, dst, Contents::pure(&fluid, amount));
        Ok(())
    }

    /// Deposits at `dst`, handling capacity overflow: with recovery on,
    /// the excess is trimmed to the waste port (output port 1) instead
    /// of reported as a violation.
    fn deposit_checked(&self, st: &mut RunState, idx: usize, dst: WetLoc, portion: Contents) {
        let vol = st.chip.deposit(dst, portion);
        if vol <= st.cap_pl {
            return;
        }
        if self.config.recover {
            let excess = vol - st.cap_pl;
            let trimmed = st.chip.take(dst, excess);
            *st.report.collected_pl.entry(1).or_insert(0) += trimmed.volume_pl;
            st.report.recovery.overflow_trims += 1;
            self.add_repair(st, idx, 1);
            self.trace_recovery(st, idx, RecoveryTier::OverflowTrim, dst, excess, true);
        } else {
            st.report.violations.push(Violation::Overflow {
                instr: idx,
                loc: dst,
                volume_pl: vol,
            });
        }
    }

    /// Resolves the planned volume for an instruction (in pl).
    /// `None` = move everything.
    fn resolve(&self, st: &mut RunState, idx: usize) -> Result<Option<Picoliters>, ExecError> {
        let out = st.out;
        match out.volume_plan.get(idx) {
            None | Some(PlannedVolume::All) => Ok(None),
            Some(PlannedVolume::Static(v)) => {
                // A tier-3 replan overrides the compile-time volume.
                if let Some(edge) = out.volume_plan.instr_edges.get(&idx) {
                    if let Some(&pl) = st.replanned_edges.get(edge) {
                        return Ok(Some(pl));
                    }
                }
                Ok(Some(*v))
            }
            Some(PlannedVolume::Runtime { partition, edge }) => {
                let plan = match &out.resolution {
                    VolumeResolution::Partitioned(p) => p,
                    _ => {
                        return Err(ExecError::Structural(
                            "runtime volume without a partition plan".into(),
                        ))
                    }
                };
                if st.dispensed[*partition].is_none() {
                    // Dispense partitions up to this one: their runtime
                    // bindings refer to earlier partitions whose
                    // measurements/dispensations exist by program order.
                    let measurements = &st.measurements;
                    let results = plan
                        .dispense_upto(*partition, &self.machine, |pi, node| {
                            measurements.get(&(pi, node)).copied()
                        })
                        .map_err(|e| ExecError::RuntimeDispense {
                            instr: idx,
                            partition: *partition,
                            error: e,
                        })?;
                    for (i, r) in results.into_iter().enumerate() {
                        if st.dispensed[i].is_none() {
                            st.dispensed[i] = Some(r);
                        }
                    }
                }
                let assignment = st.dispensed[*partition]
                    .as_ref()
                    .ok_or_else(|| ExecError::Structural("partition not dispensed".into()))?;
                let nl = assignment.edge_volumes_nl[edge.index()];
                let lc = self.machine.least_count_nl();
                let rounded = Ratio::from_int((nl / lc).round()) * lc;
                let pl = (rounded * Ratio::from_int(1000)).round().max(0);
                Ok(Some(pl as Picoliters))
            }
        }
    }

    /// Pulls the planned amount (or everything) from `src`, injecting
    /// dispenser faults and — with [`ExecConfig::recover`] — walking
    /// the recovery ladder on a shortfall.
    fn metered_take(
        &self,
        st: &mut RunState,
        idx: usize,
        src: WetLoc,
        inline: Option<Picoliters>,
    ) -> Result<Contents, ExecError> {
        let resolved = match inline {
            Some(v) => Some(v),
            None => self.resolve(st, idx)?,
        };
        let Some(requested) = resolved else {
            return Ok(st.chip.take_all(src));
        };
        if requested < st.lc_pl {
            st.report.violations.push(Violation::MeterUnderflow {
                instr: idx,
                requested_pl: requested,
            });
        }
        // The dispenser hardware meters `nominal`, clamped to what the
        // source actually holds (over-metering drains the source's
        // slack; under-metering/transients leave fluid behind).
        let available = st.chip.volume(src);
        let (nominal, fault) = st.faults.on_dispense(requested, st.lc_pl);
        if let Some(kind) = fault {
            self.trace_fault(st, idx, kind, requested, nominal.min(available));
        }
        let take_now = nominal.min(available);
        let gathered = if take_now > 0 {
            st.chip.take(src, take_now)
        } else {
            Contents::default()
        };
        let tolerance = self.config.deficit_tolerance_lc.saturating_mul(st.lc_pl);
        let shortfall = requested.saturating_sub(gathered.volume_pl);
        if shortfall == 0 || (shortfall <= tolerance && fault.is_none()) {
            return Ok(gathered);
        }
        if !self.config.recover {
            if shortfall > tolerance {
                st.report.violations.push(Violation::Deficit {
                    instr: idx,
                    loc: src,
                    requested_pl: requested,
                    available_pl: gathered.volume_pl,
                });
            }
            return Ok(gathered);
        }
        self.recover_shortfall(st, idx, src, requested, gathered)
    }

    /// The run-time Fig. 6 ladder: tier 1 re-dispenses from the slack
    /// still at the source; tier 2 regenerates the starved fluid's
    /// backward slice; tier 3 re-solves volumes with the observed
    /// availability as constraints (partition rescale for §3.5 plans,
    /// whole-DAG capped DAGSolve for static plans).
    fn recover_shortfall(
        &self,
        st: &mut RunState,
        idx: usize,
        src: WetLoc,
        requested: Picoliters,
        mut gathered: Contents,
    ) -> Result<Contents, ExecError> {
        let tolerance = self.config.deficit_tolerance_lc.saturating_mul(st.lc_pl);
        // --- Tier 1: re-dispense what the source still holds. ---
        let mut attempts = 0u32;
        while requested > gathered.volume_pl && attempts < self.config.max_redispense {
            attempts += 1;
            let missing = requested - gathered.volume_pl;
            let held = st.chip.volume(src);
            if held == 0 {
                break;
            }
            let (nominal, refault) = st.faults.on_dispense(missing, st.lc_pl);
            if let Some(kind) = refault {
                self.trace_fault(st, idx, kind, missing, nominal.min(held));
            }
            let take = nominal.min(held).min(missing);
            if take == 0 {
                continue;
            }
            gathered.merge(st.chip.take(src, take));
            st.report.recovery.redispense += 1;
            self.add_repair(st, idx, 1);
            self.trace_recovery(
                st,
                idx,
                RecoveryTier::Redispense,
                src,
                take,
                requested.saturating_sub(gathered.volume_pl) <= tolerance,
            );
        }
        if requested.saturating_sub(gathered.volume_pl) <= tolerance {
            return Ok(gathered);
        }
        // --- Tier 3 for §3.5 run-time plans: the partition's solved
        // volumes overestimate availability — rescale the assignment to
        // what was actually delivered, so every future draw from this
        // partition keeps its ratios against the shrunk reality. ---
        if let Some(PlannedVolume::Runtime { partition, .. }) = st.out.volume_plan.get(idx) {
            let partition = *partition;
            let out = st.out;
            if let VolumeResolution::Partitioned(pplan) = &out.resolution {
                if gathered.volume_pl > 0 {
                    if let Some(old) = st.dispensed[partition].take() {
                        let factor = Ratio::new(gathered.volume_pl as i128, requested as i128)
                            .unwrap_or(Ratio::ONE);
                        let part = &pplan.partitions[partition];
                        st.dispensed[partition] =
                            Some(old.rescaled(&part.dag, &self.machine, factor));
                        st.report.recovery.replan += 1;
                        self.trace_recovery(
                            st,
                            idx,
                            RecoveryTier::Replan,
                            src,
                            gathered.volume_pl,
                            true,
                        );
                        return Ok(gathered);
                    }
                }
            }
        }
        // --- Tier 2: regenerate the starved fluid (re-execute its
        // backward slice; modeled as synthesizing the missing volume
        // with the product's composition). ---
        let out = st.out;
        if let Some(&node) = out.volume_plan.instr_sources.get(&idx) {
            let missing = requested - gathered.volume_pl;
            *st.node_shortfall_pl.entry(node).or_insert(0) += missing;
            // Regeneration produces metered amounts: round up to a
            // least-count multiple.
            let step = st.lc_pl.max(1);
            let amount = missing.div_ceil(step) * step;
            let comp = {
                let comps = st
                    .compositions
                    .get_or_insert_with(|| crate::regen::node_compositions(&out.dag));
                comps.get(node.index()).cloned().unwrap_or_default()
            };
            let refill = if comp.is_empty() {
                Contents::pure(&out.dag.node(node).name, amount)
            } else {
                Contents {
                    volume_pl: amount,
                    composition: comp
                        .iter()
                        .map(|(k, f)| (k.clone(), f * amount as f64))
                        .collect(),
                }
            };
            st.chip.deposit(src, refill);
            st.report.recovery.regenerate += 1;
            let slice_steps = crate::regen::backward_slice_steps(&out.dag, node);
            st.report.recovery.regen_steps += slice_steps;
            // Re-executing the backward slice costs wet time in
            // proportion to its length.
            self.add_repair(st, idx, slice_steps);
            st.report.recovery.extra_volume_pl += amount;
            let regens = {
                let r = st.node_regens.entry(node).or_insert(0);
                *r += 1;
                *r
            };
            self.trace_recovery(st, idx, RecoveryTier::Regenerate, src, amount, true);
            let refill_take = (requested - gathered.volume_pl).min(st.chip.volume(src));
            if refill_take > 0 {
                gathered.merge(st.chip.take(src, refill_take));
            }
            // --- Tier 3 for static plans: repeated starvation of the
            // same fluid means the compile-time plan overestimates what
            // the faulty hardware delivers. Re-solve the whole DAG with
            // the observed availability as production caps and shrink
            // every future draw proportionally. ---
            if regens >= 2 && st.replanned_edges.is_empty() {
                self.replan_static(st, idx, src);
            }
        }
        let final_short = requested.saturating_sub(gathered.volume_pl);
        if final_short > tolerance {
            st.report.recovery.failures += 1;
            st.report.violations.push(Violation::Deficit {
                instr: idx,
                loc: src,
                requested_pl: requested,
                available_pl: gathered.volume_pl,
            });
            self.trace_recovery(st, idx, RecoveryTier::Regenerate, src, 0, false);
        }
        Ok(gathered)
    }

    /// Tier-3 re-entry for static plans: capped DAGSolve with the
    /// observed node availability (planned production minus cumulative
    /// shortfall) as constraints. On success, installs replacement
    /// volumes for every edge; future [`Executor::resolve`] calls use
    /// them via the plan's `instr_edges` map.
    fn replan_static(&self, st: &mut RunState, idx: usize, src: WetLoc) {
        let out = st.out;
        let VolumeResolution::Static(ManagedOutcome::Solved { volumes, .. }) = &out.resolution
        else {
            return;
        };
        if out.volume_plan.instr_edges.is_empty() {
            return;
        }
        let mut observed: HashMap<NodeId, Ratio> = HashMap::new();
        for (&node, &short_pl) in &st.node_shortfall_pl {
            let planned = volumes
                .node_volumes_nl
                .get(node.index())
                .copied()
                .unwrap_or(Ratio::ZERO);
            let short_nl = Ratio::new(short_pl as i128, 1000).unwrap_or(Ratio::ZERO);
            observed.insert(node, (planned - short_nl).max(Ratio::ZERO));
        }
        let opts = VolumeManagerOptions {
            use_lp: false,         // run-time must be fast (§3.5)
            max_rewrite_rounds: 0, // rewrites can't map back onto emitted code
            ..Default::default()
        };
        let outcome =
            aqua_volume::replan_with_observations(&out.dag, &self.machine, &opts, &observed);
        if let ManagedOutcome::Solved { volumes: v, .. } = outcome {
            let lc = self.machine.least_count_nl();
            st.replanned_edges = out
                .dag
                .edge_ids()
                .map(|e| {
                    let nl = v.edge_volumes_nl[e.index()];
                    let rounded = Ratio::from_int((nl / lc).round()) * lc;
                    (
                        e,
                        (rounded * Ratio::from_int(1000)).round().max(0) as Picoliters,
                    )
                })
                .collect();
            st.report.recovery.replan += 1;
            self.trace_recovery(st, idx, RecoveryTier::Replan, src, 0, true);
        }
    }

    /// Charges `seconds` of wet repair time to an instruction — the
    /// currency [`crate::sched::Schedule::splice`] re-times with.
    fn add_repair(&self, st: &mut RunState, idx: usize, seconds: u64) {
        if seconds == 0 {
            return;
        }
        *st.report.repair_s.entry(idx).or_insert(0) += seconds;
        st.report.recovery.repair_s += seconds;
    }

    fn trace_fault(
        &self,
        st: &mut RunState,
        idx: usize,
        kind: FaultKind,
        requested_pl: Picoliters,
        delivered_pl: Picoliters,
    ) {
        if self.config.record_trace {
            st.report.trace.push(TraceEvent {
                instr: idx,
                what: TraceKind::Fault {
                    kind,
                    requested_pl,
                    delivered_pl,
                },
            });
        }
    }

    fn trace_recovery(
        &self,
        st: &mut RunState,
        idx: usize,
        tier: RecoveryTier,
        loc: WetLoc,
        volume_pl: Picoliters,
        ok: bool,
    ) {
        if self.config.record_trace {
            st.report.trace.push(TraceEvent {
                instr: idx,
                what: TraceKind::Recovery {
                    tier,
                    loc,
                    volume_pl,
                    ok,
                },
            });
        }
    }
}

impl ExecReport {
    /// The exact conservation identity: fluid in (inputs + regenerated
    /// extra) minus fluid accounted for (collected + sensed + flushed +
    /// still on chip + channel residue). Zero for every run — faulty or
    /// not — because every picoliter is tracked as an integer.
    pub fn conservation_delta_pl(&self) -> i128 {
        let inflow = self.input_pl as i128 + self.recovery.extra_volume_pl as i128;
        let collected: i128 = self.collected_pl.values().map(|&v| v as i128).sum();
        let sensed: i128 = self.sense_results.iter().map(|s| s.volume_pl as i128).sum();
        let outflow = collected
            + sensed
            + self.flushed_pl as i128
            + self.final_state.total_volume_pl() as i128
            + self.final_state.residue_pl as i128;
        inflow - outflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_compiler::{compile, CompileOptions};

    fn run(src: &str) -> ExecReport {
        let machine = Machine::paper_default();
        let out = compile(src, &machine, &CompileOptions::default()).unwrap();
        Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap()
    }

    #[test]
    fn simple_mix_senses_correct_ratio() {
        let report = run("
ASSAY t START
fluid A, B;
MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let s = &report.sense_results[0];
        let ratio = s.composition["B"] / s.composition["A"];
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn glucose_executes_cleanly_with_dagsolve_volumes() {
        let report = run("
ASSAY glucose START
fluid Glucose, Reagent, Sample;
fluid a, b, c, d, e;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[1];
b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO Result[2];
c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[3];
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL it INTO Result[4];
e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[5];
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.sense_results.len(), 5);
        // Each sensed mixture hits its specified ratio within rounding
        // (instructions execute in topological, not source, order — find
        // readings by their result slot).
        for (slot, want) in [(1, 1.0), (2, 2.0), (3, 4.0), (4, 8.0)] {
            let s = report
                .sense_results
                .iter()
                .find(|s| s.target == format!("Result[{slot}]"))
                .expect("slot sensed");
            let r = s.composition["Reagent"] / s.composition["Glucose"];
            assert!((r - want).abs() / want < 0.02, "ratio {r} vs {want}");
        }
    }

    #[test]
    fn chained_incubate_preserves_volume() {
        let report = run("
ASSAY t START
fluid A, B;
MIX A AND B FOR 10;
INCUBATE it AT 37 FOR 300;
SENSE OPTICAL it INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.sense_results[0].volume_pl > 0);
    }

    #[test]
    fn known_fraction_separation_scales_volume() {
        let report = run("
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
LCSEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste YIELD 1/4;
SENSE OPTICAL eff INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // The separator input occupies up to 100 nl; effluent is 1/4.
        let sensed = report.sense_results[0].volume_pl;
        assert!(sensed > 0);
        // Input was driven to the capacity 100 nl => effluent 25 nl.
        assert_eq!(sensed, 25_000);
    }

    #[test]
    fn unknown_separation_flows_through_runtime_dispenser() {
        let report = run("
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
MIX eff AND A IN RATIOS 1 : 1 FOR 30;
SENSE OPTICAL it INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let s = &report.sense_results[0];
        assert!(s.volume_pl > 0);
        // The final 1:1 mix: half direct A, half effluent (itself 1/2 A
        // + 1/2 B) => A:B = 3:1.
        let r = s.composition["A"] / s.composition["B"];
        assert!((r - 3.0).abs() < 0.05, "A:B = {r}");
    }

    #[test]
    fn no_volume_management_runs_out_of_fluid() {
        // Baseline mode: every use takes everything, so the second use
        // of A finds an empty reservoir -> deficit/empty sense.
        let machine = Machine::paper_default();
        let out = compile(
            "
ASSAY t START
fluid A, B, C;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R1;
MIX A AND C FOR 10;
SENSE OPTICAL it INTO R2;
END",
            &machine,
            &CompileOptions {
                skip_volume_management: true,
                ..Default::default()
            },
        )
        .unwrap();
        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        // The second mixture is missing its A component entirely.
        let second = &report.sense_results[1];
        let a_part = second.composition.get("A").copied().unwrap_or(0.0);
        assert!(a_part < 1e-9, "A unexpectedly present: {a_part}");
    }

    #[test]
    fn runtime_dispense_failure_is_typed() {
        // Sever the sensor feed of an unknown-volume assay: the lazy
        // dispenser must fail with a typed, matchable error — not a
        // panic and not a formatted string.
        let machine = Machine::paper_default();
        let mut out = compile(
            "
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
MIX eff AND A IN RATIOS 1 : 1 FOR 30;
SENSE OPTICAL it INTO R;
END",
            &machine,
            &CompileOptions::default(),
        )
        .unwrap();
        out.volume_plan.unknown_separations.clear();
        let err = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap_err();
        match err {
            ExecError::RuntimeDispense {
                error: PartitionError::MissingMeasurement { .. },
                ..
            } => {}
            other => panic!("expected typed runtime-dispense error, got {other}"),
        }
    }

    #[test]
    fn clean_runs_conserve_volume_exactly() {
        for src in [
            "
ASSAY t START
fluid A, B;
MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO R;
END",
            "
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
LCSEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste YIELD 1/4;
SENSE OPTICAL eff INTO R;
END",
        ] {
            let report = run(src);
            assert_eq!(report.conservation_delta_pl(), 0, "assay: {src}");
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{ScriptedFault, ScriptedKind};
    use aqua_compiler::{compile, CompileOptions};

    const TWO_USES: &str = "
ASSAY t START
fluid A, B, premix;
premix = MIX A AND B FOR 5;
MIX premix AND A IN RATIOS 1 : 1 FOR 5;
SENSE OPTICAL it INTO R1;
MIX premix AND B IN RATIOS 1 : 2 FOR 5;
SENSE OPTICAL it INTO R2;
END";

    fn run_with(src: &str, config: ExecConfig) -> ExecReport {
        let machine = Machine::paper_default();
        let out = compile(src, &machine, &CompileOptions::default()).unwrap();
        Executor::new(&machine, config).run(&out).unwrap()
    }

    #[test]
    fn transient_fault_recovers_at_tier_one() {
        // A transient failure leaves the fluid at the source, so one
        // top-up closes the shortfall with no extra volume consumed.
        let config = ExecConfig {
            faults: FaultPlan::script(ScriptedFault {
                at: 3,
                kind: ScriptedKind::Transient,
            }),
            recover: true,
            ..ExecConfig::default()
        };
        let report = run_with(TWO_USES, config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.faults.transient, 1);
        assert!(report.recovery.redispense >= 1);
        assert_eq!(report.recovery.extra_volume_pl, 0);
        assert_eq!(report.conservation_delta_pl(), 0);
    }

    #[test]
    fn unrecovered_fault_reports_deficit() {
        // Same fault, recovery off: the shortfall surfaces as a typed
        // Deficit violation (never a silent wrong volume).
        let config = ExecConfig {
            faults: FaultPlan::script(ScriptedFault {
                at: 3,
                kind: ScriptedKind::Transient,
            }),
            recover: false,
            ..ExecConfig::default()
        };
        let report = run_with(TWO_USES, config);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Deficit { .. })),
            "{:?}",
            report.violations
        );
        assert_eq!(report.recovery.redispense, 0);
    }

    #[test]
    fn exhausted_source_regenerates_at_tier_two() {
        // Over-meter the shared premix's first draw hard enough to
        // drain its slack: the second draw finds too little, tier 1
        // cannot refill from an empty source, tier 2 synthesizes the
        // missing premix (counted as extra volume).
        let machine = Machine::paper_default();
        let out = compile(TWO_USES, &machine, &CompileOptions::default()).unwrap();
        // Find the premix draws: metered moves out of a reservoir after
        // the first mix. Scripting by dispense index: indices follow
        // execution order of metered dispenses (inputs + moves).
        let mut recovered = false;
        for at in 0..12u64 {
            let config = ExecConfig {
                faults: FaultPlan::script(ScriptedFault {
                    at,
                    kind: ScriptedKind::Meter { delta_lc: 40 },
                }),
                recover: true,
                ..ExecConfig::default()
            };
            let report = Executor::new(&machine, config).run(&out).unwrap();
            assert_eq!(report.conservation_delta_pl(), 0, "at={at}");
            if report.recovery.regenerate > 0 {
                recovered = true;
                assert!(report.recovery.regen_steps > 0);
                assert!(report.recovery.extra_volume_pl > 0);
                assert!(
                    report.violations.is_empty(),
                    "at={at}: {:?}",
                    report.violations
                );
            }
        }
        assert!(
            recovered,
            "no scripted over-meter ever forced a tier-2 regen"
        );
    }

    #[test]
    fn same_seed_reproduces_the_same_run() {
        let mk = || {
            run_with(
                TWO_USES,
                ExecConfig {
                    faults: FaultPlan::uniform(7, 0.15),
                    recover: true,
                    record_trace: true,
                    ..ExecConfig::default()
                },
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.violations, b.violations);
        let va: Vec<_> = a.sense_results.iter().map(|s| s.volume_pl).collect();
        let vb: Vec<_> = b.sense_results.iter().map(|s| s.volume_pl).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn fault_free_plan_is_identical_to_legacy_behavior() {
        // An inactive fault plan with recovery on must not change a
        // clean run at all (recovery only acts on shortfalls).
        let base = run_with(TWO_USES, ExecConfig::default());
        let rec = run_with(
            TWO_USES,
            ExecConfig {
                recover: true,
                ..ExecConfig::default()
            },
        );
        assert_eq!(base.violations, rec.violations);
        assert_eq!(base.faults.total(), 0);
        assert_eq!(rec.recovery.total_recovered(), 0);
        let va: Vec<_> = base.sense_results.iter().map(|s| s.volume_pl).collect();
        let vb: Vec<_> = rec.sense_results.iter().map(|s| s.volume_pl).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn sensor_fault_skews_runtime_dispensing_but_stays_typed() {
        // Perturb the §3.5 volume measurement: the run-time dispenser
        // plans against a wrong reading. The run must still complete
        // (possibly with recoveries), and the fault must be counted.
        let src = "
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
MIX eff AND A IN RATIOS 1 : 1 FOR 30;
SENSE OPTICAL it INTO R;
END";
        let config = ExecConfig {
            faults: FaultPlan::script(ScriptedFault {
                at: 0,
                kind: ScriptedKind::Sensor { per_mille: 1500 },
            }),
            recover: true,
            ..ExecConfig::default()
        };
        let report = run_with(src, config);
        assert_eq!(report.faults.sensor, 1);
        assert_eq!(report.sense_results.len(), 1);
        assert_eq!(report.conservation_delta_pl(), 0);
    }
}

#[cfg(test)]
mod dry_tests {
    use super::*;
    use aqua_ais::{DryOp, DrySrc, Instr};

    #[test]
    fn dry_alu_executes_on_the_controller() {
        // Hand-build a program with dry arithmetic (the enzyme codegen
        // style) and execute it directly.
        let machine = Machine::paper_default();
        let src = "
ASSAY t START
fluid A, B;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R0;
END";
        let mut out = aqua_compiler::compile(src, &machine, &Default::default()).unwrap();
        // Append: temp = 1; temp *= 10; temp -= 1  => 9.
        for (op, src_op) in [
            (DryOp::Mov, DrySrc::Imm(1)),
            (DryOp::Mul, DrySrc::Imm(10)),
            (DryOp::Sub, DrySrc::Imm(1)),
        ] {
            out.program.push(Instr::Dry {
                op,
                dst: "temp".into(),
                src: src_op,
            });
            out.volume_plan.entries.push(None);
        }
        out.program.push(Instr::Dry {
            op: DryOp::Mov,
            dst: "copy".into(),
            src: DrySrc::Reg("temp".into()),
        });
        out.volume_plan.entries.push(None);

        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        assert_eq!(report.dry_registers.get("temp"), Some(&9));
        assert_eq!(report.dry_registers.get("copy"), Some(&9));
        // Sense wrote its reading register too.
        assert!(report.dry_registers.contains_key("R0"));
        // Wet time dominates: the 10 s mix plus transfer seconds.
        assert!(report.wet_seconds >= 10);
    }
}

#[cfg(test)]
mod move_abs_tests {
    use super::*;
    use aqua_ais::Instr;

    #[test]
    fn move_abs_meters_its_inline_volume() {
        let machine = Machine::paper_default();
        let mut out = aqua_compiler::compile(
            "
ASSAY t START
fluid A, B;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R;
END",
            &machine,
            &Default::default(),
        )
        .unwrap();
        // Append: load C via input? Simpler: move-abs a slice of the
        // leftover A reservoir (inputs load exactly what is used, so
        // move from an input port-backed reservoir may be empty; use
        // the sensed path instead). Build a standalone program:
        let mut p = aqua_ais::Program::new("abs");
        p.push(Instr::Input {
            dst: aqua_ais::WetLoc::Reservoir(1),
            port: aqua_ais::WetLoc::InputPort(1),
        });
        p.push(Instr::MoveAbs {
            dst: aqua_ais::WetLoc::Reservoir(2),
            src: aqua_ais::WetLoc::Reservoir(1),
            vol: 12_300,
        });
        out.program = p;
        out.volume_plan.entries = vec![Some(aqua_compiler::PlannedVolume::All), None];
        out.volume_plan.port_fluids.insert(1, "A".into());
        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(
            report.final_state.volume(aqua_ais::WetLoc::Reservoir(2)),
            12_300
        );
        assert_eq!(
            report.final_state.volume(aqua_ais::WetLoc::Reservoir(1)),
            100_000 - 12_300
        );
    }
}
