//! The AIS instruction executor.
//!
//! Runs a compiled program against [`crate::state::ChipState`],
//! resolving every transfer volume from the compiler's plan. For
//! partitioned (unknown-volume) assays, the executor lazily dispenses
//! each partition the first time one of its volumes is needed, feeding
//! separation measurements recorded during execution back into the
//! run-time dispenser (§3.5) — the work that runs on the fast
//! electronic controller on real hardware.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aqua_ais::{Instr, Picoliters, SepPort, WetLoc};
use aqua_compiler::{CompileOutput, PlannedVolume, VolumeResolution};
use aqua_dag::{NodeId, Ratio};
use aqua_volume::dagsolve::VolumeAssignment;
use aqua_volume::Machine;

use crate::state::{ChipState, Contents};

/// Configuration of one execution.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Yield model for unknown-volume separations: the fraction of the
    /// input that comes out as effluent (default 1/2).
    pub unknown_separation_yield: f64,
    /// Shortfall tolerance in least counts: a metered move finding
    /// slightly less fluid than planned (rounding drift) is clamped
    /// rather than flagged (default 1 least count).
    pub deficit_tolerance_lc: u64,
    /// Record a per-instruction [`crate::trace::TraceEvent`] stream in
    /// the report (off by default; traces of large assays are big).
    pub record_trace: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            unknown_separation_yield: 0.5,
            deficit_tolerance_lc: 1,
            record_trace: false,
        }
    }
}

/// One recorded sensor reading.
#[derive(Debug, Clone)]
pub struct SenseResult {
    /// The result-slot label (`Result[3]`).
    pub target: String,
    /// Volume sensed, in picoliters.
    pub volume_pl: Picoliters,
    /// Composition of the sensed fluid (picoliters per input fluid).
    pub composition: HashMap<String, f64>,
}

/// A constraint violation observed during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A metered transfer below the least count.
    MeterUnderflow {
        /// Instruction index.
        instr: usize,
        /// Requested volume (pl).
        requested_pl: Picoliters,
    },
    /// A location exceeded the machine capacity.
    Overflow {
        /// Instruction index.
        instr: usize,
        /// The overfull location.
        loc: WetLoc,
        /// Volume after the transfer (pl).
        volume_pl: Picoliters,
    },
    /// A transfer found materially less fluid than planned — the
    /// condition that forces regeneration at run time.
    Deficit {
        /// Instruction index.
        instr: usize,
        /// The drained location.
        loc: WetLoc,
        /// Requested volume (pl).
        requested_pl: Picoliters,
        /// Actually available volume (pl).
        available_pl: Picoliters,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MeterUnderflow {
                instr,
                requested_pl,
            } => write!(
                f,
                "instruction {instr}: metered transfer of {requested_pl} pl is below the \
                 least count"
            ),
            Violation::Overflow {
                instr,
                loc,
                volume_pl,
            } => write!(f, "instruction {instr}: {loc} overflows at {volume_pl} pl"),
            Violation::Deficit {
                instr,
                loc,
                requested_pl,
                available_pl,
            } => write!(
                f,
                "instruction {instr}: {loc} holds {available_pl} pl but {requested_pl} pl \
                 were requested (regeneration needed)"
            ),
        }
    }
}

/// Execution report.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Sensor readings in program order.
    pub sense_results: Vec<SenseResult>,
    /// All violations (empty = clean run).
    pub violations: Vec<Violation>,
    /// Wet instructions executed.
    pub wet_instructions: u64,
    /// Fluid collected at output ports (pl per port).
    pub collected_pl: HashMap<u32, Picoliters>,
    /// The chip's contents when the program finished (parked products,
    /// unused leftovers).
    pub final_state: crate::state::ChipState,
    /// Dry (controller) registers after execution. `sense` writes the
    /// reading into its destination register (modeled as the sensed
    /// volume in picoliters); `dry-*` ALU ops compute over them.
    pub dry_registers: HashMap<String, i64>,
    /// Total wall time of the wet datapath in seconds (mix/incubate/
    /// separate/concentrate durations; transfers are counted as 1 s
    /// each) — the denominator of the paper's "run-time volume
    /// computation is negligible" argument.
    pub wet_seconds: u64,
    /// Per-instruction trace (only when [`ExecConfig::record_trace`]).
    pub trace: Vec<crate::trace::TraceEvent>,
}

/// Execution error (structural problems; constraint violations are
/// reported in [`ExecReport::violations`] instead).
#[derive(Debug, Clone)]
pub struct ExecError(String);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution failed: {}", self.0)
    }
}

impl Error for ExecError {}

/// The AIS executor. Create one per run.
#[derive(Debug)]
pub struct Executor {
    machine: Machine,
    config: ExecConfig,
}

impl Executor {
    /// Creates an executor for a machine.
    pub fn new(machine: &Machine, config: ExecConfig) -> Executor {
        Executor {
            machine: machine.clone(),
            config,
        }
    }

    /// Runs a compiled assay to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program references volumes the plan
    /// cannot resolve (compiler bug) — never for fluidic constraint
    /// violations, which are collected in the report.
    pub fn run(&self, out: &CompileOutput) -> Result<ExecReport, ExecError> {
        let lc_pl = (self.machine.least_count_nl() * Ratio::from_int(1000)).round() as u64;
        let cap_pl = (self.machine.max_capacity_nl() * Ratio::from_int(1000)).round() as u64;
        let mut chip = ChipState::new();
        let mut report = ExecReport::default();

        // Lazy per-partition dispensing state (§3.5).
        let mut dispensed: Vec<Option<VolumeAssignment>> = match &out.resolution {
            VolumeResolution::Partitioned(plan) => vec![None; plan.partitions.len()],
            _ => Vec::new(),
        };
        let mut measurements: HashMap<(usize, NodeId), Ratio> = HashMap::new();

        for (idx, instr) in out.program.instrs().iter().enumerate() {
            if instr.is_wet() {
                report.wet_instructions += 1;
                report.wet_seconds += match instr {
                    Instr::Mix { seconds, .. }
                    | Instr::Separate { seconds, .. }
                    | Instr::Incubate { seconds, .. }
                    | Instr::Concentrate { seconds, .. } => *seconds,
                    _ => 1, // transfers: order of a second each
                };
            }
            match instr {
                Instr::Comment(_) => {}
                Instr::Dry { op, dst, src } => {
                    let rhs = match src {
                        aqua_ais::DrySrc::Imm(v) => *v,
                        aqua_ais::DrySrc::Reg(r) => {
                            report.dry_registers.get(&r.0).copied().unwrap_or(0)
                        }
                    };
                    let cur = report.dry_registers.get(&dst.0).copied().unwrap_or(0);
                    let value = match op {
                        aqua_ais::DryOp::Mov => rhs,
                        aqua_ais::DryOp::Add => cur.wrapping_add(rhs),
                        aqua_ais::DryOp::Sub => cur.wrapping_sub(rhs),
                        aqua_ais::DryOp::Mul => cur.wrapping_mul(rhs),
                    };
                    report.dry_registers.insert(dst.0.clone(), value);
                }
                Instr::Input { dst, port } => {
                    let port_idx = match port {
                        WetLoc::InputPort(p) => *p,
                        other => return Err(ExecError(format!("bad input port {other}"))),
                    };
                    let fluid = out
                        .volume_plan
                        .port_fluids
                        .get(&port_idx)
                        .cloned()
                        .unwrap_or_else(|| format!("ip{port_idx}"));
                    let amount =
                        match self.resolve(idx, out, &mut dispensed, &measurements, u64::MAX)? {
                            Some(v) => v.min(cap_pl),
                            None => cap_pl, // load to capacity
                        };
                    let vol = chip.deposit(*dst, Contents::pure(&fluid, amount));
                    if vol > cap_pl {
                        report.violations.push(Violation::Overflow {
                            instr: idx,
                            loc: *dst,
                            volume_pl: vol,
                        });
                    }
                }
                Instr::Output { port, src } => {
                    let port_idx = match port {
                        WetLoc::OutputPort(p) => *p,
                        other => return Err(ExecError(format!("bad output port {other}"))),
                    };
                    let portion = self.pull(
                        idx,
                        out,
                        &mut chip,
                        *src,
                        &mut dispensed,
                        &measurements,
                        &mut report,
                        lc_pl,
                    )?;
                    *report.collected_pl.entry(port_idx).or_insert(0) += portion.volume_pl;
                    chip.clear_residue(*src, lc_pl);
                }
                Instr::Move { dst, src, .. } | Instr::MoveAbs { dst, src, .. } => {
                    // `move-abs` carries its volume inline; it wins over
                    // the (usually absent) plan entry.
                    let inline = match instr {
                        Instr::MoveAbs { vol, .. } => Some(*vol),
                        _ => None,
                    };
                    let portion = self.pull_with_inline(
                        idx,
                        out,
                        &mut chip,
                        *src,
                        inline,
                        &mut dispensed,
                        &measurements,
                        &mut report,
                        lc_pl,
                    )?;
                    if self.config.record_trace {
                        report.trace.push(crate::trace::TraceEvent {
                            instr: idx,
                            what: crate::trace::TraceKind::Transfer {
                                from: *src,
                                to: *dst,
                                volume_pl: portion.volume_pl,
                            },
                        });
                    }
                    let vol = chip.deposit(*dst, portion);
                    if vol > cap_pl {
                        report.violations.push(Violation::Overflow {
                            instr: idx,
                            loc: *dst,
                            volume_pl: vol,
                        });
                    }
                    chip.clear_residue(*src, lc_pl);
                }
                Instr::Mix { unit, .. }
                | Instr::Incubate { unit, .. }
                | Instr::Concentrate { unit, .. } => {
                    // Volume-neutral wet operations.
                    if self.config.record_trace {
                        report.trace.push(crate::trace::TraceEvent {
                            instr: idx,
                            what: crate::trace::TraceKind::Operate {
                                unit: *unit,
                                volume_pl: chip.volume(*unit),
                            },
                        });
                    }
                }
                Instr::Separate { unit, .. } => {
                    if self.config.record_trace {
                        report.trace.push(crate::trace::TraceEvent {
                            instr: idx,
                            what: crate::trace::TraceKind::Operate {
                                unit: *unit,
                                volume_pl: chip.volume(*unit),
                            },
                        });
                    }
                    let input = chip.take_all(*unit);
                    // The matrix and pusher loads are flushed through
                    // the column by the separation (they do not join
                    // either output stream in our volume model).
                    if let WetLoc::Separator(n, _) = unit {
                        let _ = chip.take_all(WetLoc::Separator(*n, SepPort::Matrix));
                        let _ = chip.take_all(WetLoc::Separator(*n, SepPort::Pusher));
                    }
                    let fraction = if let Some(f) = out.volume_plan.separation_fractions.get(&idx) {
                        *f
                    } else {
                        self.config.unknown_separation_yield
                    };
                    let out_vol = ((input.volume_pl as f64) * fraction).round() as Picoliters;
                    let mut input = input;
                    let effluent = input.split(out_vol.min(input.volume_pl));
                    // Record the measurement for run-time dispensing.
                    if let Some(&key) = out.volume_plan.unknown_separations.get(&idx) {
                        let nl =
                            Ratio::new(effluent.volume_pl as i128, 1000).unwrap_or(Ratio::ZERO);
                        measurements.insert(key, nl);
                    }
                    let (sep_index, _) = match unit {
                        WetLoc::Separator(n, _) => (*n, ()),
                        other => return Err(ExecError(format!("bad separator {other}"))),
                    };
                    chip.deposit(WetLoc::Separator(sep_index, SepPort::Out1), effluent);
                    chip.deposit(WetLoc::Separator(sep_index, SepPort::Out2), input);
                }
                Instr::Sense { unit, dst, .. } => {
                    let contents = chip.take_all(*unit);
                    // The "reading" written to the controller register is
                    // modeled as the sensed volume in picoliters.
                    report
                        .dry_registers
                        .insert(dst.0.clone(), contents.volume_pl as i64);
                    report.sense_results.push(SenseResult {
                        target: dst.0.clone(),
                        volume_pl: contents.volume_pl,
                        composition: contents.composition,
                    });
                }
            }
        }
        report.final_state = chip;
        Ok(report)
    }

    /// Resolves the planned volume for an instruction (in pl).
    /// `None` = move everything.
    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        idx: usize,
        out: &CompileOutput,
        dispensed: &mut [Option<VolumeAssignment>],
        measurements: &HashMap<(usize, NodeId), Ratio>,
        _available: Picoliters,
    ) -> Result<Option<Picoliters>, ExecError> {
        match out.volume_plan.get(idx) {
            None | Some(PlannedVolume::All) => Ok(None),
            Some(PlannedVolume::Static(v)) => Ok(Some(*v)),
            Some(PlannedVolume::Runtime { partition, edge }) => {
                let plan = match &out.resolution {
                    VolumeResolution::Partitioned(p) => p,
                    _ => return Err(ExecError("runtime volume without a partition plan".into())),
                };
                if dispensed[*partition].is_none() {
                    // Dispense partitions up to this one: their runtime
                    // bindings refer to earlier partitions whose
                    // measurements/dispensations exist by program order.
                    let results = plan
                        .dispense_upto(*partition, &self.machine, |pi, node| {
                            measurements.get(&(pi, node)).copied()
                        })
                        .map_err(|e| ExecError(e.to_string()))?;
                    for (i, r) in results.into_iter().enumerate() {
                        if dispensed[i].is_none() {
                            dispensed[i] = Some(r);
                        }
                    }
                }
                let assignment = dispensed[*partition]
                    .as_ref()
                    .ok_or_else(|| ExecError("partition not dispensed".into()))?;
                let nl = assignment.edge_volumes_nl[edge.index()];
                let lc = self.machine.least_count_nl();
                let rounded = Ratio::from_int((nl / lc).round()) * lc;
                let pl = (rounded * Ratio::from_int(1000)).round().max(0);
                Ok(Some(pl as Picoliters))
            }
        }
    }

    /// Pulls the planned amount (or everything) from `src`.
    #[allow(clippy::too_many_arguments)]
    fn pull(
        &self,
        idx: usize,
        out: &CompileOutput,
        chip: &mut ChipState,
        src: WetLoc,
        dispensed: &mut [Option<VolumeAssignment>],
        measurements: &HashMap<(usize, NodeId), Ratio>,
        report: &mut ExecReport,
        lc_pl: Picoliters,
    ) -> Result<Contents, ExecError> {
        self.pull_with_inline(
            idx,
            out,
            chip,
            src,
            None,
            dispensed,
            measurements,
            report,
            lc_pl,
        )
    }

    /// Like [`Executor::pull`], with an optional inline volume (from
    /// `move-abs`) taking precedence over the plan.
    #[allow(clippy::too_many_arguments)]
    fn pull_with_inline(
        &self,
        idx: usize,
        out: &CompileOutput,
        chip: &mut ChipState,
        src: WetLoc,
        inline: Option<Picoliters>,
        dispensed: &mut [Option<VolumeAssignment>],
        measurements: &HashMap<(usize, NodeId), Ratio>,
        report: &mut ExecReport,
        lc_pl: Picoliters,
    ) -> Result<Contents, ExecError> {
        let available = chip.volume(src);
        let resolved = match inline {
            Some(v) => Some(v),
            None => self.resolve(idx, out, dispensed, measurements, available)?,
        };
        match resolved {
            None => Ok(chip.take_all(src)),
            Some(requested) => {
                if requested < lc_pl {
                    report.violations.push(Violation::MeterUnderflow {
                        instr: idx,
                        requested_pl: requested,
                    });
                }
                if requested > available {
                    let shortfall = requested - available;
                    if shortfall > self.config.deficit_tolerance_lc.saturating_mul(lc_pl) {
                        report.violations.push(Violation::Deficit {
                            instr: idx,
                            loc: src,
                            requested_pl: requested,
                            available_pl: available,
                        });
                    }
                    return Ok(chip.take_all(src));
                }
                Ok(chip.take(src, requested))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_compiler::{compile, CompileOptions};

    fn run(src: &str) -> ExecReport {
        let machine = Machine::paper_default();
        let out = compile(src, &machine, &CompileOptions::default()).unwrap();
        Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap()
    }

    #[test]
    fn simple_mix_senses_correct_ratio() {
        let report = run("
ASSAY t START
fluid A, B;
MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let s = &report.sense_results[0];
        let ratio = s.composition["B"] / s.composition["A"];
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn glucose_executes_cleanly_with_dagsolve_volumes() {
        let report = run("
ASSAY glucose START
fluid Glucose, Reagent, Sample;
fluid a, b, c, d, e;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[1];
b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO Result[2];
c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[3];
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL it INTO Result[4];
e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[5];
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.sense_results.len(), 5);
        // Each sensed mixture hits its specified ratio within rounding
        // (instructions execute in topological, not source, order — find
        // readings by their result slot).
        for (slot, want) in [(1, 1.0), (2, 2.0), (3, 4.0), (4, 8.0)] {
            let s = report
                .sense_results
                .iter()
                .find(|s| s.target == format!("Result[{slot}]"))
                .expect("slot sensed");
            let r = s.composition["Reagent"] / s.composition["Glucose"];
            assert!((r - want).abs() / want < 0.02, "ratio {r} vs {want}");
        }
    }

    #[test]
    fn chained_incubate_preserves_volume() {
        let report = run("
ASSAY t START
fluid A, B;
MIX A AND B FOR 10;
INCUBATE it AT 37 FOR 300;
SENSE OPTICAL it INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.sense_results[0].volume_pl > 0);
    }

    #[test]
    fn known_fraction_separation_scales_volume() {
        let report = run("
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
LCSEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste YIELD 1/4;
SENSE OPTICAL eff INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // The separator input occupies up to 100 nl; effluent is 1/4.
        let sensed = report.sense_results[0].volume_pl;
        assert!(sensed > 0);
        // Input was driven to the capacity 100 nl => effluent 25 nl.
        assert_eq!(sensed, 25_000);
    }

    #[test]
    fn unknown_separation_flows_through_runtime_dispenser() {
        let report = run("
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
MIX eff AND A IN RATIOS 1 : 1 FOR 30;
SENSE OPTICAL it INTO R;
END");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let s = &report.sense_results[0];
        assert!(s.volume_pl > 0);
        // The final 1:1 mix: half direct A, half effluent (itself 1/2 A
        // + 1/2 B) => A:B = 3:1.
        let r = s.composition["A"] / s.composition["B"];
        assert!((r - 3.0).abs() < 0.05, "A:B = {r}");
    }

    #[test]
    fn no_volume_management_runs_out_of_fluid() {
        // Baseline mode: every use takes everything, so the second use
        // of A finds an empty reservoir -> deficit/empty sense.
        let machine = Machine::paper_default();
        let out = compile(
            "
ASSAY t START
fluid A, B, C;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R1;
MIX A AND C FOR 10;
SENSE OPTICAL it INTO R2;
END",
            &machine,
            &CompileOptions {
                skip_volume_management: true,
                ..Default::default()
            },
        )
        .unwrap();
        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        // The second mixture is missing its A component entirely.
        let second = &report.sense_results[1];
        let a_part = second.composition.get("A").copied().unwrap_or(0.0);
        assert!(a_part < 1e-9, "A unexpectedly present: {a_part}");
    }
}

#[cfg(test)]
mod dry_tests {
    use super::*;
    use aqua_ais::{DryOp, DrySrc, Instr};

    #[test]
    fn dry_alu_executes_on_the_controller() {
        // Hand-build a program with dry arithmetic (the enzyme codegen
        // style) and execute it directly.
        let machine = Machine::paper_default();
        let src = "
ASSAY t START
fluid A, B;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R0;
END";
        let mut out = aqua_compiler::compile(src, &machine, &Default::default()).unwrap();
        // Append: temp = 1; temp *= 10; temp -= 1  => 9.
        for (op, src_op) in [
            (DryOp::Mov, DrySrc::Imm(1)),
            (DryOp::Mul, DrySrc::Imm(10)),
            (DryOp::Sub, DrySrc::Imm(1)),
        ] {
            out.program.push(Instr::Dry {
                op,
                dst: "temp".into(),
                src: src_op,
            });
            out.volume_plan.entries.push(None);
        }
        out.program.push(Instr::Dry {
            op: DryOp::Mov,
            dst: "copy".into(),
            src: DrySrc::Reg("temp".into()),
        });
        out.volume_plan.entries.push(None);

        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        assert_eq!(report.dry_registers.get("temp"), Some(&9));
        assert_eq!(report.dry_registers.get("copy"), Some(&9));
        // Sense wrote its reading register too.
        assert!(report.dry_registers.contains_key("R0"));
        // Wet time dominates: the 10 s mix plus transfer seconds.
        assert!(report.wet_seconds >= 10);
    }
}

#[cfg(test)]
mod move_abs_tests {
    use super::*;
    use aqua_ais::Instr;

    #[test]
    fn move_abs_meters_its_inline_volume() {
        let machine = Machine::paper_default();
        let mut out = aqua_compiler::compile(
            "
ASSAY t START
fluid A, B;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R;
END",
            &machine,
            &Default::default(),
        )
        .unwrap();
        // Append: load C via input? Simpler: move-abs a slice of the
        // leftover A reservoir (inputs load exactly what is used, so
        // move from an input port-backed reservoir may be empty; use
        // the sensed path instead). Build a standalone program:
        let mut p = aqua_ais::Program::new("abs");
        p.push(Instr::Input {
            dst: aqua_ais::WetLoc::Reservoir(1),
            port: aqua_ais::WetLoc::InputPort(1),
        });
        p.push(Instr::MoveAbs {
            dst: aqua_ais::WetLoc::Reservoir(2),
            src: aqua_ais::WetLoc::Reservoir(1),
            vol: 12_300,
        });
        out.program = p;
        out.volume_plan.entries = vec![Some(aqua_compiler::PlannedVolume::All), None];
        out.volume_plan.port_fluids.insert(1, "A".into());
        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(
            report.final_state.volume(aqua_ais::WetLoc::Reservoir(2)),
            12_300
        );
        assert_eq!(
            report.final_state.volume(aqua_ais::WetLoc::Reservoir(1)),
            100_000 - 12_300
        );
    }
}
