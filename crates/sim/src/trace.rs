//! Execution traces: a per-instruction event stream plus a textual
//! timeline renderer, for debugging volume plans.
//!
//! Enable with [`crate::exec::ExecConfig::record_trace`].

use std::fmt;

use aqua_ais::{Picoliters, WetLoc};

/// One traced action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Program instruction index.
    pub instr: usize,
    /// What happened.
    pub what: TraceKind,
}

/// The kind of traced action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A fluid transfer between locations.
    Transfer {
        /// Source location.
        from: WetLoc,
        /// Destination location.
        to: WetLoc,
        /// Volume moved, in picoliters.
        volume_pl: Picoliters,
    },
    /// A functional-unit operation (mix/incubate/separate/concentrate)
    /// over the unit's current contents.
    Operate {
        /// The unit.
        unit: WetLoc,
        /// Contents at operation start, in picoliters.
        volume_pl: Picoliters,
    },
    /// A fault injected by the configured [`crate::fault::FaultPlan`].
    Fault {
        /// What went wrong.
        kind: crate::fault::FaultKind,
        /// What the plan requested, in picoliters.
        requested_pl: Picoliters,
        /// What the faulty hardware delivered (or, for sensor faults,
        /// the perturbed reading), in picoliters.
        delivered_pl: Picoliters,
    },
    /// A recovery-ladder action (the Fig. 6 hierarchy at run time).
    Recovery {
        /// Which tier acted.
        tier: crate::fault::RecoveryTier,
        /// The location being refilled (or trimmed).
        loc: WetLoc,
        /// Volume the action supplied/removed, in picoliters.
        volume_pl: Picoliters,
        /// Whether the action closed the shortfall.
        ok: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.what {
            TraceKind::Transfer {
                from,
                to,
                volume_pl,
            } => write!(
                f,
                "[{:>4}] {:>8.1} nl  {from} -> {to}",
                self.instr,
                *volume_pl as f64 / 1000.0
            ),
            TraceKind::Operate { unit, volume_pl } => write!(
                f,
                "[{:>4}] {:>8.1} nl  run {unit}",
                self.instr,
                *volume_pl as f64 / 1000.0
            ),
            TraceKind::Fault {
                kind,
                requested_pl,
                delivered_pl,
            } => write!(
                f,
                "[{:>4}] FAULT {kind}: requested {:.1} nl, delivered {:.1} nl",
                self.instr,
                *requested_pl as f64 / 1000.0,
                *delivered_pl as f64 / 1000.0
            ),
            TraceKind::Recovery {
                tier,
                loc,
                volume_pl,
                ok,
            } => write!(
                f,
                "[{:>4}] RECOVER {tier} at {loc}: {:.1} nl ({})",
                self.instr,
                *volume_pl as f64 / 1000.0,
                if *ok { "ok" } else { "failed" }
            ),
        }
    }
}

/// Renders a trace as a plain-text timeline, one event per line.
///
/// # Examples
///
/// ```
/// use aqua_compiler::compile;
/// use aqua_sim::exec::{ExecConfig, Executor};
/// use aqua_sim::trace::render_timeline;
/// use aqua_volume::Machine;
///
/// let src = "
/// ASSAY t START
/// fluid A, B;
/// MIX A AND B FOR 10;
/// SENSE OPTICAL it INTO R;
/// END";
/// let machine = Machine::paper_default();
/// let out = compile(src, &machine, &Default::default())?;
/// let config = ExecConfig { record_trace: true, ..ExecConfig::default() };
/// let report = Executor::new(&machine, config).run(&out)?;
/// let timeline = render_timeline(&report.trace);
/// assert!(timeline.contains("-> mixer1"));
/// assert!(timeline.contains("run mixer1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_timeline(trace: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in trace {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecConfig, Executor};
    use aqua_volume::Machine;

    #[test]
    fn traces_cover_every_transfer() {
        let machine = Machine::paper_default();
        let out = aqua_compiler::compile(
            "
ASSAY t START
fluid A, B;
MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO R;
END",
            &machine,
            &Default::default(),
        )
        .unwrap();
        let config = ExecConfig {
            record_trace: true,
            ..ExecConfig::default()
        };
        let report = Executor::new(&machine, config).run(&out).unwrap();
        let transfers = report
            .trace
            .iter()
            .filter(|e| matches!(e.what, TraceKind::Transfer { .. }))
            .count();
        let moves = out
            .program
            .instrs()
            .iter()
            .filter(|i| matches!(i, aqua_ais::Instr::Move { .. }))
            .count();
        assert_eq!(transfers, moves);
        // Transfers carry nonzero volumes on this clean plan.
        for e in &report.trace {
            if let TraceKind::Transfer { volume_pl, .. } = e.what {
                assert!(volume_pl > 0, "{e}");
            }
        }
    }

    #[test]
    fn tracing_defaults_off() {
        let machine = Machine::paper_default();
        let out = aqua_compiler::compile(
            "
ASSAY t START
fluid A, B;
MIX A AND B FOR 10;
SENSE OPTICAL it INTO R;
END",
            &machine,
            &Default::default(),
        )
        .unwrap();
        let report = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        assert!(report.trace.is_empty());
    }
}
