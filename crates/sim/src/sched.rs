//! The chip-as-CPU plan scheduler: dependency-DAG list scheduling with
//! resource renaming.
//!
//! Codegen serializes every assay onto one virtual unit per class
//! (`mixer1`, `heater1`, `sensor2`, …), so an AIS program as emitted has
//! no instruction-level parallelism at all — exactly like scalar code
//! before register renaming. This module lifts a compiled program into
//! a dependency DAG, renames virtual unit *episodes* (occupancy
//! lifetimes) onto the machine's physical slot inventory
//! ([`crate::alloc::SlotPool`]), and list-schedules the result with
//! critical-path priorities and a makespan objective.
//!
//! # Determinism and differential safety
//!
//! The scheduled executor does **not** reorder execution: it replays
//! instructions in original program order with renamed locations, while
//! the cycle-accurate timing (starts, slot assignments, makespan) is
//! computed statically here and validated against the dependence and
//! occupancy constraints. Program-order replay keeps the seeded fault
//! stream ([`crate::fault::FaultState`] draws one PRNG event per
//! dispense in execution order), the recovery ladder, sense sets, and
//! the conservation identity *bit-identical* to the sequential
//! executor — the schedule proves the parallel makespan, the replay
//! proves the chemistry. Scheduling itself is single-threaded and
//! fully tie-broken (priority desc, job asc, instruction asc; lowest
//! free slot id), so the same input always yields the same schedule,
//! regardless of how many worker threads later execute it.
//!
//! # Episodes
//!
//! An episode of a virtual location starts at its first write and ends
//! at a *source-emptying* operation: a sense, a move/output whose plan
//! entry drains everything (`take_all`), or a source-level
//! "move everything" whose planned volume is metered. The metered case
//! can leave a faulted remainder behind; in sequential execution that
//! remainder would merge into the unit's next fluid, so the scheduler
//! gives every such unit a dedicated *carry home* reservoir and emits a
//! carry pair per handoff: the remainder moves out to the carry home
//! right after the closing drain and back into the next episode's
//! physical slot right before its first touch — both in program order,
//! reproducing the sequential merge exactly. On a fault-free run every
//! carry moves zero fluid, so the schedule's timing (which gives carry
//! pairs no edges) is exact for the fault-free plan; under faults the
//! splice re-times the affected cone. A mixer/heater/sensor episode the
//! program *abandons* (no emptying op ever follows — e.g. a partial
//! metered drain and then nothing) is closed at its final touch the
//! same metered way: holding the slot to the end of the schedule would
//! wall off the whole class once every physical unit hosts one such
//! episode. Separator episodes never close (the waste stream keeps the
//! unit occupied). When a unit's product merely waits for its consumer
//! (a *parked* episode), the scheduler may spill it to a free reservoir
//! slot to release the unit.

use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

use aqua_ais::{Instr, ResourceClass, SepPort, WetLoc};
use aqua_compiler::{CompileOutput, PlannedVolume};
use aqua_volume::Machine;

use crate::alloc::{ClassPool, SlotPool, POOLED_CLASSES};

/// Options for schedule construction.
#[derive(Debug, Clone, Default)]
pub struct SchedOptions {
    /// Observability handle: `sim.sched.*` counters and the makespan /
    /// speedup / utilization histograms flow through here.
    pub obs: aqua_obs::Obs,
}

/// One occupancy lifetime of a virtual location.
#[derive(Debug, Clone)]
pub struct Episode {
    /// Resource class of the location.
    pub class: ResourceClass,
    /// Virtual unit index in the program text.
    pub virt: u32,
    /// Program indices touching this episode, ascending.
    pub touches: Vec<u32>,
    /// Ended by a definitely-emptying op (closed episodes release
    /// their slot; open ones hold it to the end of the schedule).
    pub closed: bool,
    /// Closed by a *metered* full drain: the executor moves the planned
    /// volume, so a faulted remainder can stay behind and must be
    /// carried to the unit's next episode.
    pub metered_close: bool,
    /// The unit's immediately preceding episode, if any.
    pub prev: Option<u32>,
    /// Ordinal among same-class episodes, in first-touch order. The
    /// scheduler opens a class's episodes strictly in this order —
    /// out-of-order slot acquisition can deadlock against serialized
    /// episode chains (a later block holding the last slot while an
    /// earlier block, which the chain forces to run first, waits).
    pub class_ord: u32,
    /// Position in `touches` where a pure-drain suffix begins: from
    /// here on the episode is only ever a transfer source, so between
    /// `touches[spill_from - 1]` completing and `touches[spill_from]`
    /// issuing the fluid is parked and may be spilled to storage.
    pub spill_from: Option<usize>,
}

/// The dependency DAG of one compiled program, with everything the
/// list scheduler needs: durations, critical-path priorities, and the
/// episode structure. Building it is pure analysis — it can be shared
/// across any number of isomorphic assay instances.
#[derive(Debug, Clone)]
pub struct InstrDag {
    /// Instruction count (all instructions, wet and dry).
    pub len: usize,
    /// Dependence predecessors per instruction (deduplicated).
    pub preds: Vec<Vec<u32>>,
    /// Dependence successors per instruction.
    pub succs: Vec<Vec<u32>>,
    /// Simulated duration per instruction, seconds.
    pub dur_s: Vec<u64>,
    /// Critical-path-to-sink priority (includes own duration).
    pub priority: Vec<u64>,
    /// All episodes, in order of first touch.
    pub episodes: Vec<Episode>,
    /// Episodes touched per instruction (deduplicated, operand order).
    pub instr_eps: Vec<Vec<u32>>,
    /// Units with at least one metered-close episode: each needs a
    /// dedicated carry-home reservoir so faulted leftovers survive the
    /// episode handoff (and so every closed episode leaves its slot
    /// replay-empty for reuse). Sorted.
    pub carry_units: Vec<(ResourceClass, u32)>,
    /// Sum of wet durations — the sequential executor's `wet_seconds`.
    pub sequential_s: u64,
    /// Longest dependence chain — the schedule's lower bound.
    pub critical_path_s: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Effect {
    Write,
    Read,
    Operate,
    /// The source is done after this touch. `leftover: true` marks a
    /// metered full drain (planned volume), which can leave a faulted
    /// remainder behind; `false` marks an unmetered `take_all` that is
    /// guaranteed to empty the location.
    Empty {
        leftover: bool,
    },
}

fn effects(instr: &Instr, plan: Option<&PlannedVolume>) -> Vec<(WetLoc, Effect)> {
    // The executor drains a source with an unmetered `take_all` only
    // when the plan says so (entry absent or `All`); a planned volume
    // is metered and can leave a faulted remainder. A source-level
    // "move everything" (no relative volume, or an output) still ends
    // the occupancy either way — any remainder is handed to the next
    // episode of the unit by a carry move (see the module docs).
    let drained = |src_all: bool| match plan {
        None | Some(PlannedVolume::All) => Effect::Empty { leftover: false },
        _ if src_all => Effect::Empty { leftover: true },
        _ => Effect::Read,
    };
    match instr {
        Instr::Input { dst, port } => vec![(*port, Effect::Read), (*dst, Effect::Write)],
        Instr::Output { port, src } => vec![(*src, drained(true)), (*port, Effect::Write)],
        Instr::Move { dst, src, rel_vol } => {
            vec![(*src, drained(rel_vol.is_none())), (*dst, Effect::Write)]
        }
        Instr::MoveAbs { dst, src, .. } => vec![(*src, Effect::Read), (*dst, Effect::Write)],
        Instr::Mix { unit, .. }
        | Instr::Incubate { unit, .. }
        | Instr::Concentrate { unit, .. }
        | Instr::Separate { unit, .. } => vec![(*unit, Effect::Operate)],
        Instr::Sense { unit, .. } => vec![(*unit, Effect::Empty { leftover: false })],
        Instr::Dry { .. } | Instr::Comment(_) => Vec::new(),
    }
}

impl InstrDag {
    /// Analyzes a compiled program: episodes, dependence edges,
    /// durations, and critical-path priorities.
    pub fn build(out: &CompileOutput) -> InstrDag {
        let instrs = out.program.instrs();
        let n = instrs.len();
        let plan = &out.volume_plan;

        let mut episodes: Vec<Episode> = Vec::new();
        let mut drains: Vec<Vec<bool>> = Vec::new(); // per episode, per touch
        let mut instr_eps: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut open: HashMap<(ResourceClass, u32), u32> = HashMap::new();
        let mut latest: HashMap<(ResourceClass, u32), u32> = HashMap::new();
        let mut carry_units: BTreeSet<(ResourceClass, u32)> = BTreeSet::new();
        let mut class_counts: HashMap<ResourceClass, u32> = HashMap::new();
        let mut edge_set: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut reg_last: HashMap<String, u32> = HashMap::new();
        let mut dur_s = vec![0u64; n];

        for (i, instr) in instrs.iter().enumerate() {
            let idx = i as u32;
            if instr.is_wet() {
                dur_s[i] = instr.wet_duration_s();
            }
            // Dry-register chains (sense writes a reading; dry ALU ops
            // read and write registers): serialize touches per name.
            let mut touch_reg = |name: &str, edge_set: &mut BTreeSet<(u32, u32)>| {
                if let Some(&last) = reg_last.get(name) {
                    if last != idx {
                        edge_set.insert((last, idx));
                    }
                }
                reg_last.insert(name.to_owned(), idx);
            };
            match instr {
                Instr::Sense { dst, .. } => touch_reg(&dst.0, &mut edge_set),
                Instr::Dry { dst, src, .. } => {
                    if let aqua_ais::DrySrc::Reg(r) = src {
                        touch_reg(&r.0, &mut edge_set);
                    }
                    touch_reg(&dst.0, &mut edge_set);
                }
                _ => {}
            }
            // Run-time dispensing (§3.5) solves against the volume
            // measurements of earlier separations: conservatively
            // depend on every separation emitted before this point.
            if let Some(PlannedVolume::Runtime { .. }) = plan.get(i) {
                for (&sep_idx, _) in plan.unknown_separations.iter() {
                    if sep_idx < i {
                        edge_set.insert((sep_idx as u32, idx));
                    }
                }
            }
            for (loc, mut effect) in effects(instr, plan.get(i)) {
                let class = loc.class();
                let key = (class, loc.unit_index());
                // A separator stays occupied by its waste stream even
                // after an output port is drained: never close it.
                if class == ResourceClass::Separator && matches!(effect, Effect::Empty { .. }) {
                    effect = Effect::Read;
                }
                // Ports hold no chip fluid; their episodes only model
                // exclusivity and chain concurrent uses.
                if matches!(class, ResourceClass::InputPort | ResourceClass::OutputPort) {
                    effect = Effect::Read;
                }
                let ep = match open.get(&key) {
                    Some(&e) => e,
                    None => {
                        let e = episodes.len() as u32;
                        let prev = latest.get(&key).copied();
                        let ord = class_counts.entry(class).or_insert(0);
                        episodes.push(Episode {
                            class,
                            virt: loc.unit_index(),
                            touches: Vec::new(),
                            closed: false,
                            metered_close: false,
                            prev,
                            class_ord: *ord,
                            spill_from: None,
                        });
                        *ord += 1;
                        drains.push(Vec::new());
                        open.insert(key, e);
                        latest.insert(key, e);
                        e
                    }
                };
                let epi = ep as usize;
                if episodes[epi].touches.last() != Some(&idx) {
                    episodes[epi].touches.push(idx);
                    drains[epi].push(matches!(effect, Effect::Read | Effect::Empty { .. }));
                    if let Some(&prev) = episodes[epi].touches.iter().rev().nth(1) {
                        edge_set.insert((prev, idx));
                    }
                    instr_eps[i].push(ep);
                }
                if let Effect::Empty { leftover } = effect {
                    episodes[epi].closed = true;
                    episodes[epi].metered_close = leftover;
                    if leftover {
                        carry_units.insert(key);
                    }
                    open.remove(&key);
                }
            }
        }

        // Port episodes release after their last touch (nothing is
        // stored at a port); spill windows exist only for units whose
        // parked product is purely waiting to drain.
        for (ep, d) in episodes.iter_mut().zip(&drains) {
            if matches!(
                ep.class,
                ResourceClass::InputPort | ResourceClass::OutputPort
            ) {
                ep.closed = true;
            }
            // A unit episode the program abandons (its last touch is a
            // metered drain or it simply stops being used) would hold
            // its slot to the end of the schedule — with a one-unit
            // inventory that wall deadlocks every later consumer of
            // the class. Close it at its final touch as a metered
            // close: the carry-out sweeps whatever is left to the
            // unit's carry-home reservoir, so the slot is replay-empty
            // for reuse. Sequential execution leaves the abandoned
            // leftover in the unit instead, but no report aggregate
            // depends on where residue sits. Separators keep their
            // waste stream on-column and never close.
            if !ep.closed
                && matches!(
                    ep.class,
                    ResourceClass::Mixer | ResourceClass::Heater | ResourceClass::Sensor
                )
            {
                ep.closed = true;
                ep.metered_close = true;
                carry_units.insert((ep.class, ep.virt));
            }
            if matches!(ep.class, ResourceClass::Mixer | ResourceClass::Heater) {
                let mut p = d.len();
                while p > 0 && d[p - 1] {
                    p -= 1;
                }
                if p >= 1 && p < d.len() {
                    ep.spill_from = Some(p);
                }
            }
        }

        let mut preds = vec![Vec::new(); n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &edge_set {
            debug_assert!(a < b, "dependence edges are forward in program order");
            preds[b as usize].push(a);
            succs[a as usize].push(b);
        }
        let mut priority = vec![0u64; n];
        for i in (0..n).rev() {
            let down = succs[i].iter().map(|&s| priority[s as usize]).max();
            priority[i] = dur_s[i] + down.unwrap_or(0);
        }
        let sequential_s = dur_s.iter().sum();
        let critical_path_s = priority.iter().copied().max().unwrap_or(0);
        InstrDag {
            len: n,
            preds,
            succs,
            dur_s,
            priority,
            episodes,
            instr_eps,
            carry_units: carry_units.into_iter().collect(),
            sequential_s,
            critical_path_s,
        }
    }
}

/// One renaming directive: occurrences of the `(class, virt)` unit in
/// this instruction execute at `to` instead (sub-ports preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rename {
    /// Class of the virtual unit being renamed.
    pub class: ResourceClass,
    /// Virtual unit index.
    pub virt: u32,
    /// Physical home — usually the same class, but a spilled episode's
    /// home is a reservoir.
    pub to: WetLoc,
}

/// Applies a rename list to one operand location.
pub fn rename_loc(renames: &[Rename], loc: WetLoc) -> WetLoc {
    for r in renames {
        if loc.class() == r.class && loc.unit_index() == r.virt {
            return if r.to.class() == r.class {
                loc.with_unit_index(r.to.unit_index())
            } else {
                r.to
            };
        }
    }
    loc
}

/// Applies a rename list to an instruction's wet operands. Port
/// operands always pass through untouched — no rename entry is ever
/// recorded for a port class, so `input`/`output` keep their virtual
/// port indices (port-fluid bindings and collection accounting are
/// keyed by them).
pub fn rename_instr(instr: &Instr, renames: &[Rename]) -> Instr {
    if renames.is_empty() {
        return instr.clone();
    }
    let r = |l: WetLoc| rename_loc(renames, l);
    match instr {
        Instr::Input { dst, port } => Instr::Input {
            dst: r(*dst),
            port: *port,
        },
        Instr::Output { port, src } => Instr::Output {
            port: *port,
            src: r(*src),
        },
        Instr::Move { dst, src, rel_vol } => Instr::Move {
            dst: r(*dst),
            src: r(*src),
            rel_vol: *rel_vol,
        },
        Instr::MoveAbs { dst, src, vol } => Instr::MoveAbs {
            dst: r(*dst),
            src: r(*src),
            vol: *vol,
        },
        Instr::Mix { unit, seconds } => Instr::Mix {
            unit: r(*unit),
            seconds: *seconds,
        },
        Instr::Incubate {
            unit,
            temp_c,
            seconds,
        } => Instr::Incubate {
            unit: r(*unit),
            temp_c: *temp_c,
            seconds: *seconds,
        },
        Instr::Concentrate {
            unit,
            temp_c,
            seconds,
        } => Instr::Concentrate {
            unit: r(*unit),
            temp_c: *temp_c,
            seconds: *seconds,
        },
        Instr::Separate {
            unit,
            kind,
            seconds,
        } => Instr::Separate {
            unit: r(*unit),
            kind: *kind,
            seconds: *seconds,
        },
        Instr::Sense { unit, kind, dst } => Instr::Sense {
            unit: r(*unit),
            kind: *kind,
            dst: dst.clone(),
        },
        Instr::Dry { .. } | Instr::Comment(_) => instr.clone(),
    }
}

/// What a scheduled relocation is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// A parked product vacates its unit into a reservoir (stall
    /// relief).
    Spill,
    /// A closing episode's faulted remainder parks in the unit's carry
    /// home. Zero volume on a fault-free run.
    CarryOut,
    /// A parked remainder rejoins the unit's next episode at its new
    /// physical slot, reproducing the sequential merge exactly.
    CarryIn,
}

/// A scheduled storage move: just before `before_instr` executes, the
/// contents at `from` relocate to `to` (an unmetered `take_all` +
/// deposit — no fault draw, so the PRNG stream is untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpillMove {
    /// Program index the relocation precedes.
    pub before_instr: u32,
    /// The location being vacated.
    pub from: WetLoc,
    /// The location taking the fluid.
    pub to: WetLoc,
    /// Schedule time of the transfer.
    pub start_s: u64,
    /// Why the fluid moves.
    pub kind: RelocKind,
}

/// Cycle-accurate timing of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Entry {
    /// Start time, seconds.
    pub start_s: u64,
    /// Duration, seconds.
    pub dur_s: u64,
}

/// The per-job (per assay instance) slice of a schedule — everything
/// the executor needs to replay this instance.
#[derive(Debug, Clone, Default)]
pub struct JobSchedule {
    /// Timing per instruction.
    pub entries: Vec<Entry>,
    /// Renames per instruction (ports are accounted in the schedule
    /// but never renamed at execution; they carry no chip fluid).
    pub renames: Vec<Vec<Rename>>,
    /// Storage relocations (stall spills and leftover carries), sorted
    /// by `before_instr` with carry-ins last among ties.
    pub spills: Vec<SpillMove>,
}

/// Occupancy of one physical slot (for validation and utilization).
#[derive(Debug, Clone, Copy)]
pub struct Hold {
    /// Resource class.
    pub class: ResourceClass,
    /// Physical slot id.
    pub slot: u32,
    /// Occupied from.
    pub t0: u64,
    /// Occupied until (`None` = end of schedule).
    pub t1: Option<u64>,
}

/// Per-class slot usage summary.
#[derive(Debug, Clone, Copy)]
pub struct ClassUtil {
    /// Resource class.
    pub class: ResourceClass,
    /// Inventory size.
    pub slots: u32,
    /// Peak concurrently-occupied slots.
    pub peak: u32,
    /// Total slot-seconds occupied.
    pub busy_slot_s: u64,
    /// `busy / (slots * makespan)`, in permille.
    pub util_permille: u64,
}

/// Scheduler statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Scheduled nodes (instructions across all jobs).
    pub nodes: u64,
    /// Episodes renamed.
    pub episodes: u64,
    /// Parked products spilled to storage.
    pub spills: u64,
    /// Carry pairs emitted for episode handoffs (each moves a faulted
    /// remainder out to a carry home and back in; zero-volume no-ops
    /// on fault-free runs).
    pub carries: u64,
    /// Stalls resolved by spilling.
    pub stalls: u64,
    /// True when list scheduling was infeasible for this inventory and
    /// the schedule degenerated to the sequential order.
    pub fallback: bool,
}

/// Why list scheduling gave up (callers fall back to sequential).
#[derive(Debug, Clone)]
pub enum SchedError {
    /// No runnable instruction and no spillable episode: the inventory
    /// cannot host the program's live set.
    Stall {
        /// Schedule time of the stall.
        at_s: u64,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Stall { at_s } => write!(
                f,
                "schedule stalled at t={at_s}s: no runnable instruction and no \
                 spillable episode for this inventory"
            ),
        }
    }
}

impl Error for SchedError {}

/// The outcome of re-timing a schedule against observed repairs.
#[derive(Debug, Clone, Copy)]
pub struct Splice {
    /// Makespan after splicing the repairs in, seconds.
    pub makespan_s: u64,
    /// Instructions whose start time moved — the quiesced slice. A
    /// fault only delays its dependence/occupancy cone; everything
    /// else keeps its original slot times.
    pub shifted: u64,
}

/// A deterministic cycle-accurate schedule for one or more assay
/// instances on one chip.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Per-instance schedules.
    pub jobs: Vec<JobSchedule>,
    /// End-to-end wet time of the schedule, seconds.
    pub makespan_s: u64,
    /// Sum of sequential wet times across instances — the baseline.
    pub sequential_s: u64,
    /// Longest dependence chain across instances — the lower bound.
    pub critical_path_s: u64,
    /// Per-class utilization.
    pub utilization: Vec<ClassUtil>,
    /// Scheduler statistics.
    pub stats: SchedStats,
    /// All timing constraints (dependences, slot succession, spill
    /// latency) as `(from, to, extra_s)` over global node ids:
    /// `start[to] >= finish[from] + extra_s`.
    edges: Vec<(u32, u32, u64)>,
    /// Issue order — a topological order of the constraint graph.
    order: Vec<u32>,
    /// Slot occupancy windows.
    holds: Vec<Hold>,
    /// Global node id of instruction 0 of each job.
    job_offsets: Vec<u32>,
}

impl Schedule {
    /// Global node id of `(job, instr)`.
    pub fn global_id(&self, job: usize, instr: usize) -> u32 {
        self.job_offsets[job] + instr as u32
    }

    fn total_nodes(&self) -> usize {
        self.jobs.iter().map(|j| j.entries.len()).sum()
    }

    fn job_of(&self, gid: u32) -> (usize, usize) {
        let job = match self.job_offsets.binary_search(&gid) {
            Ok(j) => j,
            Err(j) => j - 1,
        };
        (job, (gid - self.job_offsets[job]) as usize)
    }

    /// Checks the schedule against its own constraints: every timing
    /// edge respected, no slot double-booked.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let entry = |gid: u32| {
            let (j, i) = self.job_of(gid);
            self.jobs[j].entries[i]
        };
        for &(a, b, w) in &self.edges {
            let ea = entry(a);
            let eb = entry(b);
            if eb.start_s < ea.start_s + ea.dur_s + w {
                return Err(format!(
                    "edge {a}->{b} violated: {} < {} + {} + {w}",
                    eb.start_s, ea.start_s, ea.dur_s
                ));
            }
        }
        let mut by_slot: HashMap<(ResourceClass, u32), Vec<(u64, u64)>> = HashMap::new();
        for h in &self.holds {
            by_slot
                .entry((h.class, h.slot))
                .or_default()
                .push((h.t0, h.t1.unwrap_or(self.makespan_s)));
        }
        for ((class, slot), mut spans) in by_slot {
            spans.sort_unstable();
            for pair in spans.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(format!(
                        "{class} slot {slot} double-booked: [{}, {}) overlaps [{}, {})",
                        pair[0].0, pair[0].1, pair[1].0, pair[1].1
                    ));
                }
            }
        }
        let max_finish = self
            .jobs
            .iter()
            .flat_map(|j| j.entries.iter().map(|e| e.start_s + e.dur_s))
            .max()
            .unwrap_or(0);
        if max_finish > self.makespan_s {
            return Err(format!(
                "makespan {} shorter than the last finish {max_finish}",
                self.makespan_s
            ));
        }
        Ok(())
    }

    /// Splices observed per-instruction repair seconds back into the
    /// schedule: start times are recomputed over the dependence and
    /// occupancy edges, so only the affected cone shifts. No node ever
    /// moves *earlier* than its planned slot — re-timing around a live
    /// run can only delay (resources were committed at planned times,
    /// and some planned waits are scheduler policy not expressed as
    /// edges) — so with no repairs the schedule is returned unchanged.
    /// `repairs[job]` maps program index → extra seconds.
    pub fn splice(&self, repairs: &[&HashMap<usize, u64>]) -> Splice {
        let n = self.total_nodes();
        let mut in_edges: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for &(a, b, w) in &self.edges {
            in_edges[b as usize].push((a, w));
        }
        let mut start = vec![0u64; n];
        let mut finish = vec![0u64; n];
        let mut shifted = 0u64;
        let mut makespan = self.makespan_s;
        for &gid in &self.order {
            let (j, i) = self.job_of(gid);
            let extra = repairs.get(j).and_then(|m| m.get(&i).copied()).unwrap_or(0);
            let dur = self.jobs[j].entries[i].dur_s + extra;
            let s = in_edges[gid as usize]
                .iter()
                .map(|&(a, w)| finish[a as usize] + w)
                .max()
                .unwrap_or(0)
                .max(self.jobs[j].entries[i].start_s);
            start[gid as usize] = s;
            finish[gid as usize] = s + dur;
            makespan = makespan.max(s + dur);
            if s != self.jobs[j].entries[i].start_s {
                shifted += 1;
            }
        }
        Splice {
            makespan_s: makespan,
            shifted,
        }
    }

    /// The degenerate schedule: all instances back to back, original
    /// order, identity renames. Always feasible (it is exactly what
    /// the sequential executor does), used when list scheduling stalls.
    pub fn sequential(dags: &[&InstrDag], machine: &Machine) -> Schedule {
        let mut jobs = Vec::with_capacity(dags.len());
        let mut job_offsets = Vec::with_capacity(dags.len());
        let mut edges = Vec::new();
        let mut order = Vec::new();
        let mut t = 0u64;
        let mut gid = 0u32;
        for dag in dags {
            job_offsets.push(gid);
            let mut entries = Vec::with_capacity(dag.len);
            for i in 0..dag.len {
                if gid > 0 {
                    edges.push((gid - 1, gid, 0));
                }
                order.push(gid);
                entries.push(Entry {
                    start_s: t,
                    dur_s: dag.dur_s[i],
                });
                t += dag.dur_s[i];
                gid += 1;
            }
            jobs.push(JobSchedule {
                entries,
                renames: vec![Vec::new(); dag.len],
                spills: Vec::new(),
            });
        }
        let pool = SlotPool::from_machine(machine);
        let utilization = pool
            .iter()
            .map(|p| ClassPool::util_entry(p, 0, t))
            .collect();
        Schedule {
            jobs,
            makespan_s: t,
            sequential_s: t,
            critical_path_s: dags.iter().map(|d| d.critical_path_s).max().unwrap_or(0),
            utilization,
            stats: SchedStats {
                nodes: gid as u64,
                episodes: dags.iter().map(|d| d.episodes.len() as u64).sum(),
                fallback: true,
                ..SchedStats::default()
            },
            edges,
            order,
            holds: Vec::new(),
            job_offsets,
        }
    }
}

impl ClassPool {
    fn util_entry(pool: &ClassPool, busy_slot_s: u64, makespan_s: u64) -> ClassUtil {
        let denom = u64::from(pool.total()) * makespan_s;
        ClassUtil {
            class: pool.class(),
            slots: pool.total(),
            peak: pool.peak_in_use,
            busy_slot_s,
            util_permille: (busy_slot_s * 1000).checked_div(denom).unwrap_or(0),
        }
    }
}

/// Builds the schedule for one compiled program, falling back to the
/// sequential order if the inventory cannot host the live set.
pub fn plan(out: &CompileOutput, machine: &Machine, opts: &SchedOptions) -> Schedule {
    let dag = InstrDag::build(out);
    plan_jobs(&[&dag], machine, opts)
}

/// Builds the schedule for a fleet of instances (one [`InstrDag`] per
/// instance; isomorphic instances may share one), falling back to the
/// sequential concatenation on a stall.
pub fn plan_jobs(dags: &[&InstrDag], machine: &Machine, opts: &SchedOptions) -> Schedule {
    let sched = match list_schedule(dags, machine) {
        Ok(s) => s,
        Err(SchedError::Stall { .. }) => Schedule::sequential(dags, machine),
    };
    let obs = &opts.obs;
    if obs.enabled() {
        obs.add("sim.sched.nodes", sched.stats.nodes);
        obs.add("sim.sched.episodes", sched.stats.episodes);
        obs.add("sim.sched.spills", sched.stats.spills);
        obs.add("sim.sched.carries", sched.stats.carries);
        obs.add("sim.sched.stalls", sched.stats.stalls);
        if sched.stats.fallback {
            obs.add("sim.sched.fallbacks", 1);
        }
        obs.record("sim.sched.makespan_s", sched.makespan_s);
        if let Some(speedup) = (sched.sequential_s * 1000).checked_div(sched.makespan_s) {
            obs.record("sim.sched.speedup_permille", speedup);
        }
        for u in &sched.utilization {
            obs.record("sim.sched.util_permille", u.util_permille);
        }
    }
    sched
}

/// Per-episode run state inside the engine.
struct EpRun {
    home: Option<WetLoc>,
    slot: u32,
    done_upto: usize,
    spilled: bool,
    hold_ix: usize,
}

const EV_FINISH: u8 = 0;
const EV_WAKE: u8 = 1;

/// The list-scheduling engine. Deterministic: single-threaded, total
/// tie-break order everywhere.
fn list_schedule(dags: &[&InstrDag], machine: &Machine) -> Result<Schedule, SchedError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut job_offsets = Vec::with_capacity(dags.len());
    let mut total = 0u32;
    for dag in dags {
        job_offsets.push(total);
        total += dag.len as u32;
    }
    let n = total as usize;

    let mut pool = SlotPool::from_machine(machine);
    let mut eps: Vec<Vec<EpRun>> = dags
        .iter()
        .map(|d| {
            d.episodes
                .iter()
                .map(|_| EpRun {
                    home: None,
                    slot: 0,
                    done_upto: 0,
                    spilled: false,
                    hold_ix: usize::MAX,
                })
                .collect()
        })
        .collect();
    let mut indeg: Vec<Vec<u32>> = dags
        .iter()
        .map(|d| d.preds.iter().map(|p| p.len() as u32).collect())
        .collect();
    let mut entries: Vec<Vec<Entry>> = dags.iter().map(|d| vec![Entry::default(); d.len]).collect();
    let mut renames: Vec<Vec<Vec<Rename>>> = dags.iter().map(|d| vec![Vec::new(); d.len]).collect();
    let mut spills: Vec<Vec<SpillMove>> = dags.iter().map(|_| Vec::new()).collect();
    let mut holds: Vec<Hold> = Vec::new();
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut min_start: HashMap<u32, u64> = HashMap::new();
    // Episodes opened so far per (job, class): openings must follow
    // first-touch order within a class (see `Episode::class_ord`).
    let mut opened: HashMap<(usize, ResourceClass), u32> = HashMap::new();
    let mut stats = SchedStats {
        nodes: n as u64,
        episodes: dags.iter().map(|d| d.episodes.len() as u64).sum(),
        ..SchedStats::default()
    };

    // Dependence edges, globalized.
    for (j, dag) in dags.iter().enumerate() {
        let off = job_offsets[j];
        for (b, preds) in dag.preds.iter().enumerate() {
            for &a in preds {
                edges.push((off + a, off + b as u32, 0));
            }
        }
    }

    // Dedicated carry homes: one reservoir per unit whose metered-close
    // remainders must survive an episode handoff. Held for the whole
    // schedule.
    let mut carry_home: HashMap<(usize, ResourceClass, u32), WetLoc> = HashMap::new();
    for (j, dag) in dags.iter().enumerate() {
        for &(class, virt) in &dag.carry_units {
            let rp = pool
                .class_mut(ResourceClass::Reservoir)
                .expect("reservoir pool");
            let Some(grant) = rp.alloc(j as u32, (0, u32::MAX), 0, None) else {
                return Err(SchedError::Stall { at_s: 0 });
            };
            carry_home.insert((j, class, virt), WetLoc::Reservoir(grant.slot));
            holds.push(Hold {
                class: ResourceClass::Reservoir,
                slot: grant.slot,
                t0: 0,
                t1: None,
            });
        }
    }

    // Ready order: priority desc, job asc, instr asc.
    let key = |j: usize, i: usize| (u64::MAX - dags[j].priority[i], j as u32, i as u32);
    let mut ready: BTreeSet<(u64, u32, u32)> = BTreeSet::new();
    for (j, dag) in dags.iter().enumerate() {
        for i in 0..dag.len {
            if dag.preds[i].is_empty() {
                ready.insert(key(j, i));
            }
        }
    }

    let mut heap: BinaryHeap<Reverse<(u64, u8, u32)>> = BinaryHeap::new();
    let mut pending = n;
    let mut t = 0u64;
    let mut max_time = 0u64;

    // Completion: free episodes, unlock successors.
    macro_rules! complete {
        ($gid:expr, $f:expr) => {{
            let gid: u32 = $gid;
            let f: u64 = $f;
            let j = match job_offsets.binary_search(&gid) {
                Ok(x) => x,
                Err(x) => x - 1,
            };
            let i = (gid - job_offsets[j]) as usize;
            let dag = dags[j];
            for &ep in &dag.instr_eps[i] {
                let epi = ep as usize;
                let info = &dag.episodes[epi];
                let run = &mut eps[j][epi];
                if info.touches.get(run.done_upto) == Some(&(i as u32)) {
                    run.done_upto += 1;
                    if run.done_upto == info.touches.len() && info.closed {
                        if let Some(home) = run.home.take() {
                            let span = (info.touches[0], i as u32);
                            if let Some(p) = pool.class_mut(home.class()) {
                                p.release(run.slot, f, j as u32, span, gid, 0);
                            }
                            holds[run.hold_ix].t1 = Some(f);
                            // A metered close can leave a faulted
                            // remainder: park it in the unit's carry
                            // home so the slot is replay-empty for its
                            // next occupant (and the remainder rejoins
                            // the unit's next episode, if any).
                            if info.metered_close {
                                let home_loc = carry_home[&(j, info.class, info.virt)];
                                spills[j].push(SpillMove {
                                    before_instr: i as u32 + 1,
                                    from: home,
                                    to: home_loc,
                                    start_s: f,
                                    kind: RelocKind::CarryOut,
                                });
                                stats.carries += 1;
                            }
                        }
                    }
                }
            }
            for &s in &dag.succs[i] {
                indeg[j][s as usize] -= 1;
                if indeg[j][s as usize] == 0 {
                    ready.insert(key(j, s as usize));
                }
            }
            pending -= 1;
        }};
    }

    loop {
        // Drain all events due now.
        while let Some(&Reverse((f, kind, gid))) = heap.peek() {
            if f > t {
                break;
            }
            heap.pop();
            if kind == EV_FINISH {
                complete!(gid, f);
            }
        }

        // Issue every runnable ready node at time t, in priority order.
        let mut issued = 0usize;
        let mut dry: BTreeSet<ResourceClass> = BTreeSet::new();
        let snapshot: Vec<(u64, u32, u32)> = ready.iter().copied().collect();
        'nodes: for k in snapshot {
            let (j, i) = (k.1 as usize, k.2 as usize);
            let gid = job_offsets[j] + i as u32;
            if min_start.get(&gid).is_some_and(|&m| m > t) {
                continue;
            }
            let dag = dags[j];
            // An episode's program-order span for the allocator fence:
            // first touch to last touch, unbounded while it never
            // closes.
            let ep_span = |info: &Episode| -> (u32, u32) {
                let last = if info.closed {
                    info.touches.last().copied().unwrap_or(u32::MAX)
                } else {
                    u32::MAX
                };
                (info.touches.first().copied().unwrap_or(0), last)
            };
            // New-episode allocations this instruction needs.
            let mut needed: Vec<u32> = Vec::new();
            let mut counts: HashMap<ResourceClass, (usize, u32)> = HashMap::new();
            for &ep in &dag.instr_eps[i] {
                let info = &dag.episodes[ep as usize];
                if info.class == ResourceClass::OutputPort {
                    continue;
                }
                if eps[j][ep as usize].home.is_none() {
                    if dry.contains(&info.class) {
                        continue 'nodes;
                    }
                    let e = counts.entry(info.class).or_insert((0, 0));
                    let next_ord = opened.get(&(j, info.class)).copied().unwrap_or(0) + e.0 as u32;
                    if info.class_ord != next_ord {
                        continue 'nodes;
                    }
                    needed.push(ep);
                    e.0 += 1;
                    e.1 = e.1.max(ep_span(info).1);
                }
            }
            for (&class, &(cnt, max_last)) in &counts {
                let p = pool.class(class).expect("pooled class");
                if p.free_count() == 0 {
                    dry.insert(class);
                    continue 'nodes;
                }
                // Feasibility against the widest span needed here: a
                // slot valid for the enclosing span is valid for each
                // episode's narrower one.
                if p.valid_count(j as u32, (i as u32, max_last), t) < cnt {
                    continue 'nodes;
                }
            }
            let mut start = t;
            for &ep in &needed {
                let info = &dag.episodes[ep as usize];
                let p = pool.class_mut(info.class).expect("pooled class");
                let grant = p
                    .alloc(j as u32, ep_span(info), t, Some(info.virt))
                    .expect("validated above");
                if let Some((node, extra)) = grant.after {
                    edges.push((node, gid, extra));
                }
                *opened.entry((j, info.class)).or_insert(0) += 1;
                let new_home = loc_for(info.class, grant.slot);
                let run = &mut eps[j][ep as usize];
                run.slot = grant.slot;
                run.home = Some(new_home);
                run.hold_ix = holds.len();
                holds.push(Hold {
                    class: info.class,
                    slot: grant.slot,
                    t0: t,
                    t1: None,
                });
                // A predecessor episode closed by a metered drain may
                // have parked a remainder: bring it back in just before
                // this episode's first touch.
                if info
                    .prev
                    .is_some_and(|a| dag.episodes[a as usize].metered_close)
                {
                    let home_loc = carry_home[&(j, info.class, info.virt)];
                    spills[j].push(SpillMove {
                        before_instr: i as u32,
                        from: home_loc,
                        to: new_home,
                        start_s: t,
                        kind: RelocKind::CarryIn,
                    });
                }
            }
            // Record renames for every touched unit (ports excluded:
            // execution keeps virtual port operands).
            for &ep in &dag.instr_eps[i] {
                let info = &dag.episodes[ep as usize];
                if matches!(
                    info.class,
                    ResourceClass::InputPort | ResourceClass::OutputPort
                ) {
                    continue;
                }
                if let Some(home) = eps[j][ep as usize].home {
                    renames[j][i].push(Rename {
                        class: info.class,
                        virt: info.virt,
                        to: home,
                    });
                }
            }
            if let Some(&m) = min_start.get(&gid) {
                start = start.max(m);
            }
            let dur = dag.dur_s[i];
            entries[j][i] = Entry {
                start_s: start,
                dur_s: dur,
            };
            order.push(gid);
            max_time = max_time.max(start + dur);
            heap.push(Reverse((start + dur, EV_FINISH, gid)));
            ready.remove(&k);
            issued += 1;
        }
        if issued > 0 {
            continue;
        }
        if let Some(&Reverse((f, _, _))) = heap.peek() {
            t = f;
            continue;
        }
        if pending == 0 {
            break;
        }
        // Stall: nothing running, nothing issuable. Spill a parked
        // product to storage to free its unit, or give up.
        stats.stalls += 1;
        if spill_one(
            dags,
            &mut eps,
            &mut pool,
            &job_offsets,
            t,
            &mut holds,
            &mut edges,
            &mut spills,
            &mut renames,
            &mut min_start,
            &mut heap,
            &mut stats,
        ) {
            continue;
        }
        return Err(SchedError::Stall { at_s: t });
    }

    // Close utilization accounting.
    let makespan = max_time;
    let mut busy: HashMap<ResourceClass, u64> = HashMap::new();
    for h in &holds {
        *busy.entry(h.class).or_insert(0) += h.t1.unwrap_or(makespan).saturating_sub(h.t0);
    }
    let utilization = POOLED_CLASSES
        .iter()
        .map(|&c| {
            let p = pool.class(c).expect("pooled class");
            ClassPool::util_entry(p, busy.get(&c).copied().unwrap_or(0), makespan)
        })
        .collect();
    // Stable by emission within ties; carry-ins last so a handoff whose
    // out and in land on the same instruction parks before it rejoins.
    for js in &mut spills {
        js.sort_by_key(|s| (s.before_instr, u8::from(s.kind == RelocKind::CarryIn)));
    }
    let jobs = entries
        .into_iter()
        .zip(renames)
        .zip(spills)
        .map(|((entries, renames), spills)| JobSchedule {
            entries,
            renames,
            spills,
        })
        .collect();
    Ok(Schedule {
        jobs,
        makespan_s: makespan,
        sequential_s: dags.iter().map(|d| d.sequential_s).sum(),
        critical_path_s: dags.iter().map(|d| d.critical_path_s).max().unwrap_or(0),
        utilization,
        stats,
        edges,
        order,
        holds,
        job_offsets,
    })
}

fn loc_for(class: ResourceClass, slot: u32) -> WetLoc {
    match class {
        ResourceClass::Reservoir => WetLoc::Reservoir(slot),
        ResourceClass::Mixer => WetLoc::Mixer(slot),
        ResourceClass::Heater => WetLoc::Heater(slot),
        ResourceClass::Separator => WetLoc::Separator(slot, SepPort::Main),
        ResourceClass::Sensor => WetLoc::Sensor(slot),
        ResourceClass::InputPort => WetLoc::InputPort(slot),
        ResourceClass::OutputPort => WetLoc::OutputPort(slot),
    }
}

/// Spills the first parked, pure-drain episode to a free reservoir
/// slot: a one-second storage transfer that vacates the unit. Returns
/// false when nothing is spillable (the caller then falls back).
#[allow(clippy::too_many_arguments)]
fn spill_one(
    dags: &[&InstrDag],
    eps: &mut [Vec<EpRun>],
    pool: &mut SlotPool,
    job_offsets: &[u32],
    t: u64,
    holds: &mut Vec<Hold>,
    edges: &mut Vec<(u32, u32, u64)>,
    spills: &mut [Vec<SpillMove>],
    renames: &mut [Vec<Vec<Rename>>],
    min_start: &mut HashMap<u32, u64>,
    heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, u8, u32)>>,
    stats: &mut SchedStats,
) -> bool {
    for (j, dag) in dags.iter().enumerate() {
        for (epi, info) in dag.episodes.iter().enumerate() {
            let Some(p) = info.spill_from else { continue };
            let run = &eps[j][epi];
            if run.home.is_none() || run.spilled || run.done_upto != p {
                continue;
            }
            let next_touch = info.touches[p];
            let last_touch = if info.closed {
                info.touches.last().copied().unwrap_or(u32::MAX)
            } else {
                u32::MAX
            };
            let grant = {
                let rp = pool
                    .class_mut(ResourceClass::Reservoir)
                    .expect("reservoir pool");
                match rp.alloc(j as u32, (next_touch, last_touch), t, None) {
                    Some(g) => g,
                    None => continue,
                }
            };
            let old_home = eps[j][epi].home.expect("checked above");
            let old_slot = eps[j][epi].slot;
            let new_home = WetLoc::Reservoir(grant.slot);
            let prev_node = job_offsets[j] + info.touches[p - 1];
            let next_node = job_offsets[j] + next_touch;
            // The vacated unit is busy for the transfer second; its
            // next same-job occupant must postdate the spill point in
            // program order.
            if let Some(up) = pool.class_mut(old_home.class()) {
                up.release(
                    old_slot,
                    t + 1,
                    j as u32,
                    (info.touches[0], next_touch.saturating_sub(1)),
                    prev_node,
                    1,
                );
            }
            holds[eps[j][epi].hold_ix].t1 = Some(t + 1);
            // The new reservoir hold runs until the episode closes.
            let hold_ix = holds.len();
            holds.push(Hold {
                class: ResourceClass::Reservoir,
                slot: grant.slot,
                t0: t,
                t1: None,
            });
            if let Some((node, extra)) = grant.after {
                edges.push((node, next_node, extra));
            }
            // Timing: the drain cannot start before the transfer ends.
            edges.push((prev_node, next_node, 1));
            let e = min_start.entry(next_node).or_insert(0);
            *e = (*e).max(t + 1);
            heap.push(std::cmp::Reverse((t + 1, EV_WAKE, next_node)));
            spills[j].push(SpillMove {
                before_instr: next_touch,
                from: old_home,
                to: new_home,
                start_s: t,
                kind: RelocKind::Spill,
            });
            // Remaining touches of the episode drain from the new home.
            let run = &mut eps[j][epi];
            run.home = Some(new_home);
            run.slot = grant.slot;
            run.hold_ix = hold_ix;
            run.spilled = true;
            // Renames already recorded for issued touches stay valid;
            // unissued touches pick up the new home at their issue.
            let _ = renames;
            stats.spills += 1;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::paper_default()
            .with_reservoirs(128)
            .with_input_ports(64)
    }

    fn compiled(src: &str, machine: &Machine) -> CompileOutput {
        aqua_compiler::compile(src, machine, &aqua_compiler::CompileOptions::default())
            .expect("test program compiles")
    }

    #[test]
    fn enzyme_episodes_close_and_carry() {
        let m = machine();
        let out = compiled(&aqua_assays::Benchmark::Enzyme.source(), &m);
        let dag = InstrDag::build(&out);
        // Every mixer/heater/sensor episode closes (no unit holds its
        // slot to the end of the schedule), and the Static-planned
        // textual-all drains are metered closes, so both hot units get
        // a carry home.
        for ep in &dag.episodes {
            if matches!(
                ep.class,
                ResourceClass::Mixer | ResourceClass::Heater | ResourceClass::Sensor
            ) {
                assert!(ep.closed, "{:?}#{} left open", ep.class, ep.virt);
            }
        }
        assert!(dag.carry_units.contains(&(ResourceClass::Mixer, 1)));
        assert!(dag.carry_units.contains(&(ResourceClass::Heater, 1)));
        // Sense empties the sensor outright: closed, not metered.
        let sensed = dag
            .episodes
            .iter()
            .filter(|e| e.class == ResourceClass::Sensor && !e.metered_close)
            .count();
        assert!(sensed > 0, "sense should close sensor episodes unmetered");
    }

    #[test]
    fn separator_episodes_never_close() {
        let m = machine();
        let out = compiled(&aqua_assays::Benchmark::Glycomics.source(), &m);
        let dag = InstrDag::build(&out);
        let seps: Vec<_> = dag
            .episodes
            .iter()
            .filter(|e| e.class == ResourceClass::Separator)
            .collect();
        assert!(!seps.is_empty(), "glycomics uses a separator");
        for ep in &seps {
            assert!(!ep.closed, "the waste stream keeps the column occupied");
        }
        assert!(!dag
            .carry_units
            .iter()
            .any(|&(c, _)| c == ResourceClass::Separator));
    }

    #[test]
    fn class_ord_follows_first_touch_order() {
        let m = machine();
        let out = compiled(&aqua_assays::Benchmark::EnzymeN(4).source(), &m);
        let dag = InstrDag::build(&out);
        let mut last_first: HashMap<ResourceClass, (u32, u32)> = HashMap::new();
        for ep in &dag.episodes {
            let first = *ep.touches.first().expect("episodes are touched");
            if let Some(&(prev_ord, prev_first)) = last_first.get(&ep.class) {
                assert_eq!(ep.class_ord, prev_ord + 1, "ordinals are dense");
                assert!(prev_first <= first, "ordinals follow first touches");
            } else {
                assert_eq!(ep.class_ord, 0);
            }
            last_first.insert(ep.class, (ep.class_ord, first));
        }
    }

    #[test]
    fn carry_relocations_pair_up_in_program_order() {
        let m = machine();
        let out = compiled(&aqua_assays::Benchmark::EnzymeN(4).source(), &m);
        let sched = plan(&out, &m, &SchedOptions::default());
        assert!(!sched.stats.fallback);
        assert!(sched.stats.carries > 0, "enzyme handoffs emit carries");
        let spills = &sched.jobs[0].spills;
        // Sorted by program point, carry-ins after carry-outs at ties:
        // a slot is swept before the next episode's remainder arrives.
        for w in spills.windows(2) {
            let ka = (w[0].before_instr, u8::from(w[0].kind == RelocKind::CarryIn));
            let kb = (w[1].before_instr, u8::from(w[1].kind == RelocKind::CarryIn));
            assert!(ka <= kb, "relocations out of order: {w:?}");
        }
        // Every carry-in is fed by an earlier carry-out of the same
        // carry home (the `to` of an out is the `from` of an in).
        for ci in spills.iter().filter(|s| s.kind == RelocKind::CarryIn) {
            assert!(
                spills.iter().any(|co| co.kind == RelocKind::CarryOut
                    && co.to == ci.from
                    && co.before_instr <= ci.before_instr),
                "carry-in without a feeding carry-out: {ci:?}"
            );
        }
    }

    #[test]
    fn splice_without_repairs_is_the_schedule() {
        let m = machine();
        let out = compiled(&aqua_assays::Benchmark::EnzymeN(4).source(), &m);
        let sched = plan(&out, &m, &SchedOptions::default());
        let s = sched.splice(&[&HashMap::new()]);
        assert_eq!(s.makespan_s, sched.makespan_s);
        assert_eq!(s.shifted, 0);
    }

    #[test]
    fn splice_repair_only_delays() {
        let m = machine();
        let out = compiled(&aqua_assays::Benchmark::EnzymeN(4).source(), &m);
        let sched = plan(&out, &m, &SchedOptions::default());
        let n = sched.jobs[0].entries.len();
        for i in [0usize, n / 2, n - 1] {
            let repairs: HashMap<usize, u64> = [(i, 7u64)].into_iter().collect();
            let s = sched.splice(&[&repairs]);
            assert!(s.makespan_s >= sched.makespan_s, "instr {i}: shrank");
            assert!(
                s.makespan_s <= sched.makespan_s + 7,
                "instr {i}: one 7s repair grew the makespan by more"
            );
        }
    }

    #[test]
    fn infeasible_inventory_falls_back_to_a_valid_sequential_schedule() {
        // Four reservoirs cannot host figure2's renamed episodes plus
        // carry homes: the planner must degrade, not fail.
        let m = Machine::paper_default()
            .with_reservoirs(4)
            .with_input_ports(8);
        let out = compiled(aqua_assays::figure2::SOURCE, &m);
        let sched = plan(&out, &m, &SchedOptions::default());
        assert!(sched.stats.fallback);
        assert_eq!(sched.makespan_s, sched.sequential_s);
        sched.validate().expect("fallback schedule is valid");
    }
}
