//! Fleet-scale deterministic replay.
//!
//! The executor's strongest invariant is per-seed determinism: a
//! `(compiled plan, seed, fault rate, exec knobs)` tuple produces a
//! bit-identical run every time, on any thread. This module turns that
//! invariant into infrastructure:
//!
//! * [`RunDescriptor`] — a compact, versioned binary encoding of one
//!   run: assay key, fault seed, fault rate, and the [`ExecConfig`]
//!   knobs that affect chemistry. A descriptor plus a [`PlanSet`] fully
//!   determines the run.
//! * [`DescriptorLog`] — an append-only, CRC-guarded descriptor log on
//!   [`aqua_seglog::SegmentLog`] (the same torn-tail-truncating,
//!   era-fenced segment machinery behind `aqua-serve`'s plan store). A
//!   crash mid-append can lose the torn tail but can never yield a
//!   divergent or partial descriptor — recovery replays exactly the
//!   intact prefix.
//! * [`replay`] — the fleet engine: replays a descriptor list across a
//!   work-stealing worker pool (the `batch_exec` claim-next-index
//!   pattern), computing a per-run [`run_digest`] and rolling the fleet
//!   up into a [`FleetReport`] whose `aggregate_digest` is
//!   **order-invariant**, hence identical at any thread count.
//!
//! Replays skip compilation entirely — the [`PlanSet`] holds compiled
//! plans keyed by assay name — which is what makes million-run soaks
//! dozens of times cheaper than the recorded originals. Per-run
//! counters and histograms stream through the [`ExecConfig::obs`]
//! handle; pair it with [`aqua_obs::fleet::FleetSink`] for a live,
//! mergeable roll-up.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use aqua_compiler::CompileOutput;
use aqua_seglog::{LogConfig, RecordSpan, RecoveryReport, SegmentLog};
use aqua_volume::Machine;

use crate::exec::{ExecConfig, ExecError, ExecReport, Executor};
use crate::fault::FaultPlan;

/// Era string for descriptor-log segments. Bump when the descriptor
/// encoding changes incompatibly: old segments then read as stale and
/// are fenced off instead of misparsed.
pub const DESCRIPTOR_LOG_VERSION: &str = "aqua-replay/v1";

/// Current [`RunDescriptor`] binary encoding version.
const DESCRIPTOR_ENCODING: u8 = 1;

/// A compact, fully deterministic description of one execution.
///
/// Together with a [`PlanSet`] (assay name → compiled plan), a
/// descriptor pins down a run bit-for-bit: the fault PRNG stream is
/// seeded from `seed`, and every [`ExecConfig`] knob that affects
/// chemistry is carried as an exact integer (no floats in the
/// encoding, so the on-disk bytes are canonical).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDescriptor {
    /// Assay key into the [`PlanSet`] (e.g. `"figure2"`).
    pub assay: String,
    /// Fault-injection PRNG seed.
    pub seed: u64,
    /// Uniform fault rate in parts-per-million (0 = fault-free); maps
    /// to [`FaultPlan::uniform`]'s `rate`.
    pub fault_rate_ppm: u32,
    /// Walk the Fig. 6 recovery ladder at run time.
    pub recover: bool,
    /// Tier-1 budget: [`ExecConfig::max_redispense`].
    pub max_redispense: u32,
    /// [`ExecConfig::deficit_tolerance_lc`].
    pub deficit_tolerance_lc: u64,
    /// [`ExecConfig::unknown_separation_yield`] in per-mille (500 =
    /// the 0.5 default).
    pub yield_permille: u32,
}

impl RunDescriptor {
    /// A fault-free descriptor for `assay` with default exec knobs.
    pub fn new(assay: impl Into<String>, seed: u64) -> RunDescriptor {
        RunDescriptor {
            assay: assay.into(),
            seed,
            fault_rate_ppm: 0,
            recover: false,
            max_redispense: 2,
            deficit_tolerance_lc: 1,
            yield_permille: 500,
        }
    }

    /// A faulted descriptor: uniform fault rate (ppm) with the
    /// recovery ladder enabled.
    pub fn faulted(assay: impl Into<String>, seed: u64, fault_rate_ppm: u32) -> RunDescriptor {
        RunDescriptor {
            fault_rate_ppm,
            recover: true,
            ..RunDescriptor::new(assay, seed)
        }
    }

    /// The uniform fault rate as a fraction.
    pub fn fault_rate(&self) -> f64 {
        f64::from(self.fault_rate_ppm) / 1_000_000.0
    }

    /// Materializes the [`ExecConfig`] this descriptor pins down,
    /// threading `obs` through for per-run instrumentation.
    pub fn exec_config(&self, obs: aqua_obs::Obs) -> ExecConfig {
        ExecConfig {
            unknown_separation_yield: f64::from(self.yield_permille) / 1000.0,
            deficit_tolerance_lc: self.deficit_tolerance_lc,
            record_trace: false,
            faults: if self.fault_rate_ppm == 0 {
                FaultPlan::none()
            } else {
                FaultPlan::uniform(self.seed, self.fault_rate())
            },
            recover: self.recover,
            max_redispense: self.max_redispense,
            obs,
        }
    }

    /// The canonical binary encoding (versioned, little-endian,
    /// integers only — byte-stable across platforms).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34 + self.assay.len());
        out.push(DESCRIPTOR_ENCODING);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.fault_rate_ppm.to_le_bytes());
        out.push(u8::from(self.recover));
        out.extend_from_slice(&self.max_redispense.to_le_bytes());
        out.extend_from_slice(&self.deficit_tolerance_lc.to_le_bytes());
        out.extend_from_slice(&self.yield_permille.to_le_bytes());
        out.extend_from_slice(&(self.assay.len() as u32).to_le_bytes());
        out.extend_from_slice(self.assay.as_bytes());
        out
    }

    /// Decodes a canonical encoding; `None` on any structural problem
    /// (short buffer, unknown version, trailing bytes, non-UTF-8 key).
    pub fn decode(bytes: &[u8]) -> Option<RunDescriptor> {
        fn u32_at(b: &[u8], at: usize) -> u32 {
            let mut w = [0u8; 4];
            w.copy_from_slice(&b[at..at + 4]);
            u32::from_le_bytes(w)
        }
        fn u64_at(b: &[u8], at: usize) -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[at..at + 8]);
            u64::from_le_bytes(w)
        }
        if bytes.len() < 34 || bytes[0] != DESCRIPTOR_ENCODING {
            return None;
        }
        let seed = u64_at(bytes, 1);
        let fault_rate_ppm = u32_at(bytes, 9);
        let recover = match bytes[13] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let max_redispense = u32_at(bytes, 14);
        let deficit_tolerance_lc = u64_at(bytes, 18);
        let yield_permille = u32_at(bytes, 26);
        let assay_len = u32_at(bytes, 30) as usize;
        if bytes.len() != 34 + assay_len {
            return None;
        }
        let assay = std::str::from_utf8(&bytes[34..]).ok()?.to_string();
        Some(RunDescriptor {
            assay,
            seed,
            fault_rate_ppm,
            recover,
            max_redispense,
            deficit_tolerance_lc,
            yield_permille,
        })
    }
}

/// The append-only descriptor log: [`RunDescriptor`]s over the shared
/// CRC-guarded segment-log machinery. Torn tails are truncated on
/// open; a recovered descriptor is always byte-identical to what was
/// appended — never partial, never divergent.
pub struct DescriptorLog {
    log: SegmentLog,
}

impl DescriptorLog {
    /// The log configuration (default segment size, era =
    /// [`DESCRIPTOR_LOG_VERSION`]) rooted at `dir`.
    pub fn config(dir: impl AsRef<Path>) -> LogConfig {
        LogConfig::at(dir.as_ref(), DESCRIPTOR_LOG_VERSION)
    }

    /// Opens (or creates) the log, recovering every intact descriptor
    /// in append order. CRC-valid payloads that fail to decode are
    /// counted as torn and dropped — recovery never yields a
    /// descriptor that differs from one that was appended.
    ///
    /// # Errors
    ///
    /// I/O errors opening or repairing the segment files.
    pub fn open(
        config: LogConfig,
    ) -> io::Result<(DescriptorLog, Vec<RunDescriptor>, RecoveryReport)> {
        let (log, recovered, mut report) = SegmentLog::open(config)?;
        let mut descriptors = Vec::with_capacity(recovered.len());
        for item in recovered {
            match RunDescriptor::decode(&item.payload) {
                Some(d) => descriptors.push(d),
                None => report.torn_records += 1,
            }
        }
        report.records = descriptors.len();
        Ok((DescriptorLog { log }, descriptors, report))
    }

    /// Appends one descriptor, returning where its record landed.
    ///
    /// # Errors
    ///
    /// I/O errors writing the active segment.
    pub fn append(&mut self, descriptor: &RunDescriptor) -> io::Result<RecordSpan> {
        self.log.append(&descriptor.encode())
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.log.segment_count()
    }
}

/// Compiled plans keyed by assay name — what descriptors resolve
/// against. Replays never compile: a descriptor whose key is missing
/// here is a [`ReplayError::UnknownAssay`].
#[derive(Default)]
pub struct PlanSet {
    plans: HashMap<String, (Machine, CompileOutput)>,
}

impl PlanSet {
    /// An empty plan set.
    pub fn new() -> PlanSet {
        PlanSet::default()
    }

    /// Registers `out` (compiled for `machine`) under `name`,
    /// replacing any previous entry.
    pub fn insert(&mut self, name: impl Into<String>, machine: Machine, out: CompileOutput) {
        self.plans.insert(name.into(), (machine, out));
    }

    /// Looks up a plan by assay name.
    pub fn get(&self, name: &str) -> Option<(&Machine, &CompileOutput)> {
        self.plans.get(name).map(|(m, o)| (m, o))
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether no plans are registered.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a digest over a run's observable chemistry: sense volumes and
/// compositions, collected/flushed/input totals, violations, fault and
/// recovery counters, and the conservation delta. Two runs of the same
/// descriptor digest identically; any divergence in what the paper
/// calls the run's "wet outcome" changes the digest.
pub fn run_digest(report: &ExecReport) -> u64 {
    let mut h = FNV_BASIS;
    fnv1a(&mut h, report.wet_instructions);
    fnv1a(&mut h, report.wet_seconds);
    fnv1a(&mut h, report.input_pl);
    fnv1a(&mut h, report.flushed_pl);
    fnv1a(&mut h, report.sense_results.len() as u64);
    for s in &report.sense_results {
        fnv1a(&mut h, s.volume_pl);
        let mut fluids: Vec<&String> = s.composition.keys().collect();
        fluids.sort_unstable();
        for f in fluids {
            for b in f.as_bytes() {
                fnv1a(&mut h, u64::from(*b));
            }
            fnv1a(&mut h, s.composition[f].to_bits());
        }
    }
    let mut ports: Vec<u32> = report.collected_pl.keys().copied().collect();
    ports.sort_unstable();
    for p in ports {
        fnv1a(&mut h, u64::from(p));
        fnv1a(&mut h, report.collected_pl[&p]);
    }
    fnv1a(&mut h, report.violations.len() as u64);
    fnv1a(&mut h, report.faults.metering);
    fnv1a(&mut h, report.faults.transient);
    fnv1a(&mut h, report.faults.stuck);
    fnv1a(&mut h, report.faults.sensor);
    fnv1a(&mut h, report.recovery.redispense);
    fnv1a(&mut h, report.recovery.regenerate);
    fnv1a(&mut h, report.recovery.regen_steps);
    fnv1a(&mut h, report.recovery.replan);
    fnv1a(&mut h, report.recovery.overflow_trims);
    fnv1a(&mut h, report.recovery.failures);
    fnv1a(&mut h, report.recovery.extra_volume_pl);
    fnv1a(&mut h, report.conservation_delta_pl() as u64);
    h
}

/// Mixes run `index`'s digest into the order-invariant aggregate: the
/// fleet digest is the wrapping sum of these, so it is identical for
/// any execution order and any thread count.
fn indexed_digest(index: usize, digest: u64) -> u64 {
    let mut h = FNV_BASIS;
    fnv1a(&mut h, index as u64);
    fnv1a(&mut h, digest);
    h
}

/// Replay failure.
#[derive(Debug, Clone)]
pub enum ReplayError {
    /// A descriptor names an assay the [`PlanSet`] does not hold.
    UnknownAssay {
        /// Descriptor index in the replayed list.
        index: usize,
        /// The missing assay key.
        assay: String,
    },
    /// A run failed structurally.
    Exec {
        /// Descriptor index in the replayed list.
        index: usize,
        /// The underlying executor error.
        error: ExecError,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::UnknownAssay { index, assay } => {
                write!(
                    f,
                    "descriptor {index}: no plan registered for assay {assay:?}"
                )
            }
            ReplayError::Exec { index, error } => {
                write!(f, "descriptor {index}: {error}")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::UnknownAssay { .. } => None,
            ReplayError::Exec { error, .. } => Some(error),
        }
    }
}

/// Fleet replay options.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Worker threads (0 = 1). Thread count affects wall time only,
    /// never the report.
    pub threads: usize,
    /// Observability handle cloned into every run's [`ExecConfig`] —
    /// per-run counters and histograms stream through it. Pair with a
    /// [`aqua_obs::fleet::FleetSink`] for a mergeable roll-up.
    pub obs: aqua_obs::Obs,
    /// Keep every per-run digest in [`FleetReport::digests`] (off for
    /// million-run soaks; on for differential tests).
    pub keep_digests: bool,
}

impl Default for ReplayOptions {
    fn default() -> ReplayOptions {
        ReplayOptions {
            threads: 1,
            obs: aqua_obs::Obs::off(),
            keep_digests: false,
        }
    }
}

/// Per-fleet recovery-tier mix (sums of [`ExecReport::recovery`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryMix {
    /// Tier-1 top-up dispenses.
    pub redispense: u64,
    /// Tier-2 backward-slice regenerations.
    pub regenerate: u64,
    /// Tier-3 whole-DAG re-solves.
    pub replan: u64,
    /// Overflow trims.
    pub overflow_trims: u64,
}

/// The rolled-up outcome of one fleet replay.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Runs executed.
    pub runs: u64,
    /// Order-invariant fleet digest: wrapping sum of the index-mixed
    /// per-run digests. Identical at any thread count.
    pub aggregate_digest: u64,
    /// Runs whose conservation identity failed to close
    /// (`conservation_delta_pl() != 0`).
    pub conservation_violations: u64,
    /// Summed unrecovered shortfalls ([`ExecReport::recovery`]
    /// `failures`) across the fleet.
    pub unrecovered_faults: u64,
    /// Residual constraint violations left in reports (post-recovery).
    pub residual_violations: u64,
    /// Faults injected across the fleet.
    pub faults_injected: u64,
    /// Recovery-tier mix across the fleet.
    pub recovery: RecoveryMix,
    /// Summed wet seconds across the fleet.
    pub wet_seconds: u64,
    /// Per-run digests in descriptor order (only when
    /// [`ReplayOptions::keep_digests`]).
    pub digests: Vec<u64>,
}

#[derive(Default)]
struct Partial {
    runs: u64,
    digest_sum: u64,
    conservation_violations: u64,
    unrecovered_faults: u64,
    residual_violations: u64,
    faults_injected: u64,
    recovery: RecoveryMix,
    wet_seconds: u64,
}

impl Partial {
    fn absorb(&mut self, index: usize, report: &ExecReport, digest: u64) {
        self.runs += 1;
        self.digest_sum = self.digest_sum.wrapping_add(indexed_digest(index, digest));
        if report.conservation_delta_pl() != 0 {
            self.conservation_violations += 1;
        }
        self.unrecovered_faults += report.recovery.failures;
        self.residual_violations += report.violations.len() as u64;
        self.faults_injected += report.faults.total();
        self.recovery.redispense += report.recovery.redispense;
        self.recovery.regenerate += report.recovery.regenerate;
        self.recovery.replan += report.recovery.replan;
        self.recovery.overflow_trims += report.recovery.overflow_trims;
        self.wet_seconds += report.wet_seconds;
    }

    fn merge(&mut self, other: &Partial) {
        self.runs += other.runs;
        self.digest_sum = self.digest_sum.wrapping_add(other.digest_sum);
        self.conservation_violations += other.conservation_violations;
        self.unrecovered_faults += other.unrecovered_faults;
        self.residual_violations += other.residual_violations;
        self.faults_injected += other.faults_injected;
        self.recovery.redispense += other.recovery.redispense;
        self.recovery.regenerate += other.recovery.regenerate;
        self.recovery.replan += other.recovery.replan;
        self.recovery.overflow_trims += other.recovery.overflow_trims;
        self.wet_seconds += other.wet_seconds;
    }
}

/// Executes one descriptor against the plan set, returning the report
/// and its [`run_digest`].
///
/// # Errors
///
/// [`ReplayError::UnknownAssay`] for an unregistered assay key,
/// [`ReplayError::Exec`] for structural execution failures.
pub fn run_one(
    plans: &PlanSet,
    descriptor: &RunDescriptor,
    obs: aqua_obs::Obs,
) -> Result<(ExecReport, u64), ReplayError> {
    let (machine, out) = plans
        .get(&descriptor.assay)
        .ok_or_else(|| ReplayError::UnknownAssay {
            index: 0,
            assay: descriptor.assay.clone(),
        })?;
    let report = Executor::new(machine, descriptor.exec_config(obs))
        .run(out)
        .map_err(|error| ReplayError::Exec { index: 0, error })?;
    let digest = run_digest(&report);
    Ok((report, digest))
}

/// Replays every descriptor across a worker pool and rolls the fleet
/// up. Results are bit-identical at any thread count: per-run work is
/// independent, and the aggregate digest is order-invariant.
///
/// # Errors
///
/// The lowest-index descriptor failure (unknown assay or structural
/// executor error) — deterministic regardless of which worker hit it.
pub fn replay(
    plans: &PlanSet,
    descriptors: &[RunDescriptor],
    options: &ReplayOptions,
) -> Result<FleetReport, ReplayError> {
    let n = descriptors.len();
    // Resolve every assay key up front so workers never touch the map
    // and unknown keys fail fast and deterministically.
    let mut resolved: Vec<(&Machine, &CompileOutput)> = Vec::with_capacity(n);
    for (index, d) in descriptors.iter().enumerate() {
        match plans.get(&d.assay) {
            Some(pair) => resolved.push(pair),
            None => {
                return Err(ReplayError::UnknownAssay {
                    index,
                    assay: d.assay.clone(),
                })
            }
        }
    }

    let digest_slots: Vec<AtomicU64> = if options.keep_digests {
        (0..n).map(|_| AtomicU64::new(0)).collect()
    } else {
        Vec::new()
    };
    let first_error: Mutex<Option<(usize, ExecError)>> = Mutex::new(None);
    let total: Mutex<Partial> = Mutex::new(Partial::default());
    let next = AtomicUsize::new(0);
    let workers = options.threads.max(1).min(n.max(1));
    let obs = &options.obs;

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = Partial::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (machine, out) = resolved[i];
                    let exec = Executor::new(machine, descriptors[i].exec_config(obs.clone()));
                    let t0 = std::time::Instant::now();
                    match exec.run(out) {
                        Ok(report) => {
                            let digest = run_digest(&report);
                            local.absorb(i, &report, digest);
                            if options.keep_digests {
                                digest_slots[i].store(digest, Ordering::Relaxed);
                            }
                            if obs.enabled() {
                                obs.add("replay.runs", 1);
                                obs.record("replay.run_ns", t0.elapsed().as_nanos() as u64);
                                if report.conservation_delta_pl() != 0 {
                                    obs.add("replay.conservation_violations", 1);
                                }
                                if report.recovery.failures > 0 {
                                    obs.add("replay.unrecovered", report.recovery.failures);
                                }
                            }
                        }
                        Err(error) => {
                            let mut slot = first_error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            if slot.as_ref().is_none_or(|(at, _)| i < *at) {
                                *slot = Some((i, error));
                            }
                        }
                    }
                }
                total
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .merge(&local);
            });
        }
    });

    if let Some((index, error)) = first_error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(ReplayError::Exec { index, error });
    }
    let partial = total
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Ok(FleetReport {
        runs: partial.runs,
        aggregate_digest: partial.digest_sum,
        conservation_violations: partial.conservation_violations,
        unrecovered_faults: partial.unrecovered_faults,
        residual_violations: partial.residual_violations,
        faults_injected: partial.faults_injected,
        recovery: partial.recovery,
        wet_seconds: partial.wet_seconds,
        digests: digest_slots.into_iter().map(|a| a.into_inner()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_compiler::{compile, CompileOptions};

    fn plan_set() -> PlanSet {
        let machine = Machine::paper_default();
        let out = compile(
            "
ASSAY t START
fluid A, B;
MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO R;
END",
            &machine,
            &CompileOptions::default(),
        )
        .unwrap();
        let mut plans = PlanSet::new();
        plans.insert("t", machine, out);
        plans
    }

    #[test]
    fn descriptor_encoding_roundtrips() {
        let d = RunDescriptor {
            assay: "glucose".into(),
            seed: 0xDEAD_BEEF_0BAD_F00D,
            fault_rate_ppm: 2_500,
            recover: true,
            max_redispense: 3,
            deficit_tolerance_lc: 2,
            yield_permille: 450,
        };
        let bytes = d.encode();
        assert_eq!(RunDescriptor::decode(&bytes).as_ref(), Some(&d));
        // Structural damage is rejected, not misparsed.
        assert!(RunDescriptor::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(RunDescriptor::decode(&[]).is_none());
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(RunDescriptor::decode(&wrong_version).is_none());
    }

    #[test]
    fn descriptor_log_roundtrips() {
        let dir = std::env::temp_dir().join(format!("replay-log-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wrote = vec![
            RunDescriptor::new("t", 1),
            RunDescriptor::faulted("t", 2, 1_000),
        ];
        {
            let (mut log, existing, _) = DescriptorLog::open(DescriptorLog::config(&dir)).unwrap();
            assert!(existing.is_empty());
            for d in &wrote {
                log.append(d).unwrap();
            }
        }
        let (_log, recovered, report) = DescriptorLog::open(DescriptorLog::config(&dir)).unwrap();
        assert_eq!(recovered, wrote);
        assert_eq!(report.records, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_is_deterministic_and_matches_run_one() {
        let plans = plan_set();
        let descriptors: Vec<RunDescriptor> = (0..6)
            .map(|i| RunDescriptor::faulted("t", 1000 + i, 5_000))
            .collect();
        let opts = ReplayOptions {
            keep_digests: true,
            ..ReplayOptions::default()
        };
        let fleet = replay(&plans, &descriptors, &opts).unwrap();
        assert_eq!(fleet.runs, 6);
        assert_eq!(fleet.digests.len(), 6);
        for (d, &digest) in descriptors.iter().zip(&fleet.digests) {
            let (_, one) = run_one(&plans, d, aqua_obs::Obs::off()).unwrap();
            assert_eq!(one, digest, "replay must equal a standalone run");
        }
        // And a second replay is bit-identical.
        let again = replay(&plans, &descriptors, &opts).unwrap();
        assert_eq!(again.aggregate_digest, fleet.aggregate_digest);
        assert_eq!(again.digests, fleet.digests);
    }

    #[test]
    fn unknown_assay_fails_deterministically() {
        let plans = plan_set();
        let descriptors = vec![RunDescriptor::new("t", 1), RunDescriptor::new("missing", 2)];
        match replay(&plans, &descriptors, &ReplayOptions::default()) {
            Err(ReplayError::UnknownAssay { index, assay }) => {
                assert_eq!(index, 1);
                assert_eq!(assay, "missing");
            }
            other => panic!("expected UnknownAssay, got {other:?}"),
        }
    }
}
