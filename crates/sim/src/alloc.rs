//! Chip resource allocation: RegisterPool-style free lists.
//!
//! The scheduler treats every interchangeable location class — mixers,
//! heaters, separators, sensors, reservoirs, input ports — as a pool of
//! allocatable *slots*, exactly like a CPU backend's register classes.
//! A program's virtual unit indices (codegen emits `mixer1` for every
//! mix) are renamed onto physical slots at schedule time; the pool
//! hands out slots with deterministic tie-breaks (prefer the virtual
//! index, else the lowest free slot id) so the same input always
//! produces the same schedule.
//!
//! # The program-order fence
//!
//! The scheduled executor replays instructions in *original program
//! order* with renamed locations (see `crate::sched` for why). Two
//! episodes of the **same job** may therefore share a physical slot
//! only if their program-order touch ranges are disjoint — otherwise
//! the sequential replay would interleave two unrelated fluids at the
//! shared location even though their schedule-time windows are
//! disjoint. (The scheduler guarantees every closed episode leaves its
//! slot replay-empty: `take_all` closes drain it, metered closes are
//! swept by a carry-out — so disjointness in either direction is safe.)
//! Each pool records the occupied program-order spans per slot and
//! rejects overlapping same-job allocations; episodes of *different*
//! jobs never conflict (each assay instance replays independently).

use std::collections::HashMap;

use aqua_ais::ResourceClass;
use aqua_volume::Machine;

/// Identifies the assay instance an episode belongs to. Slot reuse
/// across different jobs carries no program-order hazard.
pub type JobId = u32;

/// A released slot plus its physical-availability time and the release
/// edge left by its previous occupant (`None` = never occupied).
#[derive(Debug, Clone, Copy)]
struct FreeSlot {
    slot: u32,
    /// Schedule time at which the slot is physically empty again (a
    /// spill keeps the old slot busy for the transfer second).
    free_at: u64,
    /// `(release_node, release_extra_s)` of the previous occupant:
    /// the global schedule node whose completion freed the slot (for
    /// resource-serialization edges), delayed by `release_extra_s`.
    after: Option<(u32, u64)>,
}

/// The free list of one resource class.
#[derive(Debug)]
pub struct ClassPool {
    class: ResourceClass,
    /// Free slots, kept sorted by slot id (deterministic picks).
    free: Vec<FreeSlot>,
    /// Program-order spans `(first_touch, last_touch)` every past
    /// occupant of a slot covered, per job — the fence data. Sorted by
    /// `first_touch` (same-job spans are pairwise disjoint).
    spans: HashMap<(u32, JobId), Vec<(u32, u32)>>,
    total: u32,
    in_use: u32,
    /// High-water mark of concurrently allocated slots.
    pub peak_in_use: u32,
    /// Total allocations served.
    pub allocs: u64,
    /// Allocation attempts that found no (valid) free slot.
    pub misses: u64,
}

/// The serialization constraint a successful allocation inherits from
/// the slot's previous occupant: the new episode's first instruction
/// may not start before the releasing node finished (plus any spill
/// latency).
#[derive(Debug, Clone, Copy)]
pub struct SlotGrant {
    /// The physical slot index (1-based, as in AIS syntax).
    pub slot: u32,
    /// `(release_node, extra_s)` of the previous occupant, if any.
    pub after: Option<(u32, u64)>,
}

impl ClassPool {
    /// A pool with slots `1..=total`, all free.
    pub fn new(class: ResourceClass, total: u32) -> ClassPool {
        ClassPool {
            class,
            free: (1..=total)
                .map(|slot| FreeSlot {
                    slot,
                    free_at: 0,
                    after: None,
                })
                .collect(),
            spans: HashMap::new(),
            total,
            in_use: 0,
            peak_in_use: 0,
            allocs: 0,
            misses: 0,
        }
    }

    /// The class this pool serves.
    pub fn class(&self) -> ResourceClass {
        self.class
    }

    /// Total slots in the inventory.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Free slots right now (ignoring fences).
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    fn valid(&self, f: &FreeSlot, job: JobId, span: (u32, u32), now: u64) -> bool {
        if f.free_at > now {
            return false;
        }
        let Some(spans) = self.spans.get(&(f.slot, job)) else {
            return true;
        };
        // Same-job spans are disjoint and sorted by first touch, so
        // only the last span starting at or before `span.1` can
        // overlap `[span.0, span.1]`.
        let p = spans.partition_point(|s| s.0 <= span.1);
        p == 0 || spans[p - 1].1 < span.0
    }

    /// How many free slots a `job` episode covering program-order
    /// `span = (first_touch, last_touch)` could legally take at
    /// schedule time `now` (fence-aware feasibility check).
    pub fn valid_count(&self, job: JobId, span: (u32, u32), now: u64) -> usize {
        self.free
            .iter()
            .filter(|f| self.valid(f, job, span, now))
            .count()
    }

    /// Allocates a slot for an episode of `job` covering program-order
    /// `span = (first_touch, last_touch)` — pass `u32::MAX` as the last
    /// touch for an episode that never closes — at schedule time `now`.
    /// Prefers `preferred` (the virtual index — keeping renames close
    /// to identity keeps fences moot), else the lowest valid slot id.
    /// Returns `None` when no valid slot is free.
    pub fn alloc(
        &mut self,
        job: JobId,
        span: (u32, u32),
        now: u64,
        preferred: Option<u32>,
    ) -> Option<SlotGrant> {
        let pick = preferred
            .and_then(|p| {
                self.free
                    .iter()
                    .position(|f| f.slot == p && self.valid(f, job, span, now))
            })
            .or_else(|| self.free.iter().position(|f| self.valid(f, job, span, now)));
        let Some(i) = pick else {
            self.misses += 1;
            return None;
        };
        let f = self.free.remove(i);
        self.in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        self.allocs += 1;
        Some(SlotGrant {
            slot: f.slot,
            after: f.after,
        })
    }

    /// Returns a slot to the free list, recording when it is physically
    /// empty again, the program-order span its occupant covered, and
    /// the schedule node whose completion released it.
    pub fn release(
        &mut self,
        slot: u32,
        free_at: u64,
        job: JobId,
        span: (u32, u32),
        release_node: u32,
        extra_s: u64,
    ) {
        let pos = self
            .free
            .binary_search_by_key(&slot, |f| f.slot)
            .unwrap_or_else(|p| p);
        self.free.insert(
            pos,
            FreeSlot {
                slot,
                free_at,
                after: Some((release_node, extra_s)),
            },
        );
        let spans = self.spans.entry((slot, job)).or_default();
        let at = spans.partition_point(|s| s.0 <= span.0);
        spans.insert(at, span);
        self.in_use = self.in_use.saturating_sub(1);
    }
}

/// All allocatable pools of one chip, sized from the [`Machine`]
/// inventory. Output ports are deliberately unpooled: they are
/// collection vessels off the wet datapath and never exclusive.
#[derive(Debug)]
pub struct SlotPool {
    pools: Vec<ClassPool>,
}

/// The allocatable classes, in pool order.
pub const POOLED_CLASSES: [ResourceClass; 6] = [
    ResourceClass::Reservoir,
    ResourceClass::Mixer,
    ResourceClass::Heater,
    ResourceClass::Separator,
    ResourceClass::Sensor,
    ResourceClass::InputPort,
];

impl SlotPool {
    /// Builds the pools from a machine's inventory.
    pub fn from_machine(machine: &Machine) -> SlotPool {
        let count = |c: ResourceClass| -> u32 {
            (match c {
                ResourceClass::Reservoir => machine.reservoirs,
                ResourceClass::Mixer => machine.mixers,
                ResourceClass::Heater => machine.heaters,
                ResourceClass::Separator => machine.separators,
                ResourceClass::Sensor => machine.sensors,
                ResourceClass::InputPort => machine.input_ports,
                ResourceClass::OutputPort => 0,
            }) as u32
        };
        SlotPool {
            pools: POOLED_CLASSES
                .iter()
                .map(|&c| ClassPool::new(c, count(c)))
                .collect(),
        }
    }

    /// The pool for a class (`None` for output ports).
    pub fn class(&self, class: ResourceClass) -> Option<&ClassPool> {
        POOLED_CLASSES
            .iter()
            .position(|&c| c == class)
            .map(|i| &self.pools[i])
    }

    /// Mutable access to a class pool (`None` for output ports).
    pub fn class_mut(&mut self, class: ResourceClass) -> Option<&mut ClassPool> {
        POOLED_CLASSES
            .iter()
            .position(|&c| c == class)
            .map(|i| &mut self.pools[i])
    }

    /// Iterates the pools in canonical class order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassPool> {
        self.pools.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_prefers_virtual_identity_then_lowest() {
        let mut p = ClassPool::new(ResourceClass::Mixer, 3);
        assert_eq!(p.alloc(0, (5, 5), 0, Some(2)).unwrap().slot, 2);
        // Preferred slot taken: falls back to the lowest free id.
        assert_eq!(p.alloc(0, (6, 6), 0, Some(2)).unwrap().slot, 1);
        assert_eq!(p.alloc(0, (7, 7), 0, None).unwrap().slot, 3);
        assert!(p.alloc(0, (8, 8), 0, None).is_none());
        assert_eq!(p.peak_in_use, 3);
        assert_eq!(p.misses, 1);
    }

    #[test]
    fn program_order_fence_blocks_same_job_overlap() {
        let mut p = ClassPool::new(ResourceClass::Reservoir, 1);
        let g = p.alloc(0, (10, 50), 0, None).unwrap();
        assert_eq!(g.slot, 1);
        // Released at t=60 by an episode spanning program order 10..50.
        p.release(1, 60, 0, (10, 50), 7, 0);
        // Not physically free before t=60.
        assert_eq!(p.valid_count(0, (51, 60), 59), 0);
        // A same-job episode overlapping 10..50 in program order is
        // rejected even after t=60.
        assert!(p.alloc(0, (20, 55), 60, None).is_none());
        assert_eq!(p.valid_count(0, (20, 55), 60), 0);
        assert!(p.alloc(0, (5, 10), 60, None).is_none());
        // A different job, or a program-order-disjoint same-job
        // episode (either side), is fine — and inherits the
        // serialization edge against the releasing node.
        assert_eq!(p.valid_count(1, (20, 55), 60), 1);
        assert_eq!(p.valid_count(0, (51, 60), 60), 1);
        assert_eq!(p.valid_count(0, (2, 9), 60), 1);
        let g = p.alloc(1, (20, 55), 60, None).unwrap();
        assert_eq!(g.after, Some((7, 0)));
        p.release(1, 80, 1, (20, 55), 9, 1);
        let g = p.alloc(0, (51, 60), 80, None).unwrap();
        assert_eq!(g.after, Some((9, 1)));
        // Both spans are now fenced: 10..50 (job 0) and 20..55 (job 1).
        p.release(1, 90, 0, (51, 60), 11, 0);
        assert_eq!(p.valid_count(0, (2, 9), 90), 1);
        assert_eq!(p.valid_count(0, (61, 70), 90), 1);
        assert_eq!(p.valid_count(0, (9, 10), 90), 0);
        assert_eq!(p.valid_count(1, (55, 70), 90), 0);
    }

    #[test]
    fn machine_inventory_sizes_the_pools() {
        let m = Machine::paper_default().with_mixers(5).with_reservoirs(7);
        let pool = SlotPool::from_machine(&m);
        assert_eq!(pool.class(ResourceClass::Mixer).unwrap().total(), 5);
        assert_eq!(pool.class(ResourceClass::Reservoir).unwrap().total(), 7);
        assert!(pool.class(ResourceClass::OutputPort).is_none());
    }
}
