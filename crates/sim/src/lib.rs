//! AquaCore PLoC simulator.
//!
//! Executes compiled AIS programs against a software model of the
//! AquaCore wet datapath: reservoirs, a mixer, a heater, separators
//! (with matrix/pusher/out ports), sensors, and I/O ports — each with
//! the machine's capacity limit, and every metered transfer subject to
//! the least-count resolution.
//!
//! Three layers:
//!
//! * [`state::ChipState`] — fluid contents (volume + composition) per
//!   wet location, with overflow detection;
//! * [`exec`] — the instruction executor, resolving each `move`'s
//!   volume from the compiler's [`aqua_compiler::VolumePlan`]
//!   (including §3.5 run-time dispensing for partitioned assays) and
//!   reporting violations (underflow, deficit, overflow) instead of
//!   crashing;
//! * [`regen`] — the Biostream-style *reactive regeneration* baseline:
//!   a DAG-level executor with no volume management that re-executes
//!   backward slices whenever a fluid runs out, counting regenerations
//!   (the right-most column of Table 2);
//! * [`fault`] — deterministic, seeded hardware-fault injection
//!   ([`fault::FaultPlan`]): metering error, transient dispense
//!   failures, stuck valves, and noisy volume sensors. With
//!   [`exec::ExecConfig::recover`] on, the executor walks the paper's
//!   Fig. 6 hierarchy *at run time* — re-dispense, regenerate the
//!   starved backward slice, re-solve with observed volumes — and
//!   reports what it did in [`exec::ExecReport::recovery`];
//! * [`sched`] / [`alloc`] — the chip-as-CPU plan scheduler: lifts a
//!   compiled program into a dependency DAG, renames virtual unit
//!   episodes onto the machine's physical slot inventory
//!   (RegisterPool-style free lists), and produces a deterministic
//!   cycle-accurate schedule with a makespan objective. The scheduled
//!   executor ([`exec::Executor::run_scheduled`]) replays instructions
//!   in program order under the renames, so sense sets, faults, and
//!   recovery stay bit-identical to sequential execution;
//! * [`batch_exec`] — interleaves many assay instances on one
//!   simulated chip, sharing DAGs across isomorphic instances and
//!   executing on worker threads with bit-identical results at any
//!   thread count.
//!
//! # Examples
//!
//! ```
//! use aqua_compiler::compile;
//! use aqua_sim::exec::{ExecConfig, Executor};
//! use aqua_volume::Machine;
//!
//! let src = "
//! ASSAY demo START
//! fluid A, B;
//! MIX A AND B IN RATIOS 1 : 4 FOR 10;
//! SENSE OPTICAL it INTO R;
//! END";
//! let machine = Machine::paper_default();
//! let out = compile(src, &machine, &Default::default())?;
//! let report = Executor::new(&machine, ExecConfig::default()).run(&out)?;
//! assert!(report.violations.is_empty());
//! assert_eq!(report.sense_results.len(), 1);
//! // The sensed mixture is 1:4 A:B by volume.
//! let s = &report.sense_results[0];
//! let a = s.composition["A"];
//! let b = s.composition["B"];
//! assert!((b / a - 4.0).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Lib targets must not panic on `unwrap()`: reachable failure paths
// carry typed errors, invariants use `expect` with a justification.
// Test code (cfg(test)) is exempt — asserting via unwrap is idiomatic.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod alloc;
pub mod batch_exec;
pub mod exec;
pub mod fault;
pub mod regen;
pub mod replay;
pub mod sched;
pub mod state;
pub mod trace;

pub use alloc::{ClassPool, SlotGrant, SlotPool};
pub use batch_exec::{run_batch, BatchJob, BatchOptions, BatchReport};
pub use exec::{ExecConfig, ExecError, ExecReport, Executor, SenseResult, Violation};
pub use fault::{
    FaultCounters, FaultKind, FaultPlan, RecoveryCounters, RecoveryTier, ScriptedFault,
    ScriptedKind,
};
pub use regen::{count_regenerations, ProductionPolicy, RegenConfig, RegenReport};
pub use sched::{InstrDag, SchedError, SchedOptions, Schedule};
