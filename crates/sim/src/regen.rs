//! The Biostream-style reactive regeneration baseline (§2, §4.3).
//!
//! Executes the assay DAG with **no volume management**: every
//! operation fills its functional unit to capacity, and whenever a
//! source fluid holds less than an operation needs, the runtime
//! *regenerates* it by re-executing the backward slice of its
//! production. The regeneration counter reproduces the right-most
//! column of Table 2 ("Regen. count ... assuming no volume
//! management"); with DAGSolve-managed volumes the count is zero.
//!
//! Policy details (the paper leaves them implicit; ours are):
//!
//! * each mix produces a full unit (the machine capacity), drawing each
//!   input's ratio share;
//! * inputs (re)load to capacity;
//! * a regeneration is counted once per *production step re-executed*
//!   while refilling an exhausted fluid — re-running a mix that must
//!   first refill its own inputs counts those refills too, mirroring
//!   the recursive re-execution of a backward slice;
//! * separations yield `fraction x input` (unknown yields use a
//!   configurable default).

use aqua_dag::{Dag, NodeId, NodeKind, Ratio};
use aqua_volume::Machine;

/// How much fluid each production step makes under the no-management
/// baseline. The paper leaves this policy implicit; the knob makes the
/// resulting regeneration counts' policy-sensitivity explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductionPolicy {
    /// Fill the functional unit to machine capacity (our default — the
    /// greediest plausible reading).
    FillToCapacity,
    /// Produce the given fraction of capacity per step (timid
    /// producers run out more often).
    FractionOfCapacity(Ratio),
}

/// Configuration of the regeneration baseline.
#[derive(Debug, Clone)]
pub struct RegenConfig {
    /// Yield assumed for unknown-volume separations.
    pub unknown_separation_yield: Ratio,
    /// Safety cap on total regenerations (pathological assays).
    pub max_regenerations: u64,
    /// How much each production step makes.
    pub production: ProductionPolicy,
}

impl Default for RegenConfig {
    fn default() -> RegenConfig {
        RegenConfig {
            unknown_separation_yield: Ratio::new(1, 2).expect("valid"),
            max_regenerations: 1_000_000,
            production: ProductionPolicy::FillToCapacity,
        }
    }
}

/// Result of a regeneration-counting run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegenReport {
    /// Regeneration steps triggered (0 with successful volume
    /// management).
    pub regenerations: u64,
    /// Total production steps executed, including regenerations.
    pub productions: u64,
    /// Whether the safety cap was hit.
    pub capped: bool,
}

/// Counts regenerations for an assay DAG executed without volume
/// management.
///
/// # Examples
///
/// ```
/// use aqua_dag::Dag;
/// use aqua_sim::regen::{count_regenerations, RegenConfig};
/// use aqua_volume::Machine;
///
/// // One shared fluid, three 1:1 uses at 50 nl each: the 100 nl load
/// // covers two, so the third triggers a regeneration. (Each partner
/// // fluid is used once and never runs out.)
/// let mut dag = Dag::new();
/// let a = dag.add_input("A");
/// for i in 0..3 {
///     let b = dag.add_input(format!("B{i}"));
///     let m = dag.add_mix(format!("m{i}"), &[(a, 1), (b, 1)], 0)?;
///     dag.add_process(format!("s{i}"), "sense.OD", m);
/// }
/// let report = count_regenerations(&dag, &Machine::paper_default(), &RegenConfig::default());
/// assert_eq!(report.regenerations, 1); // A reloaded once
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn count_regenerations(dag: &Dag, machine: &Machine, config: &RegenConfig) -> RegenReport {
    let mut report = RegenReport::default();
    let order = match dag.topological_order() {
        Ok(o) => o,
        Err(_) => return report,
    };
    // Available volume of each node's (latest) production.
    let mut available = vec![Ratio::ZERO; dag.num_nodes()];

    // First pass: everything produced once, in order (not counted as
    // regeneration).
    for &n in &order {
        if report.capped {
            return report;
        }
        produce(dag, machine, config, n, &mut available, &mut report, false);
        // Consumption happens when each consumer runs; handled inside
        // produce() for in-edges.
    }
    report
}

/// Executes node `n` once: draws each input's share (regenerating
/// sources as needed), then sets `available[n]` to the production.
fn produce(
    dag: &Dag,
    machine: &Machine,
    config: &RegenConfig,
    n: NodeId,
    available: &mut [Ratio],
    report: &mut RegenReport,
    is_regen: bool,
) {
    if report.regenerations >= config.max_regenerations {
        report.capped = true;
        return;
    }
    report.productions += 1;
    if is_regen {
        report.regenerations += 1;
    }
    let cap = match config.production {
        ProductionPolicy::FillToCapacity => machine.max_capacity_nl(),
        ProductionPolicy::FractionOfCapacity(f) => machine.max_capacity_nl() * f,
    };
    let node = dag.node(n);
    match &node.kind {
        NodeKind::Input | NodeKind::ConstrainedInput => {
            // Reloading an input always fills the reservoir.
            available[n.index()] = machine.max_capacity_nl();
        }
        _ => {
            // Draw fraction * capacity from each source.
            for &e in dag.in_edges(n) {
                let edge = dag.edge(e);
                let need = edge.fraction * cap;
                while available[edge.src.index()] < need {
                    if report.capped {
                        return;
                    }
                    produce(dag, machine, config, edge.src, available, report, true);
                }
                available[edge.src.index()] = available[edge.src.index()] - need;
            }
            let out = match &node.kind {
                NodeKind::Separate { fraction } => {
                    let f = fraction.unwrap_or(config.unknown_separation_yield);
                    cap * f
                }
                _ => cap,
            };
            available[n.index()] = out;
        }
    }
}

/// Composition of every node's product by original input fluid
/// (fractions summing to 1 per reachable node), by topological
/// propagation of edge fractions. The run-time recovery engine uses
/// this to synthesize a regenerated fluid with the right make-up
/// instead of re-running the whole backward slice wet.
pub fn node_compositions(dag: &Dag) -> Vec<std::collections::HashMap<String, f64>> {
    let mut out = vec![std::collections::HashMap::new(); dag.num_nodes()];
    let Ok(order) = dag.topological_order() else {
        return out;
    };
    for n in order {
        let node = dag.node(n);
        if node.kind.is_source() {
            out[n.index()].insert(node.name.clone(), 1.0);
            continue;
        }
        let total: f64 = dag
            .in_edges(n)
            .iter()
            .map(|&e| dag.edge(e).fraction.to_f64())
            .sum();
        if total <= 0.0 {
            continue;
        }
        let mut comp = std::collections::HashMap::new();
        for &e in dag.in_edges(n) {
            let share = dag.edge(e).fraction.to_f64() / total;
            for (fluid, frac) in &out[dag.edge(e).src.index()] {
                *comp.entry(fluid.clone()).or_insert(0.0) += frac * share;
            }
        }
        out[n.index()] = comp;
    }
    out
}

/// Number of production steps a regeneration of `target` re-executes:
/// the size of its backward slice (every producing ancestor runs once,
/// mirroring [`count_regenerations`]'s recursive policy).
pub fn backward_slice_steps(dag: &Dag, target: NodeId) -> u64 {
    dag.backward_slice(target).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::paper_default()
    }

    /// Glucose-shaped DAG: counts must match our documented policy.
    fn glucose_dag() -> Dag {
        let mut d = Dag::new();
        let g = d.add_input("Glucose");
        let r = d.add_input("Reagent");
        let s = d.add_input("Sample");
        for (i, (x, parts)) in [
            (g, (1u64, 1u64)),
            (g, (1, 2)),
            (g, (1, 4)),
            (g, (1, 8)),
            (s, (1, 1)),
        ]
        .iter()
        .enumerate()
        {
            let m = d
                .add_mix(format!("m{i}"), &[(*x, parts.0), (r, parts.1)], 10)
                .unwrap();
            d.add_process(format!("sense{i}"), "sense.OD", m);
        }
        d
    }

    #[test]
    fn glucose_baseline_needs_a_handful_of_regenerations() {
        let report = count_regenerations(&glucose_dag(), &machine(), &RegenConfig::default());
        // The paper reports 2 under its (unspecified) policy; ours
        // lands in the same few-regenerations regime.
        assert!(
            (1..=8).contains(&report.regenerations),
            "got {}",
            report.regenerations
        );
        assert!(!report.capped);
    }

    #[test]
    fn single_use_fluids_never_regenerate() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let report = count_regenerations(&d, &machine(), &RegenConfig::default());
        assert_eq!(report.regenerations, 0);
    }

    #[test]
    fn managed_volumes_imply_zero_by_construction() {
        // The paper's claim "with DAGSolve, there are no regenerations"
        // is structural: a non-deficit assignment never exhausts a
        // fluid. We verify the equivalent statement: the baseline
        // counter is zero exactly when no fluid's uses exceed one
        // capacity at baseline draw rates.
        let d = glucose_dag();
        let m = machine();
        let sol = aqua_volume::dagsolve::solve(&d, &m).unwrap();
        assert!(sol.underflow.is_none());
        let problems = sol.audit(&d, &m);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn more_uses_mean_more_regenerations() {
        let mk = |uses: u64| {
            let mut d = Dag::new();
            let a = d.add_input("A");
            let b = d.add_input("B");
            for i in 0..uses {
                let m = d.add_mix(format!("m{i}"), &[(a, 1), (b, 1)], 0).unwrap();
                d.add_process(format!("s{i}"), "sense.OD", m);
            }
            count_regenerations(&d, &machine(), &RegenConfig::default()).regenerations
        };
        assert!(mk(4) > mk(2));
        assert!(mk(16) > mk(4));
    }

    #[test]
    fn safety_cap_fires_on_absurd_dags() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        for i in 0..100 {
            let m = d.add_mix(format!("m{i}"), &[(a, 1), (b, 1)], 0).unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let cfg = RegenConfig {
            max_regenerations: 10,
            ..Default::default()
        };
        let report = count_regenerations(&d, &machine(), &cfg);
        assert!(report.capped);
        assert!(report.regenerations <= 10);
    }

    #[test]
    fn timid_production_regenerates_more() {
        let d = glucose_dag();
        let greedy = count_regenerations(&d, &machine(), &RegenConfig::default());
        let timid = count_regenerations(
            &d,
            &machine(),
            &RegenConfig {
                production: ProductionPolicy::FractionOfCapacity(Ratio::new(1, 2).unwrap()),
                ..Default::default()
            },
        );
        // Halving each mix's production halves the reagent draw per
        // step too, so counts shift but stay the same order; what must
        // hold is monotonicity in the safety cap and non-zero work.
        assert!(timid.productions > 0);
        assert!(greedy.productions > 0);
    }

    #[test]
    fn node_compositions_track_mix_ratios() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 4)], 0).unwrap();
        let mm = d.add_mix("mm", &[(m, 1), (a, 1)], 0).unwrap();
        let comp = node_compositions(&d);
        assert!((comp[a.index()]["A"] - 1.0).abs() < 1e-12);
        assert!((comp[m.index()]["A"] - 0.2).abs() < 1e-12);
        assert!((comp[m.index()]["B"] - 0.8).abs() < 1e-12);
        // mm = half m (1/10 A + 4/10 B) + half pure A.
        assert!((comp[mm.index()]["A"] - 0.6).abs() < 1e-12);
        assert!((comp[mm.index()]["B"] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn backward_slice_steps_count_ancestors() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 1)], 0).unwrap();
        let mm = d.add_mix("mm", &[(m, 1), (b, 1)], 0).unwrap();
        assert_eq!(backward_slice_steps(&d, a), 1);
        assert_eq!(backward_slice_steps(&d, m), 3);
        assert_eq!(backward_slice_steps(&d, mm), 4);
    }

    #[test]
    fn separation_yield_depletes_faster() {
        // A separate with yield 1/10 feeding two 1:1 uses: the second
        // draw re-runs the separation, which re-draws its own input.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let sep = d.add_separate("sep", a, Some(Ratio::new(1, 10).unwrap()));
        let m1 = d.add_mix("m1", &[(sep, 1), (b, 1)], 0).unwrap();
        let m2 = d.add_mix("m2", &[(sep, 1), (b, 1)], 0).unwrap();
        d.add_process("s1", "sense.OD", m1);
        d.add_process("s2", "sense.OD", m2);
        let report = count_regenerations(&d, &machine(), &RegenConfig::default());
        // sep yields 10 nl per run but each mix needs 50: many reruns.
        assert!(report.regenerations >= 8, "got {}", report.regenerations);
    }
}
