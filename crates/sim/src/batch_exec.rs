//! The batch assay executor: many instances, one chip.
//!
//! Interleaves a fleet of compiled assay instances on one simulated
//! chip. Instances tagged with the same canonical key (computed by the
//! caller, e.g. `aqua-serve`'s content-addressed plan keys) share one
//! dependency-DAG analysis; the scheduler then renames all instances'
//! episodes onto the shared slot inventory in a single union schedule.
//!
//! Execution runs each instance's program-order replay on a worker
//! pool. Replays are independent (each instance owns its chip-state
//! view — the union schedule proves their physical slot windows are
//! disjoint), and results land in per-instance slots, so the batch
//! report is **bit-identical at any thread count**: 1, 2, and 8
//! workers produce the same digest.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use aqua_compiler::CompileOutput;
use aqua_volume::Machine;

use crate::exec::{ExecConfig, ExecError, ExecReport, Executor};
use crate::sched::{plan_jobs, InstrDag, SchedOptions, Schedule};

/// One assay instance in a batch.
#[derive(Debug)]
pub struct BatchJob<'a> {
    /// The compiled program this instance runs.
    pub out: &'a CompileOutput,
    /// Canonical plan key: instances with equal keys are isomorphic
    /// and share one DAG analysis. Callers with `aqua-serve` use its
    /// canonical plan key; any collision-free tag works.
    pub key: u128,
    /// Per-instance execution config (fault seed, recovery, …).
    pub config: ExecConfig,
}

/// Batch execution options.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads for the replay phase (0 = 1). Thread count
    /// affects wall time only, never results.
    pub threads: usize,
    /// Observability handle for `sim.batch.*` counters.
    pub obs: aqua_obs::Obs,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            threads: 1,
            obs: aqua_obs::Obs::off(),
        }
    }
}

/// The outcome of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// The union schedule across all instances.
    pub schedule: Schedule,
    /// Per-instance execution reports, in job order.
    pub reports: Vec<ExecReport>,
    /// Fault-free makespan of the batch, seconds.
    pub makespan_s: u64,
    /// Back-to-back sequential baseline, seconds.
    pub sequential_s: u64,
    /// Makespan after splicing every instance's observed repairs back
    /// into the schedule, seconds.
    pub realized_makespan_s: u64,
    /// Instructions whose start time the splice moved.
    pub shifted_instrs: u64,
    /// Instances that reused a previously built DAG analysis.
    pub dag_cache_hits: u64,
    /// Distinct canonical keys in the batch.
    pub unique_keys: usize,
    /// FNV-1a digest over the schedule timing and every instance's
    /// sense set — the thread-invariance witness.
    pub digest: u64,
}

fn fnv1a(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Runs a fleet of assay instances as one scheduled batch.
///
/// # Errors
///
/// Returns the first instance's [`ExecError`] (by job index) if any
/// replay fails structurally.
pub fn run_batch(
    machine: &Machine,
    jobs: &[BatchJob<'_>],
    opts: &BatchOptions,
) -> Result<BatchReport, ExecError> {
    // Share one DAG analysis per canonical key.
    let mut dags: Vec<InstrDag> = Vec::new();
    let mut by_key: HashMap<u128, usize> = HashMap::new();
    let mut job_dag: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut hits = 0u64;
    for job in jobs {
        let ix = match by_key.get(&job.key) {
            Some(&ix) => {
                hits += 1;
                ix
            }
            None => {
                let ix = dags.len();
                dags.push(InstrDag::build(job.out));
                by_key.insert(job.key, ix);
                ix
            }
        };
        job_dag.push(ix);
    }
    let refs: Vec<&InstrDag> = job_dag.iter().map(|&i| &dags[i]).collect();
    let schedule = plan_jobs(
        &refs,
        machine,
        &SchedOptions {
            obs: opts.obs.clone(),
        },
    );

    // Replay every instance on the worker pool. Each worker claims the
    // next job index and writes its own result slot — no cross-thread
    // data dependence, so the outcome is independent of thread count.
    let n = jobs.len();
    let slots: Vec<Mutex<Option<Result<ExecReport, ExecError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = opts.threads.max(1).min(n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let exec = Executor::new(machine, jobs[i].config.clone());
                let result = exec.run_job(jobs[i].out, &schedule.jobs[i]);
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(result),
                    Err(poisoned) => *poisoned.into_inner() = Some(result),
                }
            });
        }
    });
    let mut reports = Vec::with_capacity(n);
    for slot in slots {
        let result = slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ok_or_else(|| ExecError::Structural("batch worker left a job unexecuted".into()))?;
        reports.push(result?);
    }

    // Splice all observed repairs back into the union schedule.
    let repairs: Vec<&HashMap<usize, u64>> = reports.iter().map(|r| &r.repair_s).collect();
    let splice = schedule.splice(&repairs);

    // The thread-invariance witness: schedule timing + chemistry.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for js in &schedule.jobs {
        for e in &js.entries {
            fnv1a(&mut digest, e.start_s);
            fnv1a(&mut digest, e.dur_s);
        }
        for sp in &js.spills {
            fnv1a(&mut digest, u64::from(sp.before_instr));
            fnv1a(&mut digest, sp.start_s);
        }
    }
    for r in &reports {
        for s in &r.sense_results {
            fnv1a(&mut digest, s.volume_pl);
        }
        fnv1a(&mut digest, r.recovery.total_recovered());
        fnv1a(&mut digest, r.conservation_delta_pl() as u64);
    }

    let obs = &opts.obs;
    if obs.enabled() {
        obs.add("sim.batch.instances", n as u64);
        obs.add("sim.batch.dag_cache_hits", hits);
    }
    Ok(BatchReport {
        makespan_s: schedule.makespan_s,
        sequential_s: schedule.sequential_s,
        realized_makespan_s: splice.makespan_s,
        shifted_instrs: splice.shifted,
        dag_cache_hits: hits,
        unique_keys: by_key.len(),
        digest,
        schedule,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_compiler::{compile, CompileOptions};

    fn compiled(src: &str, machine: &Machine) -> CompileOutput {
        compile(src, machine, &CompileOptions::default()).unwrap()
    }

    #[test]
    fn batch_shares_dags_and_matches_sequential_chemistry() {
        let machine = Machine::paper_default();
        let out = compiled(
            "
ASSAY t START
fluid A, B;
MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO R;
END",
            &machine,
        );
        let jobs: Vec<BatchJob> = (0..4)
            .map(|_| BatchJob {
                out: &out,
                key: 7,
                config: ExecConfig::default(),
            })
            .collect();
        let report = run_batch(&machine, &jobs, &BatchOptions::default()).unwrap();
        assert_eq!(report.unique_keys, 1);
        assert_eq!(report.dag_cache_hits, 3);
        assert_eq!(report.reports.len(), 4);
        let seq = Executor::new(&machine, ExecConfig::default())
            .run(&out)
            .unwrap();
        for r in &report.reports {
            assert_eq!(r.sense_results.len(), seq.sense_results.len());
            assert_eq!(r.sense_results[0].volume_pl, seq.sense_results[0].volume_pl);
            assert_eq!(r.conservation_delta_pl(), 0);
        }
        assert!(report.makespan_s <= report.sequential_s);
        report.schedule.validate().unwrap();
    }

    #[test]
    fn digest_is_thread_invariant() {
        let machine = Machine::paper_default();
        let out = compiled(
            "
ASSAY t START
fluid A, B, C;
fluid x, y;
x = MIX A AND B IN RATIOS 1 : 2 FOR 10;
y = MIX x AND C IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO R;
END",
            &machine,
        );
        let make_jobs = || -> Vec<BatchJob> {
            (0..6)
                .map(|_| BatchJob {
                    out: &out,
                    key: 1,
                    config: ExecConfig::default(),
                })
                .collect()
        };
        let digests: Vec<u64> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let opts = BatchOptions {
                    threads,
                    ..BatchOptions::default()
                };
                run_batch(&machine, &make_jobs(), &opts).unwrap().digest
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }
}
