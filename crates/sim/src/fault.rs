//! Deterministic fault injection for the executor.
//!
//! Real dispensers have metering error, valves stick, and the §3.5
//! sensors that measure unknown separation yields are noisy. A
//! [`FaultPlan`] describes those imperfections as seeded rates; the
//! executor draws from the plan's in-repo xorshift64* stream at every
//! dispense and measurement, so the same seed always reproduces the
//! same fault sequence (and, with tracing on, the same trace).
//!
//! Faults trigger the executor's closed-loop recovery ladder (the
//! Fig. 6 hierarchy replayed at run time) when
//! [`crate::exec::ExecConfig::recover`] is on; injected faults and the
//! recoveries they forced are counted in [`FaultCounters`] and
//! [`RecoveryCounters`] on the [`crate::exec::ExecReport`].

use std::fmt;

use aqua_ais::Picoliters;
use aqua_dag::Ratio;
use aqua_rational::rng::XorShift64Star;

/// A seeded description of hardware imperfections for one run.
///
/// All rates are probabilities in `[0, 1]` applied independently per
/// dispense (or per measurement for `sensor_rate`). [`FaultPlan::none`]
/// (also the `Default`) injects nothing and draws nothing, so a
/// fault-free run is bit-identical to one executed before this module
/// existed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the xorshift64* stream all faults are drawn from.
    pub seed: u64,
    /// Probability a metered dispense is off by up to
    /// [`FaultPlan::metering_max_lc`] least counts (either direction).
    pub metering_rate: f64,
    /// Maximum metering error magnitude, in least counts (>= 1).
    pub metering_max_lc: u64,
    /// Probability a dispense delivers nothing (transient failure).
    pub transient_rate: f64,
    /// Probability a valve sticks and short-measures the dispense.
    pub stuck_rate: f64,
    /// Fraction of the request a stuck valve still delivers.
    pub stuck_fraction: f64,
    /// Probability an unknown-volume measurement (§3.5) is perturbed.
    pub sensor_rate: f64,
    /// Relative error bound of a perturbed measurement (e.g. `0.1` =
    /// up to ±10%).
    pub sensor_rel: f64,
    /// Deterministic single faults by event index, for differential
    /// tests; checked before the random rates.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults at all (the default).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            metering_rate: 0.0,
            metering_max_lc: 2,
            transient_rate: 0.0,
            stuck_rate: 0.0,
            stuck_fraction: 0.5,
            sensor_rate: 0.0,
            sensor_rel: 0.1,
            scripted: Vec::new(),
        }
    }

    /// Every fault class at the same `rate`: the knob the fault sweep
    /// turns. Metering errors span ±2 least counts, stuck valves
    /// deliver half the request, sensor noise is ±10%.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            metering_rate: rate,
            transient_rate: rate,
            stuck_rate: rate,
            sensor_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// A plan that injects exactly one scripted fault and nothing else.
    pub fn script(fault: ScriptedFault) -> FaultPlan {
        FaultPlan {
            scripted: vec![fault],
            ..FaultPlan::none()
        }
    }

    /// Whether this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.metering_rate > 0.0
            || self.transient_rate > 0.0
            || self.stuck_rate > 0.0
            || self.sensor_rate > 0.0
            || !self.scripted.is_empty()
    }
}

/// One deterministic fault at a specific event index.
///
/// Dispense faults index the run's metered-dispense stream (input
/// loads, metered moves, and recovery top-ups, in execution order);
/// [`ScriptedKind::Sensor`] indexes the measurement stream instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// 0-based event index the fault fires at.
    pub at: u64,
    /// What goes wrong.
    pub kind: ScriptedKind,
}

/// The scripted failure mode (integer parameters so scripts stay `Eq`
/// and reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedKind {
    /// The dispense delivers nothing.
    Transient,
    /// The valve sticks: deliver only `per_mille`/1000 of the request.
    Stuck {
        /// Delivered fraction in thousandths.
        per_mille: u32,
    },
    /// Mis-meter by `delta_lc` least counts (negative = under).
    Meter {
        /// Signed error in least counts.
        delta_lc: i64,
    },
    /// Scale the recorded measurement to `per_mille`/1000 of its value.
    Sensor {
        /// Recorded fraction in thousandths.
        per_mille: u32,
    },
}

/// What kind of fault was injected (as recorded in traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Metering error of `delta_lc` least counts.
    Metering {
        /// Signed error in least counts.
        delta_lc: i64,
    },
    /// A dispense that delivered nothing.
    Transient,
    /// A stuck valve that short-measured.
    Stuck,
    /// A perturbed §3.5 volume measurement.
    Sensor,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Metering { delta_lc } => write!(f, "metering {delta_lc:+} lc"),
            FaultKind::Transient => write!(f, "transient failure"),
            FaultKind::Stuck => write!(f, "stuck valve"),
            FaultKind::Sensor => write!(f, "sensor noise"),
        }
    }
}

/// The recovery ladder tier that handled a fault — the Fig. 6
/// hierarchy replayed at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryTier {
    /// Tier 1: re-dispense from the slack left at the source.
    Redispense,
    /// Tier 2: regenerate the backward slice of the starved fluid.
    Regenerate,
    /// Tier 3: re-solve volumes with observed availability as a
    /// constraint (partition rescale or whole-DAG DAGSolve re-entry).
    Replan,
    /// Overflow handling: trim the excess to the waste port.
    OverflowTrim,
}

impl fmt::Display for RecoveryTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryTier::Redispense => write!(f, "re-dispense"),
            RecoveryTier::Regenerate => write!(f, "regenerate"),
            RecoveryTier::Replan => write!(f, "re-solve"),
            RecoveryTier::OverflowTrim => write!(f, "trim-overflow"),
        }
    }
}

/// Count of injected faults by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Metering errors injected.
    pub metering: u64,
    /// Transient dispense failures injected.
    pub transient: u64,
    /// Stuck-valve short measures injected.
    pub stuck: u64,
    /// Perturbed measurements injected.
    pub sensor: u64,
}

impl FaultCounters {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.metering + self.transient + self.stuck + self.sensor
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Metering { .. } => self.metering += 1,
            FaultKind::Transient => self.transient += 1,
            FaultKind::Stuck => self.stuck += 1,
            FaultKind::Sensor => self.sensor += 1,
        }
    }
}

/// Count of recovery actions by ladder tier, plus the extra fluid they
/// consumed over the fault-free plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Tier-1 re-dispense recoveries.
    pub redispense: u64,
    /// Tier-2 regeneration events.
    pub regenerate: u64,
    /// Production steps re-executed across all regenerations (each
    /// node of a regenerated backward slice counts once).
    pub regen_steps: u64,
    /// Tier-3 re-solves (partition rescale or DAGSolve re-entry).
    pub replan: u64,
    /// Overflows trimmed to the waste port.
    pub overflow_trims: u64,
    /// Shortfalls the whole ladder could not close (reported as
    /// [`crate::exec::Violation::Deficit`]).
    pub failures: u64,
    /// Extra volume synthesized/consumed by recovery, in pl.
    pub extra_volume_pl: Picoliters,
    /// Extra wet seconds recovery cost: one per top-up dispense and
    /// overflow trim, the backward-slice step count per regeneration,
    /// zero for electronic re-solves. The plan scheduler splices this
    /// back into its timeline to re-time faulted runs.
    pub repair_s: u64,
}

impl RecoveryCounters {
    /// Total successful recoveries across the tiers.
    pub fn total_recovered(&self) -> u64 {
        self.redispense + self.regenerate + self.replan + self.overflow_trims
    }
}

/// Run-time fault state: the plan plus its PRNG stream and event
/// counters. Created once per [`crate::exec::Executor::run`].
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: XorShift64Star,
    dispenses: u64,
    measurements: u64,
    /// Faults injected so far.
    pub counters: FaultCounters,
}

impl FaultState {
    /// Initializes the stream from a plan.
    pub fn new(plan: &FaultPlan) -> FaultState {
        FaultState {
            plan: plan.clone(),
            rng: XorShift64Star::new(plan.seed),
            dispenses: 0,
            measurements: 0,
            counters: FaultCounters::default(),
        }
    }

    /// Whether any fault can ever fire (inactive plans skip the PRNG
    /// entirely, keeping fault-free runs bit-identical to the
    /// pre-fault executor).
    pub fn active(&self) -> bool {
        self.plan.is_active()
    }

    /// Applies the plan to one metered dispense of `requested_pl`.
    /// Returns the volume the hardware nominally delivers (before
    /// availability clamping) and the fault injected, if any.
    pub fn on_dispense(
        &mut self,
        requested_pl: Picoliters,
        lc_pl: Picoliters,
    ) -> (Picoliters, Option<FaultKind>) {
        let event = self.dispenses;
        self.dispenses += 1;
        if !self.plan.is_active() {
            return (requested_pl, None);
        }
        if let Some(s) = self
            .plan
            .scripted
            .iter()
            .find(|s| s.at == event && !matches!(s.kind, ScriptedKind::Sensor { .. }))
        {
            let (delivered, kind) = match s.kind {
                ScriptedKind::Transient => (0, FaultKind::Transient),
                ScriptedKind::Stuck { per_mille } => (
                    requested_pl.saturating_mul(u64::from(per_mille)) / 1000,
                    FaultKind::Stuck,
                ),
                ScriptedKind::Meter { delta_lc } => (
                    shift_lc(requested_pl, delta_lc, lc_pl),
                    FaultKind::Metering { delta_lc },
                ),
                ScriptedKind::Sensor { .. } => unreachable!("filtered above"),
            };
            self.counters.bump(kind);
            return (delivered, Some(kind));
        }
        // One uniform draw decides the fault class via cumulative
        // thresholds, so the stream stays deterministic per event.
        let u = self.rng.next_f64();
        let t1 = self.plan.transient_rate;
        let t2 = t1 + self.plan.stuck_rate;
        let t3 = t2 + self.plan.metering_rate;
        let (delivered, kind) = if u < t1 {
            (0, FaultKind::Transient)
        } else if u < t2 {
            let f = self.plan.stuck_fraction.clamp(0.0, 1.0);
            (
                ((requested_pl as f64) * f).round() as Picoliters,
                FaultKind::Stuck,
            )
        } else if u < t3 {
            let mag = self.rng.range_u64(1, self.plan.metering_max_lc.max(1)) as i64;
            let delta_lc = if self.rng.next_f64() < 0.5 { -mag } else { mag };
            (
                shift_lc(requested_pl, delta_lc, lc_pl),
                FaultKind::Metering { delta_lc },
            )
        } else {
            return (requested_pl, None);
        };
        self.counters.bump(kind);
        (delivered, Some(kind))
    }

    /// Applies the plan to one §3.5 volume measurement (in nl).
    /// Returns the possibly-perturbed reading and the fault, if any.
    pub fn on_measurement(&mut self, nl: Ratio) -> (Ratio, Option<FaultKind>) {
        let event = self.measurements;
        self.measurements += 1;
        if !self.plan.is_active() {
            return (nl, None);
        }
        if let Some(s) = self.plan.scripted.iter().find(|s| s.at == event) {
            if let ScriptedKind::Sensor { per_mille } = s.kind {
                self.counters.bump(FaultKind::Sensor);
                let scaled = scale_ratio(nl, f64::from(per_mille) / 1000.0);
                return (scaled, Some(FaultKind::Sensor));
            }
        }
        if self.plan.sensor_rate > 0.0 && self.rng.next_f64() < self.plan.sensor_rate {
            let rel = self.plan.sensor_rel.abs();
            let eps = if rel > 0.0 {
                self.rng.range_f64(-rel, rel)
            } else {
                0.0
            };
            self.counters.bump(FaultKind::Sensor);
            return (scale_ratio(nl, 1.0 + eps), Some(FaultKind::Sensor));
        }
        (nl, None)
    }
}

/// Shifts a volume by `delta_lc` least counts, saturating at zero.
fn shift_lc(requested_pl: Picoliters, delta_lc: i64, lc_pl: Picoliters) -> Picoliters {
    let delta = delta_lc.unsigned_abs().saturating_mul(lc_pl);
    if delta_lc >= 0 {
        requested_pl.saturating_add(delta)
    } else {
        requested_pl.saturating_sub(delta)
    }
}

/// Scales a non-negative nl reading by `factor`, quantized to thousandths
/// of a nl so the result stays an exact `Ratio`.
fn scale_ratio(nl: Ratio, factor: f64) -> Ratio {
    let scaled = (nl.to_f64() * factor * 1000.0).round().max(0.0) as i128;
    Ratio::new(scaled, 1000).unwrap_or(Ratio::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_is_exactly_identity() {
        let mut f = FaultState::new(&FaultPlan::none());
        for req in [0u64, 100, 3300, 100_000] {
            assert_eq!(f.on_dispense(req, 100), (req, None));
        }
        let r = Ratio::new(25, 1).unwrap();
        assert_eq!(f.on_measurement(r), (r, None));
        assert_eq!(f.counters.total(), 0);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::uniform(42, 0.3);
        let mut a = FaultState::new(&plan);
        let mut b = FaultState::new(&plan);
        for i in 0..500u64 {
            assert_eq!(a.on_dispense(1000 + i, 100), b.on_dispense(1000 + i, 100));
        }
        assert_eq!(a.counters, b.counters);
        assert!(a.counters.total() > 0, "0.3 rate never fired in 500 draws");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultState::new(&FaultPlan::uniform(1, 0.5));
        let mut b = FaultState::new(&FaultPlan::uniform(2, 0.5));
        let sa: Vec<_> = (0..100).map(|_| a.on_dispense(1000, 100)).collect();
        let sb: Vec<_> = (0..100).map(|_| b.on_dispense(1000, 100)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn scripted_faults_fire_at_their_index() {
        let plan = FaultPlan::script(ScriptedFault {
            at: 2,
            kind: ScriptedKind::Transient,
        });
        let mut f = FaultState::new(&plan);
        assert_eq!(f.on_dispense(500, 100), (500, None));
        assert_eq!(f.on_dispense(500, 100), (500, None));
        assert_eq!(f.on_dispense(500, 100), (0, Some(FaultKind::Transient)));
        assert_eq!(f.on_dispense(500, 100), (500, None));
        assert_eq!(f.counters.transient, 1);
    }

    #[test]
    fn scripted_meter_shifts_by_least_counts() {
        let mut f = FaultState::new(&FaultPlan::script(ScriptedFault {
            at: 0,
            kind: ScriptedKind::Meter { delta_lc: -3 },
        }));
        let (v, k) = f.on_dispense(1000, 100);
        assert_eq!(v, 700);
        assert_eq!(k, Some(FaultKind::Metering { delta_lc: -3 }));
        // Saturates at zero rather than wrapping.
        let mut g = FaultState::new(&FaultPlan::script(ScriptedFault {
            at: 0,
            kind: ScriptedKind::Meter { delta_lc: -99 },
        }));
        assert_eq!(g.on_dispense(1000, 100).0, 0);
    }

    #[test]
    fn sensor_scripts_target_the_measurement_stream() {
        let mut f = FaultState::new(&FaultPlan::script(ScriptedFault {
            at: 0,
            kind: ScriptedKind::Sensor { per_mille: 500 },
        }));
        // Dispenses are untouched by a sensor script.
        assert_eq!(f.on_dispense(1000, 100), (1000, None));
        let (m, k) = f.on_measurement(Ratio::new(10, 1).unwrap());
        assert_eq!(m, Ratio::new(5, 1).unwrap());
        assert_eq!(k, Some(FaultKind::Sensor));
    }

    #[test]
    fn rates_fire_at_about_their_frequency() {
        let mut f = FaultState::new(&FaultPlan::uniform(7, 0.1));
        for _ in 0..10_000 {
            let _ = f.on_dispense(1000, 100);
        }
        // Three dispense fault classes at 0.1 each: ~3000 expected.
        let total = f.counters.total();
        assert!((2400..=3600).contains(&total), "total {total}");
    }
}
