//! Differential cache-equivalence properties (seeded, dependency-free).
//!
//! The service's core promise: a warm-cache response is byte-identical
//! to a cold compile, for the original request AND for any
//! node-permuted or fluid-renamed variant of it — while requests that
//! mean something different (other mix ratios, other machine) never
//! share a cache entry.

use std::collections::HashMap;
use std::sync::Arc;

use aqua_assays::synthetic::{layered_dag, LayeredConfig};
use aqua_dag::Dag;
use aqua_rational::rng::XorShift64Star;
use aqua_serve::{canonicalize, Service, ServiceConfig};
use aqua_volume::Machine;

/// Rebuilds `dag` with its nodes declared in a seeded random order and
/// every fluid renamed — the same computation spelled maximally
/// differently.
fn permuted_renamed_rebuild(dag: &Dag, seed: u64) -> Dag {
    let mut rng = XorShift64Star::new(seed);
    let ids: Vec<_> = dag.node_ids().collect();
    let mut order: Vec<usize> = (0..ids.len()).collect();
    // Fisher-Yates with the seeded xorshift.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.index(i + 1));
    }
    let mut rebuilt = Dag::new();
    let mut new_ids = vec![None; ids.len()];
    for &old_idx in &order {
        let node = dag.node(ids[old_idx]);
        new_ids[old_idx] =
            Some(rebuilt.add_node(format!("renamed_{}_{}", seed, old_idx), node.kind.clone()));
    }
    // Edges in a scrambled order too.
    let mut edges: Vec<_> = dag.edge_ids().filter(|&e| dag.edge_is_live(e)).collect();
    for i in (1..edges.len()).rev() {
        edges.swap(i, rng.index(i + 1));
    }
    for e in edges {
        let edge = dag.edge(e);
        let src = new_ids[edge.src.index()].expect("mapped");
        let dst = new_ids[edge.dst.index()].expect("mapped");
        rebuilt.add_edge(src, dst, edge.fraction);
    }
    rebuilt
}

fn two_input_mix(parts: &[(u64, u64)]) -> Dag {
    let mut d = Dag::new();
    let a = d.add_input("A");
    let b = d.add_input("B");
    for (i, &(pa, pb)) in parts.iter().enumerate() {
        let m = d
            .add_mix(format!("m{i}"), &[(a, pa), (b, pb)], 10)
            .expect("valid mix");
        d.add_process(format!("s{i}"), "sense.OD", m);
    }
    d
}

#[test]
fn random_dags_warm_equals_cold_under_permutation_and_renaming() {
    let machine = Machine::paper_default();
    let weights = HashMap::new();
    let service = Service::new(ServiceConfig::default());
    for seed in 0..12u64 {
        let config = LayeredConfig {
            inputs: 3 + (seed as usize % 3),
            layers: 1 + (seed as usize % 3),
            width: 2 + (seed as usize % 2),
            ..LayeredConfig::default()
        };
        let dag = layered_dag(seed * 7 + 1, &config);
        let variant = permuted_renamed_rebuild(&dag, seed * 131 + 5);
        let ck = canonicalize(&dag, &weights, &machine).expect("canon");
        let cv = canonicalize(&variant, &weights, &machine).expect("canon");
        assert_eq!(ck.key, cv.key, "seed {seed}: variant changed the key");
        assert_eq!(
            ck.encoding, cv.encoding,
            "seed {seed}: variant changed the canonical encoding"
        );

        // Cold compile (fresh service), then warm hits on the shared
        // service for both spellings: all three byte-identical.
        let fresh = Service::new(ServiceConfig::default());
        let cold = fresh
            .submit_dag(&dag, &weights, &machine, None)
            .expect("cold compiles");
        let first = service
            .submit_dag(&dag, &weights, &machine, None)
            .expect("first submit");
        let warm = service
            .submit_dag(&variant, &weights, &machine, None)
            .expect("warm variant");
        assert_eq!(first.key, warm.key, "seed {seed}");
        assert_eq!(
            first.plan, warm.plan,
            "seed {seed}: warm plan differs from first compile"
        );
        assert_eq!(
            cold.plan, warm.plan,
            "seed {seed}: warm plan differs from a cold compile"
        );
    }
}

#[test]
fn renamed_paper_assays_share_the_cache_entry() {
    // Fluid-rename the paper sources textually — a different front-end
    // spelling of the same assay — and check the warm hit is
    // byte-identical to the cold compile.
    let renames: [&[(&str, &str)]; 2] = [
        &[("Glucose", "FluidX7"), ("Reagent", "Zq"), ("Sample", "W1")],
        &[
            ("sample", "specimenA"),
            ("buffer1a", "bufAlpha"),
            ("buffer2", "bufBeta"),
            ("buffer3a", "bufGamma"),
            ("buffer4", "bufDelta"),
            ("buffer5", "bufEpsilon"),
            ("NaOH", "base1"),
        ],
    ];
    let sources = [
        aqua_assays::glucose::SOURCE.to_owned(),
        aqua_assays::glycomics::SOURCE.to_owned(),
    ];
    let machine = Machine::paper_default();
    for (source, renaming) in sources.iter().zip(renames) {
        let mut renamed = source.clone();
        for (from, to) in renaming {
            renamed = renamed.replace(from, to);
        }
        assert_ne!(&renamed, source, "renaming must change the text");

        let service = Service::new(ServiceConfig::default());
        let cold = service
            .submit_src(source, &machine, None)
            .expect("paper assay compiles");
        let warm = service
            .submit_src(&renamed, &machine, None)
            .expect("renamed assay compiles");
        assert_eq!(cold.key, warm.key, "rename changed the key");
        assert_eq!(cold.plan, warm.plan, "warm plan differs from cold");

        // And cold-compiling the renamed variant from scratch still
        // yields the same bytes (equivalence is not a cache artifact).
        let fresh = Service::new(ServiceConfig::default());
        let recold = fresh
            .submit_src(&renamed, &machine, None)
            .expect("renamed assay compiles cold");
        assert_eq!(recold.plan, cold.plan);
    }
}

#[test]
fn different_mix_ratios_never_collide() {
    let machine = Machine::paper_default();
    let weights = HashMap::new();
    // Asymmetric context (a second mix at a fixed ratio) so that
    // ratio-swapped variants are NOT isomorphic here.
    let ratios: [&[(u64, u64)]; 6] = [
        &[(1, 2), (1, 9)],
        &[(1, 3), (1, 9)],
        &[(2, 3), (1, 9)],
        &[(3, 2), (1, 9)],
        &[(1, 4), (1, 9)],
        &[(5, 7), (1, 9)],
    ];
    let mut seen: HashMap<u128, usize> = HashMap::new();
    let service = Service::new(ServiceConfig::default());
    for (i, parts) in ratios.iter().enumerate() {
        let dag = two_input_mix(parts);
        let canon = canonicalize(&dag, &weights, &machine).expect("canon");
        if let Some(&j) = seen.get(&canon.key) {
            panic!("ratio sets {j} and {i} collided on key {:032x}", canon.key);
        }
        seen.insert(canon.key, i);
        // Serving them all through one cache keeps them distinct too.
        let served = service
            .submit_dag(&dag, &weights, &machine, None)
            .expect("compiles");
        assert_eq!(served.key, canon.key);
    }
    assert_eq!(seen.len(), ratios.len());
}

#[test]
fn warm_plan_bytes_are_shared_not_copied() {
    // A cache hit returns the same allocation, not an equal copy — the
    // mechanism behind warm throughput.
    let machine = Machine::paper_default();
    let weights = HashMap::new();
    let service = Service::new(ServiceConfig::default());
    let dag = two_input_mix(&[(1, 4)]);
    let cold = service
        .submit_dag(&dag, &weights, &machine, None)
        .expect("compiles");
    let warm = service
        .submit_dag(&dag, &weights, &machine, None)
        .expect("hits");
    assert!(Arc::ptr_eq(&cold.plan, &warm.plan));
}
