//! Crash-recovery property tests for the persistent plan store.
//!
//! The store's contract: rehydration after a crash recovers **every
//! record that was durably written**, rejects torn tails instead of
//! serving partial bytes, and a rehydrated service never serves a plan
//! whose bytes differ from a cold compile. These tests attack that
//! contract with randomized truncation and corruption (seeded
//! `XorShift64Star`, so failures reproduce).

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::Arc;

use aqua_dag::Dag;
use aqua_obs::Obs;
use aqua_rational::rng::XorShift64Star;
use aqua_serve::store::{PlanStore, RecordSpan, StoreConfig};
use aqua_serve::{Service, ServiceConfig};
use aqua_volume::Machine;

fn test_dir(name: &str, trial: usize) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("store_recovery")
        .join(format!("{name}-{}-{trial}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean test dir");
    }
    dir
}

struct Appended {
    key: u128,
    encoding: Vec<u8>,
    plan: String,
    span: RecordSpan,
}

/// Appends `n` random records and returns them with their spans (all in
/// one segment — the default segment size is far larger than the data).
fn fill_store(dir: &PathBuf, rng: &mut XorShift64Star, n: usize) -> Vec<Appended> {
    let (mut store, existing, _) = PlanStore::open(StoreConfig::at(dir)).expect("open");
    assert!(existing.is_empty());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let key = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128 | i as u128;
        let encoding: Vec<u8> = (0..rng.range_u64(1, 64))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let plan: String = (0..rng.range_u64(8, 256))
            .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
            .collect();
        let fresh = store.append(key, &encoding, &plan).expect("append");
        assert!(fresh, "keys are unique, every append must be fresh");
        let span = store.locate(key).expect("just-appended key has a span");
        out.push(Appended {
            key,
            encoding,
            plan,
            span,
        });
    }
    assert_eq!(store.segment_count(), 1, "test assumes a single segment");
    out
}

fn only_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().map(|e| e == "log").unwrap_or(false))
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1, "test assumes a single segment: {segs:?}");
    segs.pop().expect("one segment")
}

/// Truncating the segment at any byte boundary must recover exactly the
/// records that end at or before the cut — nothing partial, nothing
/// reordered, every survivor byte-identical.
#[test]
fn truncation_recovers_exactly_the_intact_prefix() {
    let mut rng = XorShift64Star::new(0xD15C_0DE5);
    for trial in 0..12 {
        let dir = test_dir("truncate", trial);
        let appended = fill_store(&dir, &mut rng, 24);
        let seg = only_segment(&dir);
        let full_len = std::fs::metadata(&seg).expect("metadata").len();
        let first_offset = appended[0].span.offset;
        // Cut somewhere in the record region (at or past the first
        // record's start, at most the full file).
        let cut = rng.range_u64(first_offset, full_len);
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open segment")
            .set_len(cut)
            .expect("truncate");

        let (_store, recovered, report) = PlanStore::open(StoreConfig::at(&dir)).expect("recover");
        let expected: Vec<&Appended> = appended
            .iter()
            .filter(|a| a.span.offset + a.span.len <= cut)
            .collect();
        assert_eq!(
            recovered.len(),
            expected.len(),
            "trial {trial}: cut at {cut} of {full_len}"
        );
        let by_key: HashMap<u128, _> = recovered.iter().map(|r| (r.key, r)).collect();
        for a in &expected {
            let r = by_key.get(&a.key).expect("intact record recovered");
            assert_eq!(&r.encoding[..], &a.encoding[..], "encoding bytes differ");
            assert_eq!(&*r.plan, a.plan, "plan bytes differ");
        }
        // A mid-record cut is a torn tail: recovery truncates it away.
        if expected.len() < appended.len()
            && cut
                > expected
                    .iter()
                    .map(|a| a.span.offset + a.span.len)
                    .max()
                    .unwrap_or(first_offset)
        {
            assert!(report.truncated_bytes > 0, "torn tail must be truncated");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Flipping one byte inside a record must never surface wrong bytes:
/// recovery stops at the corruption, and everything before it survives
/// byte-identically.
#[test]
fn corruption_never_serves_divergent_bytes() {
    let mut rng = XorShift64Star::new(0xBAD_C0FFE);
    for trial in 0..12 {
        let dir = test_dir("corrupt", trial);
        let appended = fill_store(&dir, &mut rng, 24);
        let seg = only_segment(&dir);
        let mut bytes = std::fs::read(&seg).expect("read segment");
        let first_offset = appended[0].span.offset as usize;
        let victim = rng.range_u64(first_offset as u64, bytes.len() as u64 - 1) as usize;
        bytes[victim] ^= 0x40;
        std::fs::write(&seg, &bytes).expect("write corrupted");

        let (_store, recovered, _report) = PlanStore::open(StoreConfig::at(&dir)).expect("recover");
        let by_key: HashMap<u128, &Appended> = appended.iter().map(|a| (a.key, a)).collect();
        // Every recovered record must match what was appended — a
        // corrupted record may be *dropped* but never *altered*.
        for r in &recovered {
            let a = by_key.get(&r.key).expect("recovered key was appended");
            assert_eq!(&r.encoding[..], &a.encoding[..], "encoding bytes differ");
            assert_eq!(&*r.plan, a.plan, "plan bytes differ");
        }
        // Records strictly before the corrupted byte must all survive
        // (the scan stops at the first bad record, not before it).
        let intact_before = appended
            .iter()
            .filter(|a| (a.span.offset + a.span.len) as usize <= victim)
            .count();
        assert!(
            recovered.len() >= intact_before,
            "trial {trial}: lost records before the corruption at {victim}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Compaction after deduplicated re-appends keeps every live record.
#[test]
fn compaction_preserves_every_live_record() {
    let mut rng = XorShift64Star::new(0xC0_FFEE);
    let dir = test_dir("compact", 0);
    let appended = fill_store(&dir, &mut rng, 32);
    {
        let (mut store, recovered, _) = PlanStore::open(StoreConfig::at(&dir)).expect("open");
        assert_eq!(recovered.len(), appended.len());
        store.compact().expect("compact");
        assert_eq!(store.len(), appended.len());
    }
    let (_store, recovered, _) = PlanStore::open(StoreConfig::at(&dir)).expect("reopen");
    assert_eq!(recovered.len(), appended.len());
    let by_key: HashMap<u128, _> = recovered.iter().map(|r| (r.key, r)).collect();
    for a in &appended {
        let r = by_key.get(&a.key).expect("record survives compaction");
        assert_eq!(&*r.plan, a.plan);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Assay `i` (mirrors the stress test): distinct ratios → distinct key.
fn assay(i: usize) -> Dag {
    let mut d = Dag::new();
    let a = d.add_input("A");
    let b = d.add_input("B");
    let m = d
        .add_mix("m", &[(a, 1), (b, i as u64 + 2)], 10)
        .expect("valid mix");
    d.add_process("s", "sense.OD", m);
    d
}

/// End-to-end restart: a service backed by the store is killed
/// (dropped) and reopened; the rehydrated cache must serve every plan
/// byte-identical to the cold compile **without recompiling anything**.
#[test]
fn restarted_service_serves_identical_bytes_without_recompiling() {
    const ASSAYS: usize = 12;
    let dir = test_dir("restart", 0);
    let machine = Machine::paper_default();
    let weights = HashMap::new();

    let cold: Vec<(u128, Arc<str>)> = {
        let svc = Service::new(ServiceConfig {
            store: Some(StoreConfig::at(&dir)),
            ..ServiceConfig::default()
        });
        (0..ASSAYS)
            .map(|i| {
                let served = svc
                    .submit_dag(&assay(i), &weights, &machine, None)
                    .expect("cold compile");
                (served.key, served.plan)
            })
            .collect()
        // svc dropped here: the "kill".
    };

    let (obs, sink) = Obs::recording();
    let svc = Service::try_new(ServiceConfig {
        store: Some(StoreConfig::at(&dir)),
        obs,
        ..ServiceConfig::default()
    })
    .expect("reopen store");
    for (i, (key, plan)) in cold.iter().enumerate() {
        let served = svc
            .submit_dag(&assay(i), &weights, &machine, None)
            .expect("warm-after-restart");
        assert_eq!(served.key, *key);
        assert_eq!(served.plan, *plan, "restart broke byte-identity");
        // Key-addressed lookups hit the rehydrated cache too.
        assert_eq!(svc.submit_key(*key).expect("by key").plan, *plan);
    }
    assert_eq!(
        sink.counter("serve.plan.compiles"),
        0,
        "rehydrated hits must not recompile"
    );
    assert_eq!(sink.counter("serve.store.rehydrated"), ASSAYS as u64);
    drop(svc);
    std::fs::remove_dir_all(&dir).ok();
}
