//! Regression tests for the three front-door bugs: the
//! `deadline_ms`-overflow panic, the accept loop dying on transient
//! errors, and unbounded request lines.
//!
//! Each test exercises the hostile input that used to take the service
//! (or one of its threads) down, then proves the connection/service
//! still serves normal traffic afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use aqua_serve::json::{self, quote, Value};
use aqua_serve::server::{accept_error_is_fatal, serve_lines, spawn_tcp};
use aqua_serve::{ServeError, Service, ServiceConfig};
use aqua_volume::Machine;

const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

fn parse(line: &str) -> Value {
    json::parse(line).expect("response must be valid JSON")
}

/// Bug 1: `deadline_ms: 18446744073709551615` used to reach
/// `Instant::now() + Duration::from_millis(u64::MAX)`, which panics and
/// kills the submitting thread. Now it's a typed `deadline_too_large`
/// rejection and the service keeps serving.
#[test]
fn huge_wire_deadline_is_rejected_not_a_panic() {
    let svc = Service::new(ServiceConfig::default());
    let resp = svc.handle_line(&format!(
        "{{\"id\":1,\"src\":{},\"deadline_ms\":18446744073709551615}}",
        quote(TINY)
    ));
    let v = parse(&resp);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        v.get("error").and_then(Value::as_str),
        Some("deadline_too_large")
    );

    // i64::MAX ms is also beyond any sane cap.
    let resp = svc.handle_line(&format!(
        "{{\"id\":2,\"src\":{},\"deadline_ms\":9223372036854775807}}",
        quote(TINY)
    ));
    assert_eq!(
        parse(&resp).get("error").and_then(Value::as_str),
        Some("deadline_too_large")
    );

    // Negative and fractional deadlines stay bad_request.
    for bad in ["-1", "1.5"] {
        let resp = svc.handle_line(&format!(
            "{{\"id\":3,\"src\":{},\"deadline_ms\":{bad}}}",
            quote(TINY)
        ));
        assert_eq!(
            parse(&resp).get("error").and_then(Value::as_str),
            Some("bad_request"),
            "deadline_ms={bad}"
        );
    }

    // The service is still alive and compiles normally.
    let resp = svc.handle_line(&format!("{{\"id\":4,\"src\":{}}}", quote(TINY)));
    assert_eq!(parse(&resp).get("ok"), Some(&Value::Bool(true)));
}

/// The programmatic API clamps instead of rejecting: a caller-supplied
/// `Duration` beyond the cap must neither panic nor error.
#[test]
fn huge_programmatic_deadline_is_clamped() {
    let svc = Service::new(ServiceConfig::default());
    let machine = Machine::paper_default();
    let served = svc
        .submit_src(
            TINY,
            &machine,
            Some(std::time::Duration::from_millis(u64::MAX)),
        )
        .expect("clamped deadline must serve");
    assert!(!served.plan.is_empty());
}

/// Bug 2: one transient `accept(2)` error used to return from the
/// accept loop, permanently killing the listener. The classification
/// is unit-tested in `server.rs`; here we prove the listener survives
/// rude connection churn (immediate RST-ish drops) and still serves.
#[test]
fn listener_survives_connection_churn() {
    let svc = Arc::new(Service::new(ServiceConfig::default()));
    let (addr, _accept) = spawn_tcp(Arc::clone(&svc), "127.0.0.1:0").expect("bind");

    for _ in 0..32 {
        // Connect and slam the door: drop without reading or writing.
        let conn = TcpStream::connect(addr).expect("connect");
        drop(conn);
    }

    // Transient errors must be retried...
    assert!(!accept_error_is_fatal(&std::io::Error::from_raw_os_error(
        103 // ECONNABORTED
    )));
    assert!(!accept_error_is_fatal(&std::io::Error::from_raw_os_error(
        24 // EMFILE
    )));

    // ...and the listener still answers a clean request afterwards.
    let mut conn = TcpStream::connect(addr).expect("listener must still accept");
    let req = format!("{{\"id\":\"after\",\"src\":{}}}\n", quote(TINY));
    conn.write_all(req.as_bytes()).expect("write");
    conn.shutdown(std::net::Shutdown::Write).expect("shutdown");
    let mut line = String::new();
    BufReader::new(conn).read_line(&mut line).expect("read");
    assert!(
        line.starts_with("{\"id\":\"after\",\"ok\":true,"),
        "listener dead after churn: {line}"
    );
}

/// Bug 3a: an over-long request line used to be buffered without bound
/// (OOM lever). Now it yields a typed `too_large` response, memory use
/// stays capped, and the *next* line on the connection still works.
#[test]
fn oversized_line_gets_too_large_and_stream_resyncs() {
    let svc = Service::new(ServiceConfig {
        max_line_bytes: 256,
        ..ServiceConfig::default()
    });

    // ~4 KiB of garbage with no interior newline, then a valid command.
    let mut input = vec![b'x'; 4096];
    input.push(b'\n');
    input.extend_from_slice(b"{\"id\":2,\"cmd\":\"stats\"}\n");
    let mut out = Vec::new();
    serve_lines(&svc, input.as_slice(), &mut out).expect("serve");
    let text = String::from_utf8(out).expect("utf8 responses");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    let first = parse(lines[0]);
    assert_eq!(first.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        first.get("error").and_then(Value::as_str),
        Some("too_large")
    );
    let second = parse(lines[1]);
    assert_eq!(second.get("ok"), Some(&Value::Bool(true)), "{text}");
}

/// Bug 3b: invalid UTF-8 used to kill the whole connection via the
/// `lines()` error path. Now it's a `bad_request` for that line only.
#[test]
fn invalid_utf8_line_gets_bad_request_and_connection_continues() {
    let svc = Service::new(ServiceConfig::default());
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(b"{\"id\":1,\"cmd\":\"stats\"\xff\xfe}\n");
    input.extend_from_slice(b"{\"id\":2,\"cmd\":\"stats\"}\n");
    let mut out = Vec::new();
    serve_lines(&svc, input.as_slice(), &mut out).expect("serve");
    let text = String::from_utf8(out).expect("utf8 responses");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    let first = parse(lines[0]);
    assert_eq!(first.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        first.get("error").and_then(Value::as_str),
        Some("bad_request")
    );
    assert_eq!(parse(lines[1]).get("ok"), Some(&Value::Bool(true)));
}

/// Tenant quotas shed over-limit tenants with the typed `shedding`
/// error on the wire, without touching other tenants.
#[test]
fn tenant_quota_sheds_on_the_wire() {
    let svc = Service::new(ServiceConfig {
        tenant_max_inflight: 0, // every miss sheds
        ..ServiceConfig::default()
    });
    let resp = svc.handle_line(&format!(
        "{{\"id\":1,\"src\":{},\"tenant\":\"noisy\"}}",
        quote(TINY)
    ));
    let v = parse(&resp);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(v.get("error").and_then(Value::as_str), Some("shedding"));
    assert_eq!(svc.shed_count(), 1);

    // Direct API agrees.
    let machine = Machine::paper_default();
    let canon = Service::canon_src(TINY, &machine).expect("canon");
    assert_eq!(
        svc.submit_canon_tenant(canon, machine, None, "noisy")
            .unwrap_err(),
        ServeError::Shedding
    );
}
