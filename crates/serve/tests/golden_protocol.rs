//! Golden protocol fixtures: full response lines pinned byte-for-byte.
//!
//! These tests freeze the wire format — field order, error tags,
//! message wording, key hex. If one fails, either the change is an
//! accidental protocol break (fix the code) or a deliberate revision
//! (update the fixtures AND `canon::KEY_VERSION` / the protocol docs
//! together).

use aqua_serve::{Service, ServiceConfig};

const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

/// The TINY assay's content-addressed key under the paper-default
/// machine. Changes only when the canonicalization scheme changes.
const TINY_KEY: &str = "4bf1ce8d7064e6237733a3d629fcde3b";

/// The TINY assay's compiled plan, shared by the `src` and `key`
/// fixtures below.
const TINY_PLAN: &str = "{\"status\":\"solved\",\"method\":\"DAGSolve\",\
\"nodes\":[\"input\",\"input\",\"mix:10\",\"process:sense.OD\"],\
\"edges\":[[0,2,\"4/5\",\"80\"],[1,2,\"1/5\",\"20\"],[2,3,\"1\",\"100\"]],\
\"node_volumes_nl\":[\"80\",\"20\",\"100\",\"100\"],\
\"ivol_nl\":[\"80\",\"20\",\"100\",\"100\"],\
\"log\":[\"round 0: DAGSolve succeeded\"]}";

fn service() -> Service {
    Service::new(ServiceConfig::default())
}

fn src_request(id: &str, extra: &str) -> String {
    format!(
        "{{\"id\":{id},\"src\":{}{extra}}}",
        aqua_serve::json::quote(TINY)
    )
}

#[test]
fn golden_success_via_src() {
    let got = service().handle_line(&src_request("1", ""));
    let want = format!(
        "{{\"id\":1,\"ok\":true,\"key\":\"{TINY_KEY}\",\
\"names\":[\"B\",\"A\",\"m\",\"Result[1]\"],\"plan\":{TINY_PLAN}}}"
    );
    assert_eq!(got, want);
}

#[test]
fn golden_success_via_key() {
    // Warm the cache through the src path, then fetch by key: same
    // plan bytes, no `names` array (a bare key has no request-side
    // spelling to map back to).
    let svc = service();
    svc.handle_line(&src_request("1", ""));
    let got = svc.handle_line(&format!("{{\"id\":2,\"key\":\"{TINY_KEY}\"}}"));
    let want = format!("{{\"id\":2,\"ok\":true,\"key\":\"{TINY_KEY}\",\"plan\":{TINY_PLAN}}}");
    assert_eq!(got, want);
}

#[test]
fn golden_stats() {
    let svc = service();
    svc.handle_line(&src_request("1", ""));
    svc.handle_line(&src_request("1", ""));
    svc.handle_line(&format!("{{\"id\":2,\"key\":\"{TINY_KEY}\"}}"));
    let got = svc.handle_line("{\"id\":3,\"cmd\":\"stats\"}");
    // The cold request probes twice (fast path, then the re-probe
    // under the single-flight lock), hence misses=2 for one compile.
    let want = "{\"id\":3,\"ok\":true,\"stats\":{\"cached_plans\":1,\
\"hits\":2,\"misses\":2,\"inserts\":1,\"evictions\":0,\"collisions\":0,\
\"singleflight_dedups\":0,\"timeouts\":0,\"overloads\":0,\"sheds\":0}}";
    assert_eq!(got, want);
}

#[test]
fn golden_malformed_json() {
    let got = service().handle_line("{oops");
    assert_eq!(
        got,
        "{\"id\":null,\"ok\":false,\"error\":\"bad_request\",\
\"message\":\"bad request: invalid JSON: expected member name at byte 1\"}"
    );
}

#[test]
fn golden_missing_payload() {
    let got = service().handle_line("{}");
    assert_eq!(
        got,
        "{\"id\":null,\"ok\":false,\"error\":\"bad_request\",\
\"message\":\"bad request: request needs `src`, `key`, or `cmd`\"}"
    );
}

#[test]
fn golden_unknown_key() {
    let got = service().handle_line(&format!("{{\"id\":4,\"key\":\"{}\"}}", "0".repeat(32)));
    assert_eq!(
        got,
        "{\"id\":4,\"ok\":false,\"error\":\"unknown_key\",\
\"message\":\"no cached plan under this key\"}"
    );
}

#[test]
fn golden_bad_key_format() {
    let got = service().handle_line("{\"id\":5,\"key\":\"zz\"}");
    assert_eq!(
        got,
        "{\"id\":5,\"ok\":false,\"error\":\"bad_request\",\
\"message\":\"bad request: `key` must be a 32-hex-digit string\"}"
    );
}

#[test]
fn golden_overloaded() {
    let svc = Service::new(ServiceConfig {
        queue_capacity: 0,
        ..ServiceConfig::default()
    });
    let got = svc.handle_line(&src_request("\"ov\"", ""));
    assert_eq!(
        got,
        "{\"id\":\"ov\",\"ok\":false,\"error\":\"overloaded\",\
\"message\":\"admission queue is full\"}"
    );
}

#[test]
fn golden_timeout() {
    let got = service().handle_line(&src_request("\"to\"", ",\"deadline_ms\":0"));
    assert_eq!(
        got,
        "{\"id\":\"to\",\"ok\":false,\"error\":\"timeout\",\
\"message\":\"deadline expired before the plan was ready\"}"
    );
}

#[test]
fn golden_compile_error() {
    let got = service().handle_line("{\"id\":6,\"src\":\"not an assay\"}");
    let parsed = aqua_serve::json::parse(&got).expect("valid JSON response");
    assert_eq!(parsed.get("id").and_then(|v| v.as_int()), Some(6));
    assert_eq!(
        parsed.get("error").and_then(|v| v.as_str()),
        Some("bad_request"),
        "{got}"
    );
    let msg = parsed
        .get("message")
        .and_then(|v| v.as_str())
        .expect("has message");
    assert!(msg.starts_with("bad request:"), "{msg}");
}
