//! Push-mode session protocol: register / edit / close over
//! `handle_line`, with the incremental plans checked byte-for-byte
//! against cold compiles of the edited assay.

use std::collections::HashMap;

use aqua_serve::{apply_delta, compile_plan, Service, ServiceConfig};
use aqua_volume::Machine;

const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

const TINY_EDITED: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 9 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

fn service() -> Service {
    Service::new(ServiceConfig::default())
}

/// Extracts the raw bytes of a response's *last* JSON member (`plan`
/// or `delta` — both are rendered last on their respective lines).
fn last_member<'a>(line: &'a str, name: &str) -> &'a str {
    let marker = format!(",\"{name}\":");
    let at = line.find(&marker).unwrap_or_else(|| {
        panic!("response has no `{name}` member: {line}");
    });
    &line[at + marker.len()..line.len() - 1]
}

fn register(svc: &Service, src: &str) -> (String, String) {
    let line = svc.handle_line(&format!(
        "{{\"id\":1,\"cmd\":\"session.register\",\"src\":{}}}",
        aqua_serve::json::quote(src)
    ));
    assert!(line.contains("\"ok\":true"), "register failed: {line}");
    let v = aqua_serve::json::parse(&line).unwrap();
    let sid = v.get("session").unwrap().as_str().unwrap().to_owned();
    let plan = last_member(&line, "plan").to_owned();
    (sid, plan)
}

fn cold_plan(src: &str, machine_json: &str) -> String {
    let svc = service();
    let line = svc.handle_line(&format!(
        "{{\"id\":9,\"src\":{}{machine_json}}}",
        aqua_serve::json::quote(src)
    ));
    assert!(line.contains("\"ok\":true"), "cold compile failed: {line}");
    last_member(&line, "plan").to_owned()
}

#[test]
fn ratio_edit_is_incremental_and_matches_cold_compile() {
    let svc = service();
    let (sid, plan) = register(&svc, TINY);

    let line = svc.handle_line(&format!(
        "{{\"id\":2,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"m\",\"parts\":[[\"A\",1],[\"B\",9]]}}}}}}"
    ));
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"incremental\":true"), "{line}");
    let delta = last_member(&line, "delta");
    let incremental = apply_delta(&plan, delta).expect("delta applies");
    assert_eq!(incremental, cold_plan(TINY_EDITED, ""));

    // The edited plan was also published under its content key.
    let v = aqua_serve::json::parse(&line).unwrap();
    let key = v.get("key").unwrap().as_str().unwrap().to_owned();
    let by_key = svc.handle_line(&format!("{{\"id\":3,\"key\":\"{key}\"}}"));
    assert_eq!(last_member(&by_key, "plan"), incremental);
}

#[test]
fn noop_edit_returns_empty_delta_and_same_key() {
    let svc = service();
    let (sid, _) = register(&svc, TINY);
    let line = svc.handle_line(&format!(
        "{{\"id\":2,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"m\",\"parts\":[[\"A\",1],[\"B\",4]]}}}}}}"
    ));
    assert!(line.contains("\"incremental\":true"), "{line}");
    assert_eq!(last_member(&line, "delta"), "{\"replace\":{}}");
}

#[test]
fn machine_edit_is_a_typed_full_recompile() {
    let svc = service();
    let (sid, _) = register(&svc, TINY);
    let line = svc.handle_line(&format!(
        "{{\"id\":2,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_machine\":{{\"max_capacity_nl\":200}}}}}}"
    ));
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"incremental\":false"), "{line}");
    assert!(line.contains("\"cause\":\"machine_parameter\""), "{line}");
    let delta = last_member(&line, "delta");
    let fresh = delta
        .strip_prefix("{\"full\":")
        .and_then(|d| d.strip_suffix('}'))
        .expect("full recompile carries the fresh plan");
    assert_eq!(
        fresh,
        cold_plan(TINY, ",\"machine\":{\"max_capacity_nl\":200}")
    );

    // The session keeps working (and keeps the new machine): a ratio
    // edit replays against the freshly retained trace.
    let line = svc.handle_line(&format!(
        "{{\"id\":3,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"m\",\"parts\":[[\"A\",1],[\"B\",9]]}}}}}}"
    ));
    assert!(line.contains("\"incremental\":true"), "{line}");
    let edited = apply_delta(fresh, last_member(&line, "delta")).unwrap();
    assert_eq!(
        edited,
        cold_plan(TINY_EDITED, ",\"machine\":{\"max_capacity_nl\":200}")
    );
}

#[test]
fn cache_eviction_never_degrades_a_session() {
    // Satellite regression: the session pins its own canonical form,
    // plan, and trace — evicting its plan from the (tiny) shared LRU
    // must not force the edit down the full-recompile path.
    let config = ServiceConfig {
        cache_capacity: 1,
        worker_shards: 1,
        ..ServiceConfig::default()
    };
    let svc = Service::new(config);
    let (sid, plan) = register(&svc, TINY);

    // Thrash the single-slot cache with other canonical forms.
    for parts in [7, 11, 13, 17] {
        let other = format!(
            "
ASSAY other START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : {parts} FOR 10;
SENSE OPTICAL it INTO Result[1];
END
"
        );
        let line = svc.handle_line(&format!(
            "{{\"id\":5,\"src\":{}}}",
            aqua_serve::json::quote(&other)
        ));
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    let line = svc.handle_line(&format!(
        "{{\"id\":6,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"m\",\"parts\":[[\"A\",1],[\"B\",9]]}}}}}}"
    ));
    assert!(
        line.contains("\"incremental\":true"),
        "eviction forced a recompile: {line}"
    );
    let edited = apply_delta(&plan, last_member(&line, "delta")).unwrap();
    assert_eq!(edited, cold_plan(TINY_EDITED, ""));
}

#[test]
fn weight_edit_matches_direct_compile() {
    let svc = service();
    let (sid, plan) = register(&svc, TINY);
    let line = svc.handle_line(&format!(
        "{{\"id\":2,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_output_volume\":{{\"node\":\"Result[1]\",\"weight\":3}}}}}}"
    ));
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"incremental\":true"), "{line}");
    let edited = apply_delta(&plan, last_member(&line, "delta")).unwrap();

    // Oracle: compile the lowered DAG with the weight applied directly.
    let machine = Machine::paper_default();
    let flat = aqua_lang::compile_to_flat(TINY).unwrap();
    let (dag, map) = aqua_compiler::lower_to_dag(&flat).unwrap();
    let mut weights: HashMap<_, _> = map.output_weights.clone();
    weights.insert(dag.find_node("Result[1]").unwrap(), 3);
    let canon = aqua_serve::canonicalize(&dag, &weights, &machine).unwrap();
    let cold = compile_plan(&canon, &machine, &aqua_obs::Obs::off());
    assert_eq!(edited, cold);
}

#[test]
fn structural_edits_recompile_cold() {
    let svc = service();
    let (sid, _) = register(&svc, TINY);

    // Add a second sensing step off the mix.
    let line = svc.handle_line(&format!(
        "{{\"id\":2,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"add_node\":{{\"name\":\"s2\",\
         \"process\":{{\"op\":\"sense.OD\",\"from\":\"m\"}}}}}}}}"
    ));
    assert!(line.contains("\"incremental\":false"), "{line}");
    assert!(line.contains("\"cause\":\"structural\""), "{line}");
    let delta = last_member(&line, "delta");
    let added = delta
        .strip_prefix("{\"full\":")
        .and_then(|d| d.strip_suffix('}'))
        .unwrap();

    let machine = Machine::paper_default();
    let flat = aqua_lang::compile_to_flat(TINY).unwrap();
    let (mut dag, map) = aqua_compiler::lower_to_dag(&flat).unwrap();
    let m = dag.find_node("m").unwrap();
    dag.add_process("s2", "sense.OD", m);
    let canon = aqua_serve::canonicalize(&dag, &map.output_weights, &machine).unwrap();
    let cold = compile_plan(&canon, &machine, &aqua_obs::Obs::off());
    assert_eq!(added, cold);

    // Remove it again: back to the original canonical form.
    let line = svc.handle_line(&format!(
        "{{\"id\":3,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"remove_node\":{{\"node\":\"s2\"}}}}}}"
    ));
    assert!(line.contains("\"cause\":\"structural\""), "{line}");
    let removed = last_member(&line, "delta")
        .strip_prefix("{\"full\":")
        .and_then(|d| d.strip_suffix('}'))
        .unwrap()
        .to_owned();
    assert_eq!(removed, cold_plan(TINY, ""));

    // Removing a node with consumers is rejected, session intact.
    let line = svc.handle_line(&format!(
        "{{\"id\":4,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"remove_node\":{{\"node\":\"m\"}}}}}}"
    ));
    assert!(line.contains("\"error\":\"bad_request\""), "{line}");
    let line = svc.handle_line(&format!(
        "{{\"id\":5,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"m\",\"parts\":[[\"A\",1],[\"B\",9]]}}}}}}"
    ));
    assert!(line.contains("\"incremental\":true"), "{line}");
}

#[test]
fn session_quota_and_lifecycle() {
    let config = ServiceConfig {
        tenant_max_sessions: 1,
        ..ServiceConfig::default()
    };
    let svc = Service::new(config);
    let (sid, _) = register(&svc, TINY);
    assert_eq!(svc.session_count(), 1);

    let line = svc.handle_line(&format!(
        "{{\"id\":2,\"cmd\":\"session.register\",\"src\":{}}}",
        aqua_serve::json::quote(TINY)
    ));
    assert!(line.contains("\"error\":\"session_quota\""), "{line}");

    // A different tenant has its own quota.
    let line = svc.handle_line(&format!(
        "{{\"id\":3,\"cmd\":\"session.register\",\"tenant\":\"other\",\"src\":{}}}",
        aqua_serve::json::quote(TINY)
    ));
    assert!(line.contains("\"ok\":true"), "{line}");

    // Tenants cannot touch each other's sessions.
    let line = svc.handle_line(&format!(
        "{{\"id\":4,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\"tenant\":\"other\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"m\",\"parts\":[[\"A\",1],[\"B\",9]]}}}}}}"
    ));
    assert!(line.contains("\"error\":\"unknown_session\""), "{line}");

    let line = svc.handle_line(&format!(
        "{{\"id\":5,\"cmd\":\"session.close\",\"session\":\"{sid}\"}}"
    ));
    assert_eq!(
        line,
        format!("{{\"id\":5,\"ok\":true,\"closed\":\"{sid}\"}}")
    );
    let line = svc.handle_line(&format!(
        "{{\"id\":6,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"m\",\"parts\":[[\"A\",1],[\"B\",9]]}}}}}}"
    ));
    assert!(line.contains("\"error\":\"unknown_session\""), "{line}");

    // The freed slot can be re-registered.
    let line = svc.handle_line(&format!(
        "{{\"id\":7,\"cmd\":\"session.register\",\"src\":{}}}",
        aqua_serve::json::quote(TINY)
    ));
    assert!(line.contains("\"ok\":true"), "{line}");
}

#[test]
fn blocked_assays_replay_too() {
    // Enzyme10 exhausts reservoirs under the paper machine (Shape B):
    // a ratio edit on a mild dilution must still replay incrementally
    // and match the cold compile of the edited assay byte-for-byte.
    let src = aqua_assays::enzyme::source_n(10);
    let svc = service();
    let (sid, plan) = register(&svc, &src);
    assert!(plan.contains("\"status\":\"resources_exceeded\""), "{plan}");

    let line = svc.handle_line(&format!(
        "{{\"id\":2,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":\"Diluted_Inhibitor[1]\",\
         \"parts\":[[\"inhibitor\",1],[\"diluent\",2]]}}}}}}"
    ));
    assert!(line.contains("\"incremental\":true"), "{line}");
    let edited = apply_delta(&plan, last_member(&line, "delta")).unwrap();

    let cold = {
        let machine = Machine::paper_default();
        let flat = aqua_lang::compile_to_flat(&src).unwrap();
        let (mut dag, map) = aqua_compiler::lower_to_dag(&flat).unwrap();
        let node = dag.find_node("Diluted_Inhibitor[1]").unwrap();
        let inhibitor = dag.find_node("inhibitor").unwrap();
        let diluent = dag.find_node("diluent").unwrap();
        aqua_dag::set_mix_ratio(&mut dag, node, &[(inhibitor, 1), (diluent, 2)]).unwrap();
        let canon = aqua_serve::canonicalize(&dag, &map.output_weights, &machine).unwrap();
        compile_plan(&canon, &machine, &aqua_obs::Obs::off())
    };
    assert_eq!(edited, cold);
}

#[test]
fn wire_errors_are_typed() {
    let svc = service();
    let line = svc.handle_line(
        "{\"id\":1,\"cmd\":\"session.edit\",\"session\":\"s99\",\
         \"edit\":{\"set_ratio\":{\"node\":\"m\",\"parts\":[[\"A\",1]]}}}",
    );
    assert!(line.contains("\"error\":\"unknown_session\""), "{line}");
    let line = svc.handle_line("{\"id\":2,\"cmd\":\"session.register\"}");
    assert!(line.contains("\"error\":\"bad_request\""), "{line}");
    let line = svc.handle_line("{\"id\":3,\"cmd\":\"session.edit\",\"session\":\"s1\"}");
    assert!(line.contains("\"error\":\"bad_request\""), "{line}");
}
