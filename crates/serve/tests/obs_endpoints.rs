//! Wire tests for the live obs endpoints (`obs.snapshot`, `obs.reset`).
//!
//! The acceptance bar is byte-for-byte: the `obs.snapshot` response
//! over the NDJSON wire must embed exactly the JSON a local
//! [`FleetSnapshot::to_json`] renders for the same aggregate state —
//! no re-ordering, no float drift, no timestamp skew.

use std::io::Cursor;
use std::sync::Arc;

use aqua_obs::fleet::FleetSink;
use aqua_obs::Obs;
use aqua_serve::server::serve_lines;
use aqua_serve::{Service, ServiceConfig};

fn service_with_fleet() -> (Service, Arc<FleetSink>) {
    let fleet = Arc::new(FleetSink::new());
    let svc = Service::new(ServiceConfig {
        fleet: Some(fleet.clone()),
        ..ServiceConfig::default()
    });
    (svc, fleet)
}

fn wire(svc: &Service, requests: &str) -> Vec<String> {
    let mut out = Vec::new();
    serve_lines(svc, Cursor::new(requests.as_bytes()), &mut out).expect("serve");
    String::from_utf8(out)
        .expect("utf8 responses")
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn snapshot_over_the_wire_matches_local_rendering_byte_for_byte() {
    let (svc, fleet) = service_with_fleet();
    // Populate the aggregator the way a replay fleet would: counters,
    // a histogram with enough spread to exercise quantiles, a span.
    let obs = Obs::with_sink(fleet.clone());
    obs.add("replay.runs", 12_345);
    obs.add("sim.faults", 67);
    for v in [1u64, 10, 100, 1_000, 10_000, 123_456_789] {
        obs.record("sim.instr_ns", v);
    }
    {
        let _span = obs.span("sim.run");
    }

    let local = fleet.snapshot().to_json();
    let responses = wire(&svc, "{\"id\":7,\"cmd\":\"obs.snapshot\"}\n");
    assert_eq!(responses.len(), 1);
    assert_eq!(
        responses[0],
        format!("{{\"id\":7,\"ok\":true,\"obs\":{local}}}"),
        "wire snapshot diverged from the local rendering"
    );
    // Idempotent: snapshotting twice renders identical bytes.
    let again = wire(&svc, "{\"id\":8,\"cmd\":\"obs.snapshot\"}\n");
    assert_eq!(
        again[0],
        format!("{{\"id\":8,\"ok\":true,\"obs\":{local}}}")
    );
}

#[test]
fn reset_clears_the_rollup_and_recording_resumes() {
    let (svc, fleet) = service_with_fleet();
    let obs = Obs::with_sink(fleet.clone());
    obs.add("replay.runs", 5);

    let responses = wire(
        &svc,
        "{\"id\":1,\"cmd\":\"obs.reset\"}\n{\"id\":2,\"cmd\":\"obs.snapshot\"}\n",
    );
    assert_eq!(responses[0], "{\"id\":1,\"ok\":true}");
    let empty = aqua_obs::fleet::FleetSnapshot::default().to_json();
    assert_eq!(
        responses[1],
        format!("{{\"id\":2,\"ok\":true,\"obs\":{empty}}}")
    );

    // Recording keeps working after a reset.
    obs.add("replay.runs", 3);
    assert_eq!(fleet.snapshot().counter("replay.runs"), 3);
}

#[test]
fn endpoints_without_a_fleet_are_a_typed_error() {
    let svc = Service::new(ServiceConfig::default());
    for cmd in ["obs.snapshot", "obs.reset"] {
        let responses = wire(&svc, &format!("{{\"id\":1,\"cmd\":\"{cmd}\"}}\n"));
        assert!(
            responses[0].contains("\"ok\":false") && responses[0].contains("bad_request"),
            "expected typed error for {cmd} without a fleet, got {}",
            responses[0]
        );
    }
}

#[test]
fn obs_endpoints_coexist_with_plan_requests() {
    let (svc, fleet) = service_with_fleet();
    let obs = Obs::with_sink(fleet.clone());
    obs.add("replay.runs", 1);
    let src = "ASSAY w START\nfluid A, B;\nMIX A AND B IN RATIOS 1 : 4 FOR 10;\nSENSE OPTICAL it INTO R;\nEND";
    let requests = format!(
        "{{\"id\":1,\"src\":{}}}\n{{\"id\":2,\"cmd\":\"obs.snapshot\"}}\n{{\"id\":3,\"cmd\":\"stats\"}}\n",
        aqua_serve::json::quote(src)
    );
    let responses = wire(&svc, &requests);
    assert_eq!(responses.len(), 3);
    assert!(responses[0].contains("\"ok\":true") && responses[0].contains("\"plan\""));
    assert!(responses[1].contains("\"obs\":{\"counters\":{\"replay.runs\":1}"));
    assert!(responses[2].contains("\"stats\""));
}
