//! Concurrency stress: 8 client threads × 200 mixed hot/cold requests
//! against one in-process service.
//!
//! Asserts (mirroring the PR 3 batch-determinism test):
//! * no deadlock (the test finishes; `scripts/ci.sh` adds a timeout
//!   guard);
//! * single-flight dedup — the solver runs exactly once per unique
//!   key, checked via the `serve.plan.compiles` Obs counter;
//! * every response is byte-identical to that key's cold compile;
//! * plans are deterministic across 1/2/8 solver worker threads.

use std::collections::HashMap;
use std::sync::Arc;

use aqua_dag::Dag;
use aqua_obs::Obs;
use aqua_rational::rng::XorShift64Star;
use aqua_serve::{canonicalize, Service, ServiceConfig};
use aqua_volume::Machine;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 200;
const UNIQUE_ASSAYS: usize = 25;

/// Assay `i`: a small mix chain whose ratios depend on `i`, so every
/// index canonicalizes to a distinct key and solves quickly.
fn assay(i: usize) -> Dag {
    let mut d = Dag::new();
    let a = d.add_input("A");
    let b = d.add_input("B");
    let m1 = d
        .add_mix("m1", &[(a, 1), (b, i as u64 + 2)], 10)
        .expect("valid mix");
    d.add_process("s1", "sense.OD", m1);
    let m2 = d
        .add_mix("m2", &[(a, 2 * i as u64 + 1), (b, 3)], 10)
        .expect("valid mix");
    d.add_process("s2", "sense.OD", m2);
    d
}

#[test]
fn stress_hot_cold_mix_is_deadlock_free_and_deduplicated() {
    let (obs, sink) = Obs::recording();
    let service = Arc::new(Service::new(ServiceConfig {
        obs,
        ..ServiceConfig::default()
    }));
    let machine = Machine::paper_default();
    let weights = HashMap::new();

    let assays: Vec<Dag> = (0..UNIQUE_ASSAYS).map(assay).collect();
    let keys: Vec<u128> = assays
        .iter()
        .map(|d| canonicalize(d, &weights, &machine).expect("canon").key)
        .collect();
    {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), UNIQUE_ASSAYS, "assays must be distinct");
    }

    // Fire the mixed workload: each client walks its own seeded
    // schedule over the assay set, so early requests race cold while
    // later ones are hot.
    let results: Vec<Vec<(usize, Arc<str>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = Arc::clone(&service);
                let assays = &assays;
                let machine = &machine;
                let weights = &weights;
                scope.spawn(move || {
                    let mut rng = XorShift64Star::new(0xC0FFEE + c as u64);
                    let mut got = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let i = rng.index(assays.len());
                        let served = service
                            .submit_dag(&assays[i], weights, machine, None)
                            .expect("request succeeds");
                        got.push((i, served.plan));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    // Single-flight: with a cache big enough to never evict, the solver
    // ran exactly once per unique key despite 1600 requests.
    assert_eq!(
        sink.counter("serve.plan.compiles"),
        UNIQUE_ASSAYS as u64,
        "solver must run exactly once per unique key"
    );
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(sink.counter("serve.cache.insert"), UNIQUE_ASSAYS as u64);
    assert!(
        sink.counter("serve.cache.hit") >= total - UNIQUE_ASSAYS as u64 * CLIENTS as u64,
        "most requests must be cache hits"
    );

    // Every response matches that assay's cold compile, regardless of
    // which thread got it or whether it was hot or cold.
    let fresh = Service::new(ServiceConfig::default());
    let cold: Vec<Arc<str>> = assays
        .iter()
        .map(|d| {
            fresh
                .submit_dag(d, &weights, &machine, None)
                .expect("cold compile")
                .plan
        })
        .collect();
    for (client, got) in results.iter().enumerate() {
        assert_eq!(got.len(), REQUESTS_PER_CLIENT);
        for (i, plan) in got {
            assert_eq!(
                plan, &cold[*i],
                "client {client} assay {i}: response differs from cold compile"
            );
        }
    }
}

#[test]
fn plans_are_deterministic_across_solver_thread_counts() {
    let machine = Machine::paper_default();
    let weights = HashMap::new();
    let assays: Vec<Dag> = (0..UNIQUE_ASSAYS).map(assay).collect();

    let plans_for = |threads: usize| -> Vec<Arc<str>> {
        let service = Service::new(ServiceConfig {
            solver_threads: threads,
            ..ServiceConfig::default()
        });
        assays
            .iter()
            .map(|d| {
                service
                    .submit_dag(d, &weights, &machine, None)
                    .expect("compiles")
                    .plan
            })
            .collect()
    };

    let baseline = plans_for(1);
    for threads in [2usize, 8] {
        let run = plans_for(threads);
        for (i, (a, b)) in baseline.iter().zip(&run).enumerate() {
            assert_eq!(a, b, "assay {i} differs between 1 and {threads} threads");
        }
    }
}
