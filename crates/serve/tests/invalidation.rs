//! Cache invalidation under machine-spec changes.
//!
//! Changing ANY `Machine` field (least count, mixer capacity, unit
//! inventory) must change the cache key, so a plan compiled for one
//! machine is never served for another. The key derivation folds the
//! full spec into the canonical encoding (see `canon`); these tests
//! pin the end-to-end behavior through the service.

use std::collections::HashMap;

use aqua_dag::Dag;
use aqua_rational::Ratio;
use aqua_serve::{canonicalize, Service, ServiceConfig};
use aqua_volume::Machine;

/// An assay whose plan visibly depends on the machine's least count
/// (the 1:9 mix dispenses 1/10 shares, right at the default least
/// count's granularity).
fn sensitive_assay() -> Dag {
    let mut d = Dag::new();
    let a = d.add_input("A");
    let b = d.add_input("B");
    let m = d.add_mix("m", &[(a, 1), (b, 9)], 10).expect("valid mix");
    d.add_process("s", "sense.OD", m);
    d
}

fn machine_variants() -> Vec<(&'static str, Machine)> {
    let base = Machine::paper_default();
    vec![
        (
            "capacity 50nl",
            Machine::new(Ratio::from_int(50), base.least_count_nl()).expect("valid"),
        ),
        (
            "least count 1/5nl",
            Machine::new(base.max_capacity_nl(), Ratio::new(1, 5).expect("nonzero"))
                .expect("valid"),
        ),
        ("reservoirs 4", base.clone().with_reservoirs(4)),
        ("input ports 2", base.clone().with_input_ports(2)),
        ("mixers 1", {
            let mut m = base.clone();
            m.mixers = 1;
            m
        }),
        ("heaters 7", {
            let mut m = base.clone();
            m.heaters = 7;
            m
        }),
        ("separators 9", {
            let mut m = base.clone();
            m.separators = 9;
            m
        }),
        ("sensors 5", {
            let mut m = base.clone();
            m.sensors = 5;
            m
        }),
    ]
}

#[test]
fn every_machine_field_changes_the_cache_key() {
    let dag = sensitive_assay();
    let weights = HashMap::new();
    let base_key = canonicalize(&dag, &weights, &Machine::paper_default())
        .expect("canon")
        .key;
    for (what, machine) in machine_variants() {
        let key = canonicalize(&dag, &weights, &machine).expect("canon").key;
        assert_ne!(key, base_key, "changing {what} did not change the key");
    }
}

#[test]
fn stale_plan_is_never_served_after_spec_change() {
    // Prime the cache with machine A's plan, then request the same
    // assay for machine B: the response must be B's cold compile, not
    // A's cached plan.
    let dag = sensitive_assay();
    let weights = HashMap::new();
    let machine_a = Machine::paper_default();
    // Halving the capacity halves every solved volume, so B's plan must
    // differ in content, not just key.
    let machine_b = Machine::new(Ratio::from_int(50), machine_a.least_count_nl()).expect("valid");

    let service = Service::new(ServiceConfig::default());
    let plan_a = service
        .submit_dag(&dag, &weights, &machine_a, None)
        .expect("compiles for A");
    let plan_b = service
        .submit_dag(&dag, &weights, &machine_b, None)
        .expect("compiles for B");
    assert_ne!(plan_a.key, plan_b.key, "spec change must change the key");
    assert_ne!(
        plan_a.plan, plan_b.plan,
        "a halved capacity must visibly change this plan"
    );

    let fresh = Service::new(ServiceConfig::default());
    let cold_b = fresh
        .submit_dag(&dag, &weights, &machine_b, None)
        .expect("cold compiles for B");
    assert_eq!(
        plan_b.plan, cold_b.plan,
        "B's response through the warm service must equal B's cold compile"
    );

    // And A's entry is still intact (no cross-contamination).
    let again_a = service
        .submit_dag(&dag, &weights, &machine_a, None)
        .expect("still cached for A");
    assert_eq!(again_a.plan, plan_a.plan);
}

#[test]
fn protocol_machine_overrides_are_isolated_per_request() {
    // The same `src` with different machine overrides must produce
    // different keys through the wire protocol too.
    let src = "
ASSAY iso START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 9 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";
    let service = Service::new(ServiceConfig::default());
    let quoted = aqua_serve::json::quote(src);
    let base = service.handle_line(&format!("{{\"id\":1,\"src\":{quoted}}}"));
    let coarse = service.handle_line(&format!(
        "{{\"id\":2,\"src\":{quoted},\"machine\":{{\"least_count_nl\":\"1/2\"}}}}"
    ));
    let key_of = |resp: &str| {
        aqua_serve::json::parse(resp)
            .expect("valid response")
            .get("key")
            .and_then(|k| k.as_str().map(str::to_owned))
            .expect("has key")
    };
    assert_ne!(key_of(&base), key_of(&coarse));
    // Replaying the base request still returns the base plan.
    let replay = service.handle_line(&format!("{{\"id\":3,\"src\":{quoted}}}"));
    assert_eq!(key_of(&base), key_of(&replay));
}
