//! The disk-backed content-addressed plan store.
//!
//! Warm state should survive a process restart: a fleet worker that
//! crashes and comes back must serve the same byte-identical plans it
//! served before without recompiling its whole working set. The store
//! is an append-only **write-ahead segment log** of
//! `(key, canonical encoding, plan bytes)` records plus an in-memory
//! index:
//!
//! * **Append-only segments** — records are only ever appended to the
//!   active segment (`seg-NNNNNN.log`); when it passes
//!   [`StoreConfig::segment_bytes`] a new segment is rotated in. No
//!   record is ever rewritten in place, so a crash can only damage the
//!   tail of the newest segment.
//! * **CRC-guarded records** — every record carries a CRC-32 over its
//!   lengths, key, encoding, and plan bytes. A record that fails its
//!   CRC (or whose declared lengths run past the file) is *torn*:
//!   recovery stops scanning that segment at the record's start.
//! * **Torn-tail truncation** — on [`PlanStore::open`] the tail of the
//!   last segment is physically truncated back to the last intact
//!   record, so a half-written record can never shadow later appends.
//! * **Version fencing** — each segment leads with a header embedding
//!   `crate::canon::KEY_VERSION`. A segment written under another
//!   key-encoding era is skipped wholesale on recovery (its keys would
//!   not match any current request) and reclaimed by compaction.
//! * **Content-addressed dedup** — the store never holds two records
//!   for one key: [`PlanStore::append`] is a no-op for a key already
//!   indexed (plans are deterministic, so the bytes are identical by
//!   construction). Dead bytes therefore come only from torn tails and
//!   stale-era segments, and [`PlanStore::compact`] rewrites the live
//!   records into fresh segments and deletes the rest.
//!
//! The store is deliberately **not** a cache: it has no eviction and no
//! recency. The serving tier rehydrates its in-memory LRU from the
//! records returned by [`PlanStore::open`] and keeps the store as the
//! durable superset.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::canon::KEY_VERSION;

/// Per-segment header magic; the full header is
/// `aqseg1 <KEY_VERSION>\n` behind a little-endian u32 length prefix.
const SEGMENT_MAGIC: &str = "aqseg1";

/// Sanity bound on any single encoding or plan payload (64 MiB). A
/// declared length beyond this is treated as corruption, not an
/// allocation request.
const MAX_PAYLOAD_BYTES: u32 = 64 << 20;

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Rotate the active segment once it grows past this many bytes.
    pub segment_bytes: u64,
    /// Auto-compact when the directory holds more than this many
    /// segments at rotation time (`0` disables auto-compaction).
    pub compact_segments: usize,
    /// `fsync` after every append. Off by default: the store is a warm
    /// cache, not a system of record, and a torn tail only costs a
    /// recompile.
    pub fsync: bool,
}

impl StoreConfig {
    /// Defaults (4 MiB segments, auto-compact past 8 segments, no
    /// fsync) rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            compact_segments: 8,
            fsync: false,
        }
    }
}

/// One durable plan record, as rehydrated by [`PlanStore::open`].
#[derive(Debug, Clone)]
pub struct Record {
    /// Content-addressed cache key (FNV-1a-128 of the canonical
    /// encoding; see [`crate::canon`]).
    pub key: u128,
    /// The exact canonical encoding the key was hashed from (the cache
    /// uses it to reject 128-bit collisions).
    pub encoding: Arc<[u8]>,
    /// The rendered plan document, byte-identical to the cold compile
    /// that produced it.
    pub plan: Arc<str>,
}

/// Where a record's bytes live on disk (exposed for the recovery
/// tests, which truncate and corrupt at exact offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// Segment id the record lives in.
    pub segment: u64,
    /// Byte offset of the record within its segment.
    pub offset: u64,
    /// Total record length in bytes (lengths + key + payloads + CRC).
    pub len: u64,
}

/// What recovery found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records rehydrated.
    pub records: usize,
    /// Segments scanned (current-era, readable).
    pub segments: usize,
    /// Segments skipped because their header carried another
    /// `KEY_VERSION` (or no valid header at all).
    pub stale_segments: usize,
    /// Bytes dropped from the last segment's torn tail.
    pub truncated_bytes: u64,
    /// Torn or corrupt records abandoned mid-segment (each one ends
    /// its segment's scan).
    pub torn_records: usize,
}

struct IndexEntry {
    segment: u64,
    offset: u64,
    len: u64,
}

struct ActiveSegment {
    id: u64,
    writer: BufWriter<File>,
    len: u64,
}

/// The append-only content-addressed plan store. Not internally
/// synchronized: the service wraps it in a `Mutex` (appends happen only
/// on the cold path, where a compile dwarfs the lock).
pub struct PlanStore {
    config: StoreConfig,
    index: HashMap<u128, IndexEntry>,
    /// Ids of every segment currently on disk (sorted ascending).
    segments: Vec<u64>,
    active: ActiveSegment,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

fn segment_header() -> Vec<u8> {
    let text = format!("{SEGMENT_MAGIC} {KEY_VERSION}\n");
    let mut out = Vec::with_capacity(4 + text.len());
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    out
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the classic zlib
/// polynomial, table-driven, dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Renders one record: `[enc_len u32][plan_len u32][key 16B][enc][plan]
/// [crc32 u32]`, CRC over everything before it.
fn encode_record(key: u128, encoding: &[u8], plan: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + encoding.len() + plan.len());
    out.extend_from_slice(&(encoding.len() as u32).to_le_bytes());
    out.extend_from_slice(&(plan.len() as u32).to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(encoding);
    out.extend_from_slice(plan.as_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

/// One segment's scan result.
struct SegmentScan {
    records: Vec<(Record, RecordSpan)>,
    /// Offset of the first torn byte (== file len when the whole
    /// segment is intact).
    intact_len: u64,
    /// Whether the scan ended on a torn/corrupt record.
    torn: bool,
    /// Whether the header was missing or from another era.
    stale: bool,
}

fn scan_segment(path: &Path, id: u64) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let header = segment_header();
    if bytes.len() < header.len() || bytes[..header.len()] != header[..] {
        return Ok(SegmentScan {
            records: Vec::new(),
            intact_len: 0,
            torn: false,
            stale: true,
        });
    }
    let mut records = Vec::new();
    let mut pos = header.len();
    let mut torn = false;
    while pos < bytes.len() {
        let start = pos;
        if bytes.len() - pos < 28 {
            torn = true;
            break;
        }
        let enc_len = read_u32(&bytes, pos) as usize;
        let plan_len = read_u32(&bytes, pos + 4) as usize;
        if enc_len as u64 > MAX_PAYLOAD_BYTES as u64 || plan_len as u64 > MAX_PAYLOAD_BYTES as u64 {
            torn = true;
            break;
        }
        let total = 28 + enc_len + plan_len;
        if bytes.len() - pos < total {
            torn = true;
            break;
        }
        let body = &bytes[pos..pos + total - 4];
        let declared_crc = read_u32(&bytes, pos + total - 4);
        if crc32(body) != declared_crc {
            torn = true;
            break;
        }
        let mut key_bytes = [0u8; 16];
        key_bytes.copy_from_slice(&bytes[pos + 8..pos + 24]);
        let key = u128::from_le_bytes(key_bytes);
        let encoding: Arc<[u8]> = Arc::from(&bytes[pos + 24..pos + 24 + enc_len]);
        let plan_bytes = &bytes[pos + 24 + enc_len..pos + total - 4];
        let Ok(plan_str) = std::str::from_utf8(plan_bytes) else {
            // A plan that is not UTF-8 cannot be a rendered document;
            // treat it as corruption even though the CRC matched.
            torn = true;
            break;
        };
        pos += total;
        records.push((
            Record {
                key,
                encoding,
                plan: Arc::from(plan_str),
            },
            RecordSpan {
                segment: id,
                offset: start as u64,
                len: total as u64,
            },
        ));
    }
    Ok(SegmentScan {
        records,
        intact_len: pos as u64,
        torn,
        stale: false,
    })
}

fn list_segment_ids(dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

fn open_for_append(path: &Path) -> io::Result<(BufWriter<File>, u64)> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let len = file.seek(SeekFrom::End(0))?;
    Ok((BufWriter::new(file), len))
}

impl PlanStore {
    /// Opens (or creates) the store, recovering every intact record.
    ///
    /// Recovery scans segments in id order, stops each segment's scan
    /// at the first torn or corrupt record, truncates the *last*
    /// segment back to its intact prefix, and skips segments written
    /// under another `KEY_VERSION`. Returns the store, the recovered
    /// records (in append order, one per key), and a report of what
    /// was repaired.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading/repairing the
    /// segment files.
    pub fn open(config: StoreConfig) -> io::Result<(PlanStore, Vec<Record>, RecoveryReport)> {
        fs::create_dir_all(&config.dir)?;
        let ids = list_segment_ids(&config.dir)?;
        let mut report = RecoveryReport::default();
        let mut records: Vec<Record> = Vec::new();
        let mut index: HashMap<u128, IndexEntry> = HashMap::new();
        let mut live_segments: Vec<u64> = Vec::new();
        // Can the last segment be reused as the active one? (Current
        // era, intact after any truncation, still under the size cap.)
        let mut reuse_last: Option<(u64, u64)> = None;
        for (i, &id) in ids.iter().enumerate() {
            let path = segment_path(&config.dir, id);
            let scan = scan_segment(&path, id)?;
            let last = i + 1 == ids.len();
            if scan.stale {
                report.stale_segments += 1;
                live_segments.push(id); // kept on disk until compaction
                continue;
            }
            report.segments += 1;
            if scan.torn {
                report.torn_records += 1;
                if last {
                    // Torn tail of the newest segment: physically
                    // truncate so future appends start on a clean edge.
                    let file = OpenOptions::new().write(true).open(&path)?;
                    let full = file.metadata()?.len();
                    report.truncated_bytes += full - scan.intact_len;
                    file.set_len(scan.intact_len)?;
                    file.sync_all()?;
                }
            }
            if last && scan.intact_len < config.segment_bytes {
                reuse_last = Some((id, scan.intact_len));
            }
            for (record, span) in scan.records {
                // Duplicate keys (pre-compaction overlaps) keep the
                // first copy for rehydration; bytes are identical by
                // construction.
                if index
                    .insert(
                        record.key,
                        IndexEntry {
                            segment: span.segment,
                            offset: span.offset,
                            len: span.len,
                        },
                    )
                    .is_none()
                {
                    records.push(record);
                }
            }
            live_segments.push(id);
        }
        report.records = records.len();

        let active = match reuse_last {
            Some((id, len)) => {
                let (writer, file_len) = open_for_append(&segment_path(&config.dir, id))?;
                debug_assert_eq!(file_len, len, "truncation left the intact prefix");
                ActiveSegment { id, writer, len }
            }
            None => {
                let id = ids.last().map_or(0, |last| last + 1);
                let (mut writer, _) = open_for_append(&segment_path(&config.dir, id))?;
                writer.write_all(&segment_header())?;
                writer.flush()?;
                live_segments.push(id);
                ActiveSegment {
                    id,
                    writer,
                    len: segment_header().len() as u64,
                }
            }
        };
        let store = PlanStore {
            config,
            index,
            segments: live_segments,
            active,
        };
        Ok((store, records, report))
    }

    /// Appends `(key, encoding, plan)` unless `key` is already stored.
    /// Returns whether a record was written.
    ///
    /// # Errors
    ///
    /// I/O errors writing, flushing, or rotating the active segment.
    pub fn append(&mut self, key: u128, encoding: &[u8], plan: &str) -> io::Result<bool> {
        if self.index.contains_key(&key) {
            return Ok(false);
        }
        let record = encode_record(key, encoding, plan);
        let offset = self.active.len;
        self.active.writer.write_all(&record)?;
        self.active.writer.flush()?;
        if self.config.fsync {
            self.active.writer.get_ref().sync_data()?;
        }
        self.active.len += record.len() as u64;
        self.index.insert(
            key,
            IndexEntry {
                segment: self.active.id,
                offset,
                len: record.len() as u64,
            },
        );
        if self.active.len >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok(true)
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.active.writer.flush()?;
        if self.config.fsync {
            self.active.writer.get_ref().sync_data()?;
        }
        let next_id = self.active.id + 1;
        let path = segment_path(&self.config.dir, next_id);
        let (mut writer, _) = open_for_append(&path)?;
        writer.write_all(&segment_header())?;
        writer.flush()?;
        self.segments.push(next_id);
        self.active = ActiveSegment {
            id: next_id,
            writer,
            len: segment_header().len() as u64,
        };
        if self.config.compact_segments > 0 && self.segments.len() > self.config.compact_segments {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites every live record into fresh segments and deletes the
    /// old files (reclaiming stale-era segments and torn tails).
    /// Returns the number of live records carried over.
    ///
    /// # Errors
    ///
    /// I/O errors re-reading, rewriting, or deleting segment files.
    pub fn compact(&mut self) -> io::Result<usize> {
        self.active.writer.flush()?;
        // Read every live record's exact bytes back out of its segment.
        let mut keys: Vec<u128> = self.index.keys().copied().collect();
        keys.sort_unstable(); // deterministic rewrite order
        let mut carried: Vec<Vec<u8>> = Vec::with_capacity(keys.len());
        for &key in &keys {
            let entry = &self.index[&key];
            let mut file = File::open(segment_path(&self.config.dir, entry.segment))?;
            file.seek(SeekFrom::Start(entry.offset))?;
            let mut bytes = vec![0u8; entry.len as usize];
            file.read_exact(&mut bytes)?;
            carried.push(bytes);
        }
        let old_segments = std::mem::take(&mut self.segments);
        let first_new = self.active.id + 1;
        // Write the carried records into fresh segments, respecting the
        // rotation size.
        let mut new_id = first_new;
        let mut path = segment_path(&self.config.dir, new_id);
        let (mut writer, _) = open_for_append(&path)?;
        writer.write_all(&segment_header())?;
        let mut len = segment_header().len() as u64;
        let mut new_index: HashMap<u128, IndexEntry> = HashMap::with_capacity(keys.len());
        let mut new_segments = vec![new_id];
        for (key, bytes) in keys.iter().zip(&carried) {
            if len >= self.config.segment_bytes {
                writer.flush()?;
                if self.config.fsync {
                    writer.get_ref().sync_data()?;
                }
                new_id += 1;
                path = segment_path(&self.config.dir, new_id);
                let (w, _) = open_for_append(&path)?;
                writer = w;
                writer.write_all(&segment_header())?;
                len = segment_header().len() as u64;
                new_segments.push(new_id);
            }
            writer.write_all(bytes)?;
            new_index.insert(
                *key,
                IndexEntry {
                    segment: new_id,
                    offset: len,
                    len: bytes.len() as u64,
                },
            );
            len += bytes.len() as u64;
        }
        writer.flush()?;
        if self.config.fsync {
            writer.get_ref().sync_data()?;
        }
        for id in old_segments {
            let _ = fs::remove_file(segment_path(&self.config.dir, id));
        }
        self.index = new_index;
        self.segments = new_segments;
        self.active = ActiveSegment {
            id: new_id,
            writer,
            len,
        };
        Ok(keys.len())
    }

    /// Whether `key` has a durable record.
    pub fn contains(&self, key: u128) -> bool {
        self.index.contains_key(&key)
    }

    /// Where `key`'s record lives on disk, if stored.
    pub fn locate(&self, key: u128) -> Option<RecordSpan> {
        self.index.get(&key).map(|e| RecordSpan {
            segment: e.segment,
            offset: e.offset,
            len: e.len,
        })
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aqua-store-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Classic zlib test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_and_rehydrate() {
        let dir = tmp_dir("roundtrip");
        let cfg = StoreConfig::at(&dir);
        {
            let (mut store, records, report) = PlanStore::open(cfg.clone()).unwrap();
            assert!(records.is_empty());
            assert_eq!(report, RecoveryReport::default());
            assert!(store.append(1, b"enc-1", "{\"plan\":1}").unwrap());
            assert!(store.append(2, b"enc-2", "{\"plan\":2}").unwrap());
            // Dedup: same key again is a no-op.
            assert!(!store.append(1, b"enc-1", "{\"plan\":1}").unwrap());
            assert_eq!(store.len(), 2);
        }
        let (store, records, report) = PlanStore::open(cfg).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key, 1);
        assert_eq!(&*records[0].plan, "{\"plan\":1}");
        assert_eq!(&*records[1].encoding, b"enc-2");
        assert!(store.contains(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let cfg = StoreConfig::at(&dir);
        let span = {
            let (mut store, _, _) = PlanStore::open(cfg.clone()).unwrap();
            store.append(10, b"e10", "{\"p\":10}").unwrap();
            store.append(11, b"e11", "{\"p\":11}").unwrap();
            store.locate(11).unwrap()
        };
        // Chop the second record in half: a torn tail.
        let path = segment_path(&dir, span.segment);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(span.offset + span.len / 2).unwrap();
        drop(file);
        let (store, records, report) = PlanStore::open(cfg.clone()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, 10);
        assert_eq!(report.torn_records, 1);
        assert!(report.truncated_bytes > 0);
        assert!(!store.contains(11));
        drop(store);
        // The truncation is physical: a third open sees a clean log.
        let (_, records, report) = PlanStore::open(cfg).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.torn_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_compaction_preserve_records() {
        let dir = tmp_dir("compact");
        let mut cfg = StoreConfig::at(&dir);
        cfg.segment_bytes = 128; // force rotation nearly every append
        cfg.compact_segments = 0; // manual compaction only
        let (mut store, _, _) = PlanStore::open(cfg.clone()).unwrap();
        for k in 0..20u128 {
            store
                .append(k, format!("enc-{k}").as_bytes(), &format!("{{\"p\":{k}}}"))
                .unwrap();
        }
        assert!(store.segment_count() > 3, "rotation must have happened");
        let carried = store.compact().unwrap();
        assert_eq!(carried, 20);
        assert!(store.segment_count() < 21);
        // Appends keep working after compaction...
        store.append(99, b"enc-99", "{\"p\":99}").unwrap();
        drop(store);
        // ...and a reopen sees all 21 records byte-identically.
        let (_, records, _) = PlanStore::open(cfg).unwrap();
        assert_eq!(records.len(), 21);
        for r in &records {
            let expect = format!("{{\"p\":{}}}", r.key);
            assert_eq!(&*r.plan, expect.as_str());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_era_segments_are_skipped() {
        let dir = tmp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // A segment from "another era": valid-looking but wrong header.
        fs::write(
            dir.join("seg-000000.log"),
            b"\x10\x00\x00\x00aqseg1 old/v0!!\n",
        )
        .unwrap();
        let (store, records, report) = PlanStore::open(StoreConfig::at(&dir)).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.stale_segments, 1);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
