//! The disk-backed content-addressed plan store.
//!
//! Warm state should survive a process restart: a fleet worker that
//! crashes and comes back must serve the same byte-identical plans it
//! served before without recompiling its whole working set. The store
//! is a content-addressed index over an [`aqua_seglog::SegmentLog`] —
//! the CRC-guarded append-only segment log (torn-tail truncation, era
//! fencing, rotation, compaction) lives there and is shared with the
//! replay service's descriptor log; this module adds plan semantics:
//!
//! * **Record payloads** frame `(key, canonical encoding, plan bytes)`
//!   as `[enc_len u32][key 16B][enc][plan]`; the log wraps each payload
//!   in its own length prefix and CRC-32.
//! * **Version fencing** — segments embed `crate::canon::KEY_VERSION`,
//!   so a segment written under another key-encoding era is skipped
//!   wholesale on recovery (its keys would not match any current
//!   request) and reclaimed by compaction.
//! * **Content-addressed dedup** — the store never holds two records
//!   for one key: [`PlanStore::append`] is a no-op for a key already
//!   indexed (plans are deterministic, so the bytes are identical by
//!   construction). Dead bytes therefore come only from torn tails and
//!   stale-era segments, and [`PlanStore::compact`] rewrites the live
//!   records into fresh segments and deletes the rest.
//!
//! The store is deliberately **not** a cache: it has no eviction and no
//! recency. The serving tier rehydrates its in-memory LRU from the
//! records returned by [`PlanStore::open`] and keeps the store as the
//! durable superset.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

pub use aqua_seglog::{crc32, RecordSpan, RecoveryReport};
use aqua_seglog::{LogConfig, SegmentLog};

use crate::canon::KEY_VERSION;

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Rotate the active segment once it grows past this many bytes.
    pub segment_bytes: u64,
    /// Auto-compact when the directory holds more than this many
    /// segments at rotation time (`0` disables auto-compaction).
    pub compact_segments: usize,
    /// `fsync` after every append. Off by default: the store is a warm
    /// cache, not a system of record, and a torn tail only costs a
    /// recompile.
    pub fsync: bool,
}

impl StoreConfig {
    /// Defaults (4 MiB segments, auto-compact past 8 segments, no
    /// fsync) rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            compact_segments: 8,
            fsync: false,
        }
    }

    fn log_config(&self) -> LogConfig {
        LogConfig {
            dir: self.dir.clone(),
            segment_bytes: self.segment_bytes,
            fsync: self.fsync,
            version: KEY_VERSION.to_string(),
        }
    }
}

/// One durable plan record, as rehydrated by [`PlanStore::open`].
#[derive(Debug, Clone)]
pub struct Record {
    /// Content-addressed cache key (FNV-1a-128 of the canonical
    /// encoding; see [`crate::canon`]).
    pub key: u128,
    /// The exact canonical encoding the key was hashed from (the cache
    /// uses it to reject 128-bit collisions).
    pub encoding: Arc<[u8]>,
    /// The rendered plan document, byte-identical to the cold compile
    /// that produced it.
    pub plan: Arc<str>,
}

/// The append-only content-addressed plan store. Not internally
/// synchronized: the service wraps it in a `Mutex` (appends happen only
/// on the cold path, where a compile dwarfs the lock).
pub struct PlanStore {
    config: StoreConfig,
    log: SegmentLog,
    index: HashMap<u128, RecordSpan>,
}

/// Renders one payload: `[enc_len u32][key 16B][enc][plan]` (the log
/// adds the length prefix and CRC framing).
fn encode_payload(key: u128, encoding: &[u8], plan: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + encoding.len() + plan.len());
    out.extend_from_slice(&(encoding.len() as u32).to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(encoding);
    out.extend_from_slice(plan.as_bytes());
    out
}

fn decode_payload(payload: &[u8]) -> Option<Record> {
    if payload.len() < 20 {
        return None;
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&payload[..4]);
    let enc_len = u32::from_le_bytes(len_bytes) as usize;
    if payload.len() < 20 + enc_len {
        return None;
    }
    let mut key_bytes = [0u8; 16];
    key_bytes.copy_from_slice(&payload[4..20]);
    let key = u128::from_le_bytes(key_bytes);
    let encoding: Arc<[u8]> = Arc::from(&payload[20..20 + enc_len]);
    // A plan that is not UTF-8 cannot be a rendered document; treat it
    // as corruption even though the CRC matched.
    let plan_str = std::str::from_utf8(&payload[20 + enc_len..]).ok()?;
    Some(Record {
        key,
        encoding,
        plan: Arc::from(plan_str),
    })
}

impl PlanStore {
    /// Opens (or creates) the store, recovering every intact record.
    ///
    /// Recovery scans segments in id order, stops each segment's scan
    /// at the first torn or corrupt record, truncates the *last*
    /// segment back to its intact prefix, and skips segments written
    /// under another `KEY_VERSION`. Returns the store, the recovered
    /// records (in append order, one per key), and a report of what
    /// was repaired.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading/repairing the
    /// segment files.
    pub fn open(config: StoreConfig) -> io::Result<(PlanStore, Vec<Record>, RecoveryReport)> {
        let (log, recovered, mut report) = SegmentLog::open(config.log_config())?;
        let mut records: Vec<Record> = Vec::new();
        let mut index: HashMap<u128, RecordSpan> = HashMap::new();
        for item in recovered {
            let Some(record) = decode_payload(&item.payload) else {
                // CRC-valid but semantically undecodable: drop it, but
                // surface it in the report like any other bad record.
                report.torn_records += 1;
                continue;
            };
            // Duplicate keys (pre-compaction overlaps) keep the first
            // copy for rehydration; bytes are identical by construction.
            if index.insert(record.key, item.span).is_none() {
                records.push(record);
            }
        }
        report.records = records.len();
        let store = PlanStore { config, log, index };
        Ok((store, records, report))
    }

    /// Appends `(key, encoding, plan)` unless `key` is already stored.
    /// Returns whether a record was written.
    ///
    /// # Errors
    ///
    /// I/O errors writing, flushing, or rotating the active segment.
    pub fn append(&mut self, key: u128, encoding: &[u8], plan: &str) -> io::Result<bool> {
        if self.index.contains_key(&key) {
            return Ok(false);
        }
        let span = self.log.append(&encode_payload(key, encoding, plan))?;
        self.index.insert(key, span);
        if self.config.compact_segments > 0
            && self.log.segment_count() > self.config.compact_segments
        {
            self.compact()?;
        }
        Ok(true)
    }

    /// Rewrites every live record into fresh segments and deletes the
    /// old files (reclaiming stale-era segments and torn tails).
    /// Returns the number of live records carried over.
    ///
    /// # Errors
    ///
    /// I/O errors re-reading, rewriting, or deleting segment files.
    pub fn compact(&mut self) -> io::Result<usize> {
        let mut keys: Vec<u128> = self.index.keys().copied().collect();
        keys.sort_unstable(); // deterministic rewrite order
        let mut live: Vec<Vec<u8>> = Vec::with_capacity(keys.len());
        for &key in &keys {
            live.push(self.log.read(self.index[&key])?);
        }
        let spans = self.log.compact(&live)?;
        self.index = keys.iter().copied().zip(spans).collect();
        Ok(keys.len())
    }

    /// Whether `key` has a durable record.
    pub fn contains(&self, key: u128) -> bool {
        self.index.contains_key(&key)
    }

    /// Where `key`'s record lives on disk, if stored.
    pub fn locate(&self, key: u128) -> Option<RecordSpan> {
        self.index.get(&key).copied()
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.log.segment_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::{self, OpenOptions};
    use std::path::Path;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aqua-store-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn segment_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("seg-{id:06}.log"))
    }

    #[test]
    fn roundtrip_and_rehydrate() {
        let dir = tmp_dir("roundtrip");
        let cfg = StoreConfig::at(&dir);
        {
            let (mut store, records, report) = PlanStore::open(cfg.clone()).unwrap();
            assert!(records.is_empty());
            assert_eq!(report, RecoveryReport::default());
            assert!(store.append(1, b"enc-1", "{\"plan\":1}").unwrap());
            assert!(store.append(2, b"enc-2", "{\"plan\":2}").unwrap());
            // Dedup: same key again is a no-op.
            assert!(!store.append(1, b"enc-1", "{\"plan\":1}").unwrap());
            assert_eq!(store.len(), 2);
        }
        let (store, records, report) = PlanStore::open(cfg).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key, 1);
        assert_eq!(&*records[0].plan, "{\"plan\":1}");
        assert_eq!(&*records[1].encoding, b"enc-2");
        assert!(store.contains(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let cfg = StoreConfig::at(&dir);
        let span = {
            let (mut store, _, _) = PlanStore::open(cfg.clone()).unwrap();
            store.append(10, b"e10", "{\"p\":10}").unwrap();
            store.append(11, b"e11", "{\"p\":11}").unwrap();
            store.locate(11).unwrap()
        };
        // Chop the second record in half: a torn tail.
        let path = segment_path(&dir, span.segment);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(span.offset + span.len / 2).unwrap();
        drop(file);
        let (store, records, report) = PlanStore::open(cfg.clone()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, 10);
        assert_eq!(report.torn_records, 1);
        assert!(report.truncated_bytes > 0);
        assert!(!store.contains(11));
        drop(store);
        // The truncation is physical: a third open sees a clean log.
        let (_, records, report) = PlanStore::open(cfg).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.torn_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_compaction_preserve_records() {
        let dir = tmp_dir("compact");
        let mut cfg = StoreConfig::at(&dir);
        cfg.segment_bytes = 128; // force rotation nearly every append
        cfg.compact_segments = 0; // manual compaction only
        let (mut store, _, _) = PlanStore::open(cfg.clone()).unwrap();
        for k in 0..20u128 {
            store
                .append(k, format!("enc-{k}").as_bytes(), &format!("{{\"p\":{k}}}"))
                .unwrap();
        }
        assert!(store.segment_count() > 3, "rotation must have happened");
        let carried = store.compact().unwrap();
        assert_eq!(carried, 20);
        assert!(store.segment_count() < 21);
        // Appends keep working after compaction...
        store.append(99, b"enc-99", "{\"p\":99}").unwrap();
        drop(store);
        // ...and a reopen sees all 21 records byte-identically.
        let (_, records, _) = PlanStore::open(cfg).unwrap();
        assert_eq!(records.len(), 21);
        for r in &records {
            let expect = format!("{{\"p\":{}}}", r.key);
            assert_eq!(&*r.plan, expect.as_str());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_era_segments_are_skipped() {
        let dir = tmp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // A segment from "another era": valid-looking but wrong header.
        fs::write(
            dir.join("seg-000000.log"),
            b"\x10\x00\x00\x00aqlog1 old/v0!!\n",
        )
        .unwrap();
        let (store, records, report) = PlanStore::open(StoreConfig::at(&dir)).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.stale_segments, 1);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_extraction_segments_read_as_stale() {
        // Segments written before the seglog extraction led with
        // `aqseg1` magic; they must be fenced off, not misparsed.
        let dir = tmp_dir("old-magic");
        fs::create_dir_all(&dir).unwrap();
        let text = format!("aqseg1 {KEY_VERSION}\n");
        let mut bytes = (text.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(text.as_bytes());
        fs::write(dir.join("seg-000000.log"), &bytes).unwrap();
        let (_store, records, report) = PlanStore::open(StoreConfig::at(&dir)).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.stale_segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
