//! Compiling a canonical request into a deterministic plan document.
//!
//! The plan is rendered as one JSON object with a fixed member order, so
//! byte-identity of responses is meaningful: two requests that
//! canonicalize to the same [`Canon`] always produce the same bytes,
//! whether they were compiled cold or served from the cache. That is the
//! cache-equivalence property the differential tests pin — it holds *by
//! construction* because plans are compiled from the canonical DAG
//! (names interned to `f0..fN`), never from the request's surface form.
//!
//! Plan statuses mirror the Fig. 6 hierarchy plus §3.5:
//!
//! * `"solved"` — an underflow-free assignment (method, exact volumes).
//! * `"partitioned"` — the DAG has unknown-volume separations; the plan
//!   carries the compile-time partitions and their run-time bindings.
//! * `"needs_regeneration"` — no static assignment within budget.
//! * `"resources_exceeded"` / `"invalid"` — compilation failures.

use std::collections::HashMap;
use std::fmt::Write as _;

use aqua_dag::{Dag, NodeKind};
use aqua_obs::Obs;
use aqua_rational::Ratio;
use aqua_volume::unknown::{self, Binding};
use aqua_volume::{
    compile_with_trace, manage_volumes, Machine, ManagedOutcome, Recording, VolumeManagerOptions,
};

use crate::canon::Canon;
use crate::json::quote;

fn kind_str(kind: &NodeKind) -> String {
    match kind {
        NodeKind::Input => "input".to_owned(),
        NodeKind::Mix { seconds } => format!("mix:{seconds}"),
        NodeKind::Process { op } => format!("process:{op}"),
        NodeKind::Separate { fraction: None } => "separate:?".to_owned(),
        NodeKind::Separate { fraction: Some(f) } => format!("separate:{f}"),
        NodeKind::Output => "output".to_owned(),
        NodeKind::Excess => "excess".to_owned(),
        NodeKind::ConstrainedInput => "constrained_input".to_owned(),
    }
}

/// Renders the node list of `dag` as a JSON array (canonical ids are the
/// positions, so only kinds are emitted).
fn push_nodes(out: &mut String, dag: &Dag) {
    out.push('[');
    for (i, id) in dag.node_ids().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote(&kind_str(&dag.node(id).kind)));
    }
    out.push(']');
}

/// Renders the live edges of `dag` as `[src,dst,"fraction"]` triples,
/// with per-edge volumes appended when `vols` is provided.
fn push_edges(out: &mut String, dag: &Dag, vols: Option<&[Ratio]>) {
    out.push('[');
    let mut first = true;
    for e in dag.edge_ids() {
        if !dag.edge_is_live(e) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let edge = dag.edge(e);
        let _ = write!(
            out,
            "[{},{},{}",
            edge.src.index(),
            edge.dst.index(),
            quote(&edge.fraction.to_string())
        );
        if let Some(v) = vols {
            out.push(',');
            out.push_str(&quote(&v[e.index()].to_string()));
        }
        out.push(']');
    }
    out.push(']');
}

fn push_ratio_vec(out: &mut String, vols: &[Ratio]) {
    out.push('[');
    for (i, v) in vols.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote(&v.to_string()));
    }
    out.push(']');
}

fn push_log(out: &mut String, log: &[String]) {
    out.push('[');
    for (i, line) in log.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote(line));
    }
    out.push(']');
}

/// Compiles one canonical request into its plan document.
///
/// This is the only compile entry point in the crate — both the cold
/// path (miss → batcher → here) and the bench harness call it, so warm
/// and cold responses can never diverge. The result is deterministic:
/// the hierarchy is a pure function of `(canon, machine)` and the JSON
/// member order is fixed.
pub fn compile_plan(canon: &Canon, machine: &Machine, obs: &Obs) -> String {
    compile_plan_impl(canon, machine, obs, false).0
}

/// Like [`compile_plan`], but also returns the hierarchy's round trace
/// when the outcome is replayable (see [`aqua_volume::incr`]). Sessions
/// register through this so edits can be replanned incrementally; the
/// plan bytes are identical to [`compile_plan`]'s because both render
/// through [`render_outcome`].
pub(crate) fn compile_plan_traced(
    canon: &Canon,
    machine: &Machine,
    obs: &Obs,
) -> (String, Option<Recording>) {
    compile_plan_impl(canon, machine, obs, true)
}

fn compile_plan_impl(
    canon: &Canon,
    machine: &Machine,
    obs: &Obs,
    trace: bool,
) -> (String, Option<Recording>) {
    let _span = obs.span("serve.plan.compile");
    obs.add("serve.plan.compiles", 1);

    // §3.5: statically-unknown volumes go down the partition path — the
    // final dispensing step is deferred to run time, so the "plan" is
    // the partition table with its bindings.
    if unknown::has_unknown_volumes(&canon.dag) {
        let rendered = match unknown::partition(&canon.dag, machine) {
            Ok(plan) => {
                let mut out = String::from("{\"status\":\"partitioned\",\"partitions\":[");
                for (pi, part) in plan.partitions.iter().enumerate() {
                    if pi > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"nodes\":");
                    push_nodes(&mut out, &part.dag);
                    out.push_str(",\"edges\":");
                    push_edges(&mut out, &part.dag, None);
                    // Bindings sorted by local node id for determinism
                    // (HashMap iteration order must never leak).
                    let mut bindings: Vec<_> = part.bindings.iter().collect();
                    bindings.sort_by_key(|(id, _)| id.index());
                    out.push_str(",\"constrained_inputs\":[");
                    for (bi, (id, binding)) in bindings.iter().enumerate() {
                        if bi > 0 {
                            out.push(',');
                        }
                        match binding {
                            Binding::Static { volume_nl } => {
                                let _ = write!(
                                    out,
                                    "{{\"node\":{},\"binding\":\"static\",\"volume_nl\":{}}}",
                                    id.index(),
                                    quote(&volume_nl.to_string())
                                );
                            }
                            Binding::Runtime {
                                partition,
                                source,
                                share,
                            } => {
                                let _ = write!(
                                    out,
                                    "{{\"node\":{},\"binding\":\"runtime\",\"partition\":{},\
                                     \"source\":{},\"share\":{}}}",
                                    id.index(),
                                    partition,
                                    source.index(),
                                    quote(&share.to_string())
                                );
                            }
                        }
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
                out
            }
            Err(e) => format!(
                "{{\"status\":\"invalid\",\"error\":{}}}",
                quote(&e.to_string())
            ),
        };
        return (rendered, None);
    }

    let opts = VolumeManagerOptions {
        obs: obs.clone(),
        output_weights: canon
            .weights
            .iter()
            .map(|(&id, &w)| (id, Ratio::from_int(w as i128)))
            .collect::<HashMap<_, _>>(),
        ..VolumeManagerOptions::default()
    };

    if trace {
        let (outcome, rec) = compile_with_trace(&canon.dag, machine, &opts);
        (render_outcome(&outcome, machine), rec)
    } else {
        let outcome = manage_volumes(&canon.dag, machine, &opts);
        (render_outcome(&outcome, machine), None)
    }
}

/// Renders a hierarchy outcome as plan JSON. This is the *only* place
/// solved/needs-regeneration/resources-exceeded plans are rendered —
/// cold compiles and incremental session replays both come through
/// here, so their bytes can never diverge.
pub(crate) fn render_outcome(outcome: &ManagedOutcome, machine: &Machine) -> String {
    match outcome {
        ManagedOutcome::Solved { dag, volumes, log } => {
            // The hierarchy may have rewritten the DAG (cascades,
            // replicas); volumes index into the rewritten graph, so the
            // plan carries that graph, not the request's.
            let mut out = String::from("{\"status\":\"solved\",\"method\":");
            out.push_str(&quote(&volumes.method.to_string()));
            out.push_str(",\"nodes\":");
            push_nodes(&mut out, dag);
            out.push_str(",\"edges\":");
            push_edges(&mut out, dag, Some(&volumes.edge_volumes_nl));
            out.push_str(",\"node_volumes_nl\":");
            push_ratio_vec(&mut out, &volumes.node_volumes_nl);
            // IVol: the loads quantized to the machine's least count —
            // what the dispensing hardware is actually told to meter.
            let ivol: Vec<Ratio> = volumes
                .node_volumes_nl
                .iter()
                .map(|v| machine.round_to_least_count(*v))
                .collect();
            out.push_str(",\"ivol_nl\":");
            push_ratio_vec(&mut out, &ivol);
            out.push_str(",\"log\":");
            push_log(&mut out, log);
            out.push('}');
            out
        }
        ManagedOutcome::NeedsRegeneration {
            dag,
            best_effort,
            log,
        } => {
            let mut out = String::from("{\"status\":\"needs_regeneration\"");
            if let Some(sol) = best_effort {
                out.push_str(",\"best_effort\":{\"nodes\":");
                push_nodes(&mut out, dag);
                out.push_str(",\"edges\":");
                push_edges(&mut out, dag, Some(&sol.edge_volumes_nl));
                out.push_str(",\"node_volumes_nl\":");
                push_ratio_vec(&mut out, &sol.node_volumes_nl);
                if let Some(under) = &sol.underflow {
                    let _ = write!(
                        out,
                        ",\"underflow\":{{\"edge\":{},\"volume_nl\":{},\"least_count_nl\":{}}}",
                        under.edge.index(),
                        quote(&under.volume_nl.to_string()),
                        quote(&under.least_count_nl.to_string())
                    );
                }
                out.push('}');
            }
            out.push_str(",\"log\":");
            push_log(&mut out, log);
            out.push('}');
            out
        }
        ManagedOutcome::ResourcesExceeded { reason, log } => {
            let mut out = String::from("{\"status\":\"resources_exceeded\",\"reason\":");
            out.push_str(&quote(reason));
            out.push_str(",\"log\":");
            push_log(&mut out, log);
            out.push('}');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonicalize;
    use aqua_dag::Dag;
    use std::collections::HashMap;

    fn canon_of(dag: &Dag, machine: &Machine) -> Canon {
        canonicalize(dag, &HashMap::new(), machine).expect("canonicalizes")
    }

    #[test]
    fn solved_plan_is_valid_fixed_order_json() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 4)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let machine = Machine::paper_default();
        let plan = compile_plan(&canon_of(&d, &machine), &machine, &Obs::off());
        let v = crate::json::parse(&plan).expect("plan is valid JSON");
        assert_eq!(v.get("status").unwrap().as_str(), Some("solved"));
        assert!(v.get("nodes").is_some());
        assert!(v.get("ivol_nl").is_some());
    }

    #[test]
    fn compile_is_deterministic() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let machine = Machine::paper_default();
        let canon = canon_of(&d, &machine);
        let p1 = compile_plan(&canon, &machine, &Obs::off());
        let p2 = compile_plan(&canon, &machine, &Obs::off());
        assert_eq!(p1, p2);
    }

    #[test]
    fn unknown_separations_take_the_partition_path() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m1", &[(a, 1), (b, 1)], 30).unwrap();
        let sep = d.add_separate("sep", m, None);
        let c = d.add_input("C");
        let m2 = d.add_mix("m2", &[(sep, 1), (c, 1)], 30).unwrap();
        d.add_process("s", "sense.OD", m2);
        let machine = Machine::paper_default();
        let plan = compile_plan(&canon_of(&d, &machine), &machine, &Obs::off());
        let v = crate::json::parse(&plan).expect("plan is valid JSON");
        assert_eq!(v.get("status").unwrap().as_str(), Some("partitioned"));
        match v.get("partitions").unwrap() {
            crate::json::Value::Arr(parts) => assert_eq!(parts.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compiles_counter_is_bumped() {
        let sink = std::sync::Arc::new(aqua_obs::MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let machine = Machine::paper_default();
        compile_plan(&canon_of(&d, &machine), &machine, &obs);
        assert_eq!(sink.counter("serve.plan.compiles"), 1);
    }
}
