//! A minimal, dependency-free JSON reader/writer for the wire protocol.
//!
//! The offline build has no serde, so the service parses request lines
//! with this hand-rolled recursive-descent parser and renders response
//! lines with deterministic, fixed-field-order writers. Only what the
//! protocol needs is supported; notably numbers are split into integer
//! ([`Value::Int`]) and float ([`Value::Float`]) forms so request ids
//! and deadlines round-trip exactly.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved (the parser
/// never reorders), which keeps error messages and tests predictable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative `u64`, if it is a whole number.
    ///
    /// Integer literals beyond `i64::MAX` parse as [`Value::Float`]
    /// (e.g. a client sending `deadline_ms: 18446744073709551615`), so
    /// whole floats in range are accepted too; the cast saturates at
    /// `u64::MAX`. Negative numbers and fractions return `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && f.is_finite() => Some(*f as u64),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a short human-readable description of the first problem.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut simple = true; // no '.', no exponent
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                simple = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number".to_owned())?;
    if simple {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("bad number `{text}`"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("unsupported \\u{hex} escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_owned()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar from the source slice.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "non-utf8 string".to_owned())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected member name at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Renders a string as a JSON string literal (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"id":"r1","src":"ASSAY x","deadline_ms":250,"machine":{"mixers":2}}"#)
            .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(v.get("deadline_ms").unwrap().as_int(), Some(250));
        assert_eq!(
            v.get("machine").unwrap().get("mixers").unwrap().as_int(),
            Some(2)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn numbers_split_int_and_float() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn strings_round_trip_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("truth").is_err());
    }

    #[test]
    fn arrays_and_nesting() {
        let v = parse(r#"[1, [2, {"k": null}], true]"#).unwrap();
        match v {
            Value::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], Value::Int(1));
                assert_eq!(items[2], Value::Bool(true));
            }
            other => panic!("{other:?}"),
        }
    }
}
