//! The plan-compilation service: admission, single-flight, batching.
//!
//! Request lifecycle (every stage is spanned through `aqua-obs`):
//!
//! 1. **Canonicalize** — the request's DAG, output weights, and machine
//!    are folded into a [`Canon`] whose key addresses the cache.
//! 2. **Cache probe** — a hit (with encoding verification) returns the
//!    cached plan bytes immediately.
//! 3. **Single-flight admission** — concurrent misses for the *same*
//!    key coalesce onto one in-flight compile; only the first becomes a
//!    queued job, the rest wait on its in-flight entry. Distinct misses
//!    enter a bounded queue; a full queue rejects with
//!    [`ServeError::Overloaded`] instead of building unbounded backlog.
//! 4. **Batched solve** — a batcher thread drains up to `max_batch`
//!    queued jobs and fans them out on `aqua_lp::batch`'s work-stealing
//!    pool (the same machinery as `solve_assays_parallel`), then
//!    publishes results cache-first so later requests hit before the
//!    in-flight entry is retired.
//! 5. **Deadlines** — every request carries a deadline; waiting past it
//!    returns [`ServeError::Timeout`]. A request admitted with an
//!    already-expired deadline times out deterministically *before*
//!    enqueueing, which the golden protocol tests rely on.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aqua_dag::{Dag, NodeId};
use aqua_obs::Obs;
use aqua_rational::Ratio;
use aqua_volume::Machine;

use crate::cache::ShardedLru;
use crate::canon::{self, Canon};
use crate::json::{self, quote, Value};
use crate::plan::compile_plan;

/// Service tuning knobs. [`Default`] matches the paper machine and
/// production-ish queue/cache sizes; tests shrink them to force the
/// Overloaded/Timeout/eviction paths deterministically.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Machine plans are compiled for unless the request overrides it.
    pub machine: Machine,
    /// Total cached plans across all shards.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Bound on queued (admitted, not yet solved) jobs; `0` rejects
    /// every miss with `Overloaded` (used by the golden tests).
    pub queue_capacity: usize,
    /// Worker threads for the batch solve; `0` = all available cores.
    pub solver_threads: usize,
    /// Most jobs drained per batch flush.
    pub max_batch: usize,
    /// Deadline applied to requests that don't carry one, in ms.
    pub default_deadline_ms: u64,
    /// Observability handle threaded through admission → cache → solve.
    pub obs: Obs,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            machine: Machine::paper_default(),
            cache_capacity: 1024,
            cache_shards: 8,
            queue_capacity: 256,
            solver_threads: 0,
            max_batch: 16,
            default_deadline_ms: 30_000,
            obs: Obs::off(),
        }
    }
}

/// Typed request rejections (the wire `error` field is the lowercase
/// variant name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request could not be parsed, lowered, or canonicalized.
    BadRequest(String),
    /// The admission queue was full.
    Overloaded,
    /// The deadline expired before the plan was ready.
    Timeout,
    /// A key-addressed lookup missed the cache.
    UnknownKey,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Overloaded => write!(f, "admission queue is full"),
            ServeError::Timeout => write!(f, "deadline expired before the plan was ready"),
            ServeError::UnknownKey => write!(f, "no cached plan under this key"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served plan: the content key plus the rendered plan bytes (shared,
/// so cache hits never copy the document).
#[derive(Debug, Clone)]
pub struct Served {
    /// Content-addressed cache key.
    pub key: u128,
    /// The plan document (JSON object, fixed member order).
    pub plan: Arc<str>,
}

/// One in-flight compile that any number of deduplicated waiters block
/// on.
struct Flight {
    done: Mutex<Option<Result<Served, ServeError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Served, ServeError>) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = Some(result);
        self.cv.notify_all();
    }
}

struct Job {
    canon: Canon,
    machine: Machine,
    flight: Arc<Flight>,
}

struct Inner {
    config: ServiceConfig,
    cache: ShardedLru,
    inflight: Mutex<HashMap<u128, Arc<Flight>>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    dedups: AtomicU64,
    timeouts: AtomicU64,
    overloads: AtomicU64,
}

/// The multi-threaded plan-compilation service. Cheap to share behind
/// an [`Arc`]; dropping the last handle shuts the batcher down after it
/// drains the queue.
pub struct Service {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts a service (and its batcher thread) with the given config.
    pub fn new(config: ServiceConfig) -> Service {
        let cache = ShardedLru::new(
            config.cache_capacity,
            config.cache_shards,
            config.obs.clone(),
        );
        let inner = Arc::new(Inner {
            cache,
            config,
            inflight: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dedups: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("aqua-serve-batcher".into())
            .spawn(move || batch_loop(&worker_inner))
            .expect("spawn batcher thread");
        Service {
            inner,
            worker: Some(worker),
        }
    }

    /// Canonicalizes assay source text against `machine` without
    /// submitting it (used by the bench harness and tests to learn a
    /// request's key up front).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on parse/lower/canonicalization
    /// failures.
    pub fn canon_src(src: &str, machine: &Machine) -> Result<Canon, ServeError> {
        let flat =
            aqua_lang::compile_to_flat(src).map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let (dag, map) = aqua_compiler::lower_to_dag(&flat)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        canon::canonicalize(&dag, &map.output_weights, machine)
            .map_err(|e| ServeError::BadRequest(e.to_string()))
    }

    /// Compiles (or serves from cache) a plan for assay source text.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see the module docs for the lifecycle.
    pub fn submit_src(
        &self,
        src: &str,
        machine: &Machine,
        deadline: Option<Duration>,
    ) -> Result<Served, ServeError> {
        let canon = Self::canon_src(src, machine)?;
        self.submit_canon(canon, machine.clone(), deadline)
    }

    /// Compiles (or serves from cache) a plan for an explicit DAG and
    /// output-weight map.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see the module docs for the lifecycle.
    pub fn submit_dag(
        &self,
        dag: &Dag,
        weights: &HashMap<NodeId, u64>,
        machine: &Machine,
        deadline: Option<Duration>,
    ) -> Result<Served, ServeError> {
        let canon = canon::canonicalize(dag, weights, machine)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        self.submit_canon(canon, machine.clone(), deadline)
    }

    /// Key-addressed lookup: serves a previously compiled plan without
    /// re-running the front end. Never compiles.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownKey`] if the key is not cached.
    pub fn submit_key(&self, key: u128) -> Result<Served, ServeError> {
        self.inner
            .cache
            .get_by_key(key)
            .ok_or(ServeError::UnknownKey)
    }

    /// Submits an already-canonicalized request.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see the module docs for the lifecycle.
    pub fn submit_canon(
        &self,
        canon: Canon,
        machine: Machine,
        deadline: Option<Duration>,
    ) -> Result<Served, ServeError> {
        let inner = &*self.inner;
        let obs = &inner.config.obs;
        let _span = obs.span("serve.submit");
        let deadline_at = Instant::now()
            + deadline.unwrap_or(Duration::from_millis(inner.config.default_deadline_ms));
        let key = canon.key;

        if let Some(hit) = inner.cache.get(key, &canon.encoding) {
            return Ok(hit);
        }

        let flight = {
            let mut inflight = inner
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // Re-probe under the lock: the batcher publishes cache-first,
            // so a just-finished compile is visible here.
            if let Some(hit) = inner.cache.get(key, &canon.encoding) {
                return Ok(hit);
            }
            if let Some(flight) = inflight.get(&key) {
                inner.dedups.fetch_add(1, Ordering::Relaxed);
                obs.add("serve.singleflight.dedup", 1);
                Arc::clone(flight)
            } else {
                // The leader for this key. An already-expired deadline
                // cannot wait for any compile: reject before admitting.
                if Instant::now() >= deadline_at {
                    inner.timeouts.fetch_add(1, Ordering::Relaxed);
                    obs.add("serve.timeout", 1);
                    return Err(ServeError::Timeout);
                }
                let flight = Arc::new(Flight::new());
                {
                    let mut queue = inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
                    if queue.len() >= inner.config.queue_capacity {
                        inner.overloads.fetch_add(1, Ordering::Relaxed);
                        obs.add("serve.overloaded", 1);
                        return Err(ServeError::Overloaded);
                    }
                    queue.push_back(Job {
                        canon,
                        machine,
                        flight: Arc::clone(&flight),
                    });
                }
                inner.queue_cv.notify_one();
                inflight.insert(key, Arc::clone(&flight));
                flight
            }
        };

        let mut done = flight.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = done.clone() {
                return result;
            }
            let now = Instant::now();
            if now >= deadline_at {
                inner.timeouts.fetch_add(1, Ordering::Relaxed);
                obs.add("serve.timeout", 1);
                return Err(ServeError::Timeout);
            }
            let (guard, _) = flight
                .cv
                .wait_timeout(done, deadline_at - now)
                .unwrap_or_else(PoisonError::into_inner);
            done = guard;
        }
    }

    /// Handles one NDJSON request line and renders the response line
    /// (no trailing newline). Never panics on malformed input.
    pub fn handle_line(&self, line: &str) -> String {
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return error_line(
                    "null",
                    &ServeError::BadRequest(format!("invalid JSON: {e}")),
                )
            }
        };
        let id = parsed
            .get("id")
            .map(render_value)
            .unwrap_or_else(|| "null".to_owned());

        if let Some(cmd) = parsed.get("cmd").and_then(Value::as_str) {
            return match cmd {
                "stats" => format!(
                    "{{\"id\":{id},\"ok\":true,\"stats\":{}}}",
                    self.stats_json()
                ),
                "clear_cache" => {
                    self.clear_cache();
                    format!("{{\"id\":{id},\"ok\":true}}")
                }
                other => error_line(
                    &id,
                    &ServeError::BadRequest(format!("unknown command `{other}`")),
                ),
            };
        }

        if let Some(key_field) = parsed.get("key") {
            let result = match key_field.as_str().and_then(canon::parse_key_hex) {
                None => Err(ServeError::BadRequest(
                    "`key` must be a 32-hex-digit string".to_owned(),
                )),
                Some(key) => self.submit_key(key),
            };
            return match result {
                Ok(served) => success_line(&id, &served),
                Err(e) => error_line(&id, &e),
            };
        }

        let Some(src) = parsed.get("src").and_then(Value::as_str) else {
            return error_line(
                &id,
                &ServeError::BadRequest("request needs `src`, `key`, or `cmd`".to_owned()),
            );
        };
        let machine = match parsed.get("machine") {
            None => self.inner.config.machine.clone(),
            Some(overrides) => {
                match machine_with_overrides(&self.inner.config.machine, overrides) {
                    Ok(m) => m,
                    Err(msg) => return error_line(&id, &ServeError::BadRequest(msg)),
                }
            }
        };
        let deadline = match parsed.get("deadline_ms") {
            None => None,
            Some(v) => match v.as_int() {
                Some(ms) if ms >= 0 => Some(Duration::from_millis(ms as u64)),
                _ => {
                    return error_line(
                        &id,
                        &ServeError::BadRequest(
                            "`deadline_ms` must be a non-negative integer".to_owned(),
                        ),
                    )
                }
            },
        };
        let canon = match Self::canon_src(src, &machine) {
            Ok(c) => c,
            Err(e) => return error_line(&id, &e),
        };
        let names = canon.names.clone();
        match self.submit_canon(canon, machine, deadline) {
            Ok(served) => success_line_named(&id, &served, &names),
            Err(e) => error_line(&id, &e),
        }
    }

    /// Drops every cached plan (bench cold path; counters survive).
    pub fn clear_cache(&self) {
        self.inner.cache.clear();
    }

    /// Current counters as a JSON object (fixed member order).
    pub fn stats_json(&self) -> String {
        let c = &self.inner.cache.stats;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "{{\"cached_plans\":{},\"hits\":{},\"misses\":{},\"inserts\":{},\
             \"evictions\":{},\"collisions\":{},\"singleflight_dedups\":{},\
             \"timeouts\":{},\"overloads\":{}}}",
            self.inner.cache.len(),
            load(&c.hits),
            load(&c.misses),
            load(&c.inserts),
            load(&c.evictions),
            load(&c.collisions),
            load(&self.inner.dedups),
            load(&self.inner.timeouts),
            load(&self.inner.overloads),
        )
    }

    /// Number of single-flight deduplications so far.
    pub fn dedup_count(&self) -> u64 {
        self.inner.dedups.load(Ordering::Relaxed)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The batcher: drains up to `max_batch` jobs per flush and fans them
/// out on the work-stealing pool. Results are published cache-first,
/// then the in-flight entry is retired, then waiters are woken — so at
/// every instant a request either hits the cache or finds the flight.
fn batch_loop(inner: &Inner) {
    let obs = &inner.config.obs;
    loop {
        let jobs: Vec<Job> = {
            let mut queue = inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !queue.is_empty() {
                    break;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let take = queue.len().min(inner.config.max_batch.max(1));
            queue.drain(..take).collect()
        };
        obs.add("serve.batch.flushes", 1);
        obs.record("serve.batch.size", jobs.len() as u64);
        let threads = if inner.config.solver_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            inner.config.solver_threads
        };
        let _span = obs.span("serve.batch.solve");
        let plans = aqua_lp::batch::run_parallel_threads(jobs.len(), threads, |i| {
            compile_plan(&jobs[i].canon, &jobs[i].machine, obs)
        });
        for (job, plan) in jobs.into_iter().zip(plans) {
            let served = Served {
                key: job.canon.key,
                plan: Arc::from(plan),
            };
            inner.cache.insert(
                job.canon.key,
                Arc::clone(&job.canon.encoding),
                served.clone(),
            );
            inner
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&job.canon.key);
            job.flight.complete(Ok(served));
        }
    }
}

fn success_line(id: &str, served: &Served) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"key\":\"{}\",\"plan\":{}}}",
        canon::key_hex(served.key),
        served.plan
    )
}

/// Success line with the request's `names` array (canonical node id →
/// the request's own name for it). Attached outside the cached plan, so
/// renamed-but-isomorphic requests share plan bytes while each client
/// still gets its own mapping.
fn success_line_named(id: &str, served: &Served, names: &[String]) -> String {
    let mut rendered = String::from("[");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            rendered.push(',');
        }
        rendered.push_str(&quote(name));
    }
    rendered.push(']');
    format!(
        "{{\"id\":{id},\"ok\":true,\"key\":\"{}\",\"names\":{rendered},\"plan\":{}}}",
        canon::key_hex(served.key),
        served.plan
    )
}

fn error_line(id: &str, error: &ServeError) -> String {
    let tag = match error {
        ServeError::BadRequest(_) => "bad_request",
        ServeError::Overloaded => "overloaded",
        ServeError::Timeout => "timeout",
        ServeError::UnknownKey => "unknown_key",
    };
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":\"{tag}\",\"message\":{}}}",
        quote(&error.to_string())
    )
}

/// Re-renders a parsed value (used to echo request ids verbatim).
fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(x) => format!("{x}"),
        Value::Str(s) => quote(s),
        Value::Arr(items) => {
            let mut out = String::from("[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&render_value(item));
            }
            out.push(']');
            out
        }
        Value::Obj(members) => {
            let mut out = String::from("{");
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", quote(k), render_value(item));
            }
            out.push('}');
            out
        }
    }
}

fn ratio_field(v: &Value, what: &str) -> Result<Ratio, String> {
    match v {
        Value::Int(n) => Ratio::new(*n as i128, 1).map_err(|e| format!("{what}: {e}")),
        Value::Str(s) => {
            let (num, den) = match s.split_once('/') {
                Some((n, d)) => (n, d),
                None => (s.as_str(), "1"),
            };
            let num: i128 = num
                .trim()
                .parse()
                .map_err(|_| format!("{what}: bad ratio `{s}`"))?;
            let den: i128 = den
                .trim()
                .parse()
                .map_err(|_| format!("{what}: bad ratio `{s}`"))?;
            Ratio::new(num, den).map_err(|e| format!("{what}: {e}"))
        }
        _ => Err(format!("{what} must be an integer or a `num/den` string")),
    }
}

fn count_field(v: &Value, what: &str) -> Result<usize, String> {
    match v.as_int() {
        Some(n) if n >= 0 => Ok(n as usize),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

/// Builds a request machine from the configured base plus a `machine`
/// override object. Every overridable field participates in the cache
/// key (see `canon`), so overrides can never be served a stale plan.
fn machine_with_overrides(base: &Machine, overrides: &Value) -> Result<Machine, String> {
    if !matches!(overrides, Value::Obj(_)) {
        return Err("`machine` must be an object".to_owned());
    }
    let cap = match overrides.get("max_capacity_nl") {
        Some(v) => ratio_field(v, "machine.max_capacity_nl")?,
        None => base.max_capacity_nl(),
    };
    let lc = match overrides.get("least_count_nl") {
        Some(v) => ratio_field(v, "machine.least_count_nl")?,
        None => base.least_count_nl(),
    };
    let mut machine = Machine::new(cap, lc).map_err(|e| e.to_string())?;
    machine.reservoirs = base.reservoirs;
    machine.mixers = base.mixers;
    machine.heaters = base.heaters;
    machine.separators = base.separators;
    machine.sensors = base.sensors;
    machine.input_ports = base.input_ports;
    if let Some(v) = overrides.get("reservoirs") {
        machine.reservoirs = count_field(v, "reservoirs")?;
    }
    if let Some(v) = overrides.get("mixers") {
        machine.mixers = count_field(v, "mixers")?;
    }
    if let Some(v) = overrides.get("heaters") {
        machine.heaters = count_field(v, "heaters")?;
    }
    if let Some(v) = overrides.get("separators") {
        machine.separators = count_field(v, "separators")?;
    }
    if let Some(v) = overrides.get("sensors") {
        machine.sensors = count_field(v, "sensors")?;
    }
    if let Some(v) = overrides.get("input_ports") {
        machine.input_ports = count_field(v, "input_ports")?;
    }
    Ok(machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

    fn service(config: ServiceConfig) -> Service {
        Service::new(config)
    }

    #[test]
    fn warm_hit_is_byte_identical_to_cold() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        let cold = svc.submit_src(TINY, &machine, None).unwrap();
        let warm = svc.submit_src(TINY, &machine, None).unwrap();
        assert_eq!(cold.key, warm.key);
        assert_eq!(cold.plan, warm.plan);
        assert_eq!(svc.inner.cache.stats.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn key_lookup_serves_without_compiling() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        let cold = svc.submit_src(TINY, &machine, None).unwrap();
        let by_key = svc.submit_key(cold.key).unwrap();
        assert_eq!(by_key.plan, cold.plan);
        assert_eq!(
            svc.submit_key(cold.key ^ 1).unwrap_err(),
            ServeError::UnknownKey
        );
    }

    #[test]
    fn zero_capacity_queue_rejects_with_overloaded() {
        let svc = service(ServiceConfig {
            queue_capacity: 0,
            ..ServiceConfig::default()
        });
        let machine = Machine::paper_default();
        let err = svc.submit_src(TINY, &machine, None).unwrap_err();
        assert_eq!(err, ServeError::Overloaded);
    }

    #[test]
    fn zero_deadline_times_out_before_enqueueing() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        let err = svc
            .submit_src(TINY, &machine, Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::Timeout);
        // ...but a cache hit is served even with no time budget.
        svc.submit_src(TINY, &machine, None).unwrap();
        svc.submit_src(TINY, &machine, Some(Duration::ZERO))
            .unwrap();
    }

    #[test]
    fn handle_line_roundtrips_the_protocol() {
        let svc = service(ServiceConfig::default());
        let resp = svc.handle_line(&format!("{{\"id\":1,\"src\":{}}}", quote(TINY)));
        let v = json::parse(&resp).expect("response is valid JSON");
        assert_eq!(v.get("id").unwrap().as_int(), Some(1));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let key = v.get("key").unwrap().as_str().unwrap().to_owned();
        let replay = svc.handle_line(&format!("{{\"id\":2,\"key\":{}}}", quote(&key)));
        let rv = json::parse(&replay).unwrap();
        assert_eq!(rv.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(rv.get("plan"), v.get("plan"));
    }

    #[test]
    fn machine_override_changes_the_key() {
        let svc = service(ServiceConfig::default());
        let r1 = svc.handle_line(&format!("{{\"id\":1,\"src\":{}}}", quote(TINY)));
        let r2 = svc.handle_line(&format!(
            "{{\"id\":2,\"src\":{},\"machine\":{{\"least_count_nl\":\"1/5\"}}}}",
            quote(TINY)
        ));
        let k1 = json::parse(&r1)
            .unwrap()
            .get("key")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let k2 = json::parse(&r2)
            .unwrap()
            .get("key")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert_ne!(k1, k2);
    }

    #[test]
    fn malformed_lines_get_bad_request() {
        let svc = service(ServiceConfig::default());
        for line in ["not json", "{}", "{\"id\":3,\"key\":\"zz\"}"] {
            let resp = svc.handle_line(line);
            let v = json::parse(&resp).expect("error response is valid JSON");
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        }
    }
}
