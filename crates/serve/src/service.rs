//! The plan-compilation service: routing, admission, single-flight,
//! batching, durability.
//!
//! Request lifecycle (every stage is spanned through `aqua-obs`):
//!
//! 1. **Canonicalize** — the request's DAG, output weights, and machine
//!    are folded into a [`Canon`] whose key addresses the cache.
//! 2. **Route** — the key picks a worker shard on a consistent-hash
//!    ring (see [`crate::shard`]). Each worker owns its own LRU,
//!    single-flight table, queue, and batcher thread, so shards never
//!    contend on one lock.
//! 3. **Cache probe** — a hit (with encoding verification) returns the
//!    cached plan bytes immediately. Hits bypass tenant admission:
//!    they cost nanoseconds and shedding them would punish warm
//!    tenants for cold ones.
//! 4. **Tenant admission** — a miss is charged against its tenant's
//!    concurrency quota, and a leader enqueue against the tenant's
//!    queue quota; exceeding either sheds the request with the typed
//!    [`ServeError::Shedding`] rejection (`serve.tenant.*` counters).
//! 5. **Single-flight admission** — concurrent misses for the *same*
//!    key coalesce onto one in-flight compile; only the first becomes a
//!    queued job, the rest wait on its in-flight entry. Distinct misses
//!    enter the worker's bounded queue; a full queue rejects with
//!    [`ServeError::Overloaded`] instead of building unbounded backlog.
//! 6. **Batched solve** — each worker's batcher drains up to
//!    `max_batch` queued jobs and fans them out on `aqua_lp::batch`'s
//!    work-stealing pool, appends the results to the persistent plan
//!    store (when configured), then publishes cache-first so later
//!    requests hit before the in-flight entry is retired.
//! 7. **Deadlines** — every request carries a deadline, clamped to
//!    [`ServiceConfig::max_deadline_ms`] (a hostile `deadline_ms` can
//!    therefore never overflow `Instant + Duration`); waiting past it
//!    returns [`ServeError::Timeout`]. A request admitted with an
//!    already-expired deadline times out deterministically *before*
//!    enqueueing, which the golden protocol tests rely on.
//!
//! With a [`StoreConfig`] set, the service rehydrates every durable
//! plan into the worker caches at startup, so warm-equals-cold
//! byte-identity survives a process restart (proven end-to-end by
//! `bench_serve`'s kill-and-restart phase).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aqua_dag::{Dag, NodeId};
use aqua_obs::fleet::FleetSink;
use aqua_obs::Obs;
use aqua_rational::Ratio;
use aqua_volume::Machine;

use crate::cache::ShardedLru;
use crate::canon::{self, Canon};
use crate::json::{self, quote, Value};
use crate::plan::compile_plan;
use crate::session::SessionStore;
use crate::shard::Ring;
use crate::store::{PlanStore, StoreConfig};

/// The tenant misses are charged to when a request names none.
pub const DEFAULT_TENANT: &str = "default";

/// Longest accepted tenant name on the wire (the tenant table is
/// bounded by live requests, but a multi-megabyte tenant string would
/// still be copied around).
const MAX_TENANT_BYTES: usize = 128;

/// Service tuning knobs. [`Default`] matches the paper machine and
/// production-ish queue/cache sizes; tests shrink them to force the
/// Overloaded/Timeout/Shedding/eviction paths deterministically.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Machine plans are compiled for unless the request overrides it.
    pub machine: Machine,
    /// Total cached plans across all workers (each worker's LRU holds
    /// `ceil(cache_capacity / worker_shards)`).
    pub cache_capacity: usize,
    /// Independently locked cache shards *per worker*.
    pub cache_shards: usize,
    /// Worker shards keys are consistently hashed over; each owns its
    /// LRU + single-flight table + queue + batcher thread.
    pub worker_shards: usize,
    /// Bound on queued (admitted, not yet solved) jobs across the
    /// service; each worker's queue holds `ceil(queue_capacity /
    /// worker_shards)`. `0` rejects every miss with `Overloaded` (used
    /// by the golden tests).
    pub queue_capacity: usize,
    /// Worker threads for each batch solve; `0` = all available cores.
    pub solver_threads: usize,
    /// Most jobs drained per batch flush.
    pub max_batch: usize,
    /// Deadline applied to requests that don't carry one, in ms.
    pub default_deadline_ms: u64,
    /// Hard cap on any request deadline, in ms. Wire requests above it
    /// are rejected with [`ServeError::DeadlineTooLarge`]; programmatic
    /// deadlines are clamped. Keeps a hostile `deadline_ms` from
    /// overflowing `Instant + Duration` (which panics).
    pub max_deadline_ms: u64,
    /// Longest accepted NDJSON request line, in bytes; longer lines get
    /// the typed [`ServeError::TooLarge`] response (see
    /// [`crate::server::serve_lines`]).
    pub max_line_bytes: usize,
    /// Per-tenant cap on concurrent miss-path requests (compiles being
    /// waited on). Exceeding it sheds with [`ServeError::Shedding`].
    pub tenant_max_inflight: usize,
    /// Per-tenant cap on queued (leader) compile jobs.
    pub tenant_max_queued: usize,
    /// Per-tenant cap on live push-mode sessions (each session pins its
    /// DAG, canonical form, plan bytes, and solve trace in memory).
    /// Exceeding it rejects `session.register` with
    /// [`ServeError::SessionQuota`].
    pub tenant_max_sessions: usize,
    /// Persistent plan store; `None` keeps the service memory-only.
    pub store: Option<StoreConfig>,
    /// Observability handle threaded through admission → cache → solve.
    pub obs: Obs,
    /// Fleet roll-up served live over the wire: when set, the
    /// `obs.snapshot` command renders this aggregator's merged
    /// [`aqua_obs::fleet::FleetSnapshot`] and `obs.reset` clears it.
    /// Callers typically also route `obs` (or a replay fleet's obs
    /// handle) into the same sink so the roll-up is byte-comparable to
    /// a locally rendered snapshot.
    pub fleet: Option<Arc<FleetSink>>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            machine: Machine::paper_default(),
            cache_capacity: 1024,
            cache_shards: 8,
            worker_shards: 4,
            queue_capacity: 256,
            solver_threads: 0,
            max_batch: 16,
            default_deadline_ms: 30_000,
            max_deadline_ms: 600_000,
            max_line_bytes: 1 << 20,
            tenant_max_inflight: 64,
            tenant_max_queued: 32,
            tenant_max_sessions: 8,
            store: None,
            obs: Obs::off(),
            fleet: None,
        }
    }
}

/// Typed request rejections (the wire `error` field is the lowercase
/// tag in `error_line`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request could not be parsed, lowered, or canonicalized.
    BadRequest(String),
    /// The admission queue was full.
    Overloaded,
    /// The deadline expired before the plan was ready.
    Timeout,
    /// A key-addressed lookup missed the cache.
    UnknownKey,
    /// The tenant exceeded its concurrency or queue quota; the request
    /// was shed to protect other tenants.
    Shedding,
    /// The request's `deadline_ms` exceeded the service cap.
    DeadlineTooLarge {
        /// The configured [`ServiceConfig::max_deadline_ms`].
        max_ms: u64,
    },
    /// The request line exceeded the configured byte cap.
    TooLarge {
        /// The configured [`ServiceConfig::max_line_bytes`].
        max_bytes: usize,
    },
    /// The persistent plan store failed to open (startup only; never a
    /// wire response).
    Store(String),
    /// A `session.edit`/`session.close` named a session that does not
    /// exist (or belongs to another tenant).
    UnknownSession,
    /// The tenant already holds [`ServiceConfig::tenant_max_sessions`]
    /// live sessions.
    SessionQuota {
        /// The configured per-tenant session cap.
        max: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Overloaded => write!(f, "admission queue is full"),
            ServeError::Timeout => write!(f, "deadline expired before the plan was ready"),
            ServeError::UnknownKey => write!(f, "no cached plan under this key"),
            ServeError::Shedding => write!(f, "tenant quota exceeded; request shed"),
            ServeError::DeadlineTooLarge { max_ms } => {
                write!(f, "`deadline_ms` exceeds the service cap of {max_ms} ms")
            }
            ServeError::TooLarge { max_bytes } => {
                write!(f, "request line exceeds {max_bytes} bytes")
            }
            ServeError::Store(m) => write!(f, "plan store: {m}"),
            ServeError::UnknownSession => write!(f, "no such session for this tenant"),
            ServeError::SessionQuota { max } => {
                write!(f, "tenant already holds {max} live session(s)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A served plan: the content key plus the rendered plan bytes (shared,
/// so cache hits never copy the document).
#[derive(Debug, Clone)]
pub struct Served {
    /// Content-addressed cache key.
    pub key: u128,
    /// The plan document (JSON object, fixed member order).
    pub plan: Arc<str>,
}

/// One in-flight compile that any number of deduplicated waiters block
/// on.
struct Flight {
    done: Mutex<Option<Result<Served, ServeError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Served, ServeError>) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = Some(result);
        self.cv.notify_all();
    }
}

struct Job {
    canon: Canon,
    machine: Machine,
    tenant: String,
    flight: Arc<Flight>,
}

/// One worker shard: an LRU, a single-flight table, and a bounded
/// queue its dedicated batcher drains. Workers share nothing but the
/// tenant table and counters, so routing distributes lock pressure.
struct Worker {
    cache: ShardedLru,
    inflight: Mutex<HashMap<u128, Arc<Flight>>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
}

#[derive(Default)]
struct TenantState {
    inflight: usize,
    queued: usize,
}

struct Inner {
    config: ServiceConfig,
    ring: Ring,
    workers: Vec<Worker>,
    sessions: SessionStore,
    store: Option<Mutex<PlanStore>>,
    tenants: Mutex<HashMap<String, TenantState>>,
    per_worker_queue: usize,
    shutdown: AtomicBool,
    dedups: AtomicU64,
    timeouts: AtomicU64,
    overloads: AtomicU64,
    sheds: AtomicU64,
}

impl Inner {
    fn worker(&self, key: u128) -> &Worker {
        &self.workers[self.ring.route(key)]
    }
}

/// Decrements a tenant's inflight count when a miss-path request
/// leaves the service (any path: served, timed out, overloaded).
struct TenantGuard<'a> {
    inner: &'a Inner,
    tenant: &'a str,
}

impl Drop for TenantGuard<'_> {
    fn drop(&mut self) {
        let mut tenants = self
            .inner
            .tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(state) = tenants.get_mut(self.tenant) {
            state.inflight = state.inflight.saturating_sub(1);
            if state.inflight == 0 && state.queued == 0 {
                tenants.remove(self.tenant);
            }
        }
    }
}

/// The multi-threaded plan-compilation service. Cheap to share behind
/// an [`Arc`]; dropping the last handle shuts the batchers down after
/// they drain their queues.
pub struct Service {
    inner: Arc<Inner>,
    batchers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service (and its per-worker batcher threads) with the
    /// given config.
    ///
    /// # Panics
    ///
    /// If a persistent store is configured and fails to open; use
    /// [`Service::try_new`] to handle that case.
    pub fn new(config: ServiceConfig) -> Service {
        Service::try_new(config).expect("service init")
    }

    /// Starts a service, opening (and rehydrating from) the persistent
    /// plan store when one is configured.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] if the store directory cannot be opened
    /// or recovered. A memory-only config never fails.
    pub fn try_new(config: ServiceConfig) -> Result<Service, ServeError> {
        let worker_shards = config.worker_shards.max(1);
        let per_worker_cache = config.cache_capacity.div_ceil(worker_shards).max(1);
        let per_worker_queue = if config.queue_capacity == 0 {
            0
        } else {
            config.queue_capacity.div_ceil(worker_shards)
        };
        let workers: Vec<Worker> = (0..worker_shards)
            .map(|_| Worker {
                cache: ShardedLru::new(per_worker_cache, config.cache_shards, config.obs.clone()),
                inflight: Mutex::new(HashMap::new()),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
            })
            .collect();
        let ring = Ring::new(worker_shards);

        // Open the store and rehydrate the worker caches before any
        // request can race the warm state.
        let mut store = None;
        if let Some(store_config) = config.store.clone() {
            let (opened, records, report) =
                PlanStore::open(store_config).map_err(|e| ServeError::Store(e.to_string()))?;
            for record in records {
                let worker = &workers[ring.route(record.key)];
                worker.cache.insert(
                    record.key,
                    record.encoding,
                    Served {
                        key: record.key,
                        plan: record.plan,
                    },
                );
            }
            config
                .obs
                .add("serve.store.rehydrated", report.records as u64);
            if report.truncated_bytes > 0 || report.torn_records > 0 {
                config
                    .obs
                    .add("serve.store.torn_records", report.torn_records as u64);
                eprintln!(
                    "aqua-serve: store recovery dropped {} torn record(s), truncated {} byte(s)",
                    report.torn_records, report.truncated_bytes
                );
            }
            store = Some(Mutex::new(opened));
        }

        let inner = Arc::new(Inner {
            ring,
            workers,
            sessions: SessionStore::new(),
            store,
            tenants: Mutex::new(HashMap::new()),
            per_worker_queue,
            config,
            shutdown: AtomicBool::new(false),
            dedups: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        });
        let batchers = (0..worker_shards)
            .map(|w| {
                let worker_inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("aqua-serve-batch-{w}"))
                    .spawn(move || batch_loop(&worker_inner, w))
                    .expect("spawn batcher thread")
            })
            .collect();
        Ok(Service { inner, batchers })
    }

    /// Canonicalizes assay source text against `machine` without
    /// submitting it (used by the bench harness and tests to learn a
    /// request's key up front).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on parse/lower/canonicalization
    /// failures.
    pub fn canon_src(src: &str, machine: &Machine) -> Result<Canon, ServeError> {
        let flat =
            aqua_lang::compile_to_flat(src).map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let (dag, map) = aqua_compiler::lower_to_dag(&flat)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        canon::canonicalize(&dag, &map.output_weights, machine)
            .map_err(|e| ServeError::BadRequest(e.to_string()))
    }

    /// Compiles (or serves from cache) a plan for assay source text.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see the module docs for the lifecycle.
    pub fn submit_src(
        &self,
        src: &str,
        machine: &Machine,
        deadline: Option<Duration>,
    ) -> Result<Served, ServeError> {
        let canon = Self::canon_src(src, machine)?;
        self.submit_canon(canon, machine.clone(), deadline)
    }

    /// Compiles (or serves from cache) a plan for an explicit DAG and
    /// output-weight map.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see the module docs for the lifecycle.
    pub fn submit_dag(
        &self,
        dag: &Dag,
        weights: &HashMap<NodeId, u64>,
        machine: &Machine,
        deadline: Option<Duration>,
    ) -> Result<Served, ServeError> {
        let canon = canon::canonicalize(dag, weights, machine)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        self.submit_canon(canon, machine.clone(), deadline)
    }

    /// Key-addressed lookup: serves a previously compiled plan without
    /// re-running the front end. Never compiles.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownKey`] if the key is not cached.
    pub fn submit_key(&self, key: u128) -> Result<Served, ServeError> {
        self.inner
            .worker(key)
            .cache
            .get_by_key(key)
            .ok_or(ServeError::UnknownKey)
    }

    /// Submits an already-canonicalized request under the default
    /// tenant.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see the module docs for the lifecycle.
    pub fn submit_canon(
        &self,
        canon: Canon,
        machine: Machine,
        deadline: Option<Duration>,
    ) -> Result<Served, ServeError> {
        self.submit_canon_tenant(canon, machine, deadline, DEFAULT_TENANT)
    }

    /// Submits an already-canonicalized request, charging any miss to
    /// `tenant`'s admission quotas.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see the module docs for the lifecycle.
    pub fn submit_canon_tenant(
        &self,
        canon: Canon,
        machine: Machine,
        deadline: Option<Duration>,
        tenant: &str,
    ) -> Result<Served, ServeError> {
        let inner = &*self.inner;
        let obs = &inner.config.obs;
        let _span = obs.span("serve.submit");
        // Clamp before the Instant addition: `now + huge Duration`
        // panics, and a wire client controls `deadline_ms`.
        let deadline_ms = deadline
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(inner.config.default_deadline_ms)
            .min(inner.config.max_deadline_ms);
        let deadline_at = Instant::now()
            .checked_add(Duration::from_millis(deadline_ms))
            .unwrap_or_else(Instant::now);
        let key = canon.key;
        let worker = inner.worker(key);

        if let Some(hit) = worker.cache.get(key, &canon.encoding) {
            return Ok(hit);
        }

        // Miss path: charge the tenant's concurrency quota for the
        // whole wait (the guard releases it on every exit path).
        let _tenant_guard = inner.admit_tenant(tenant)?;

        let flight = {
            let mut inflight = worker
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // Re-probe under the lock: the batcher publishes cache-first,
            // so a just-finished compile is visible here.
            if let Some(hit) = worker.cache.get(key, &canon.encoding) {
                return Ok(hit);
            }
            if let Some(flight) = inflight.get(&key) {
                inner.dedups.fetch_add(1, Ordering::Relaxed);
                obs.add("serve.singleflight.dedup", 1);
                Arc::clone(flight)
            } else {
                // The leader for this key. An already-expired deadline
                // cannot wait for any compile: reject before admitting.
                if Instant::now() >= deadline_at {
                    inner.timeouts.fetch_add(1, Ordering::Relaxed);
                    obs.add("serve.timeout", 1);
                    return Err(ServeError::Timeout);
                }
                // A leader also holds a slot in the tenant's queue
                // quota until the batcher drains its job.
                inner.charge_tenant_queue(tenant)?;
                let flight = Arc::new(Flight::new());
                {
                    let mut queue = worker.queue.lock().unwrap_or_else(PoisonError::into_inner);
                    if queue.len() >= inner.per_worker_queue {
                        drop(queue);
                        inner.release_tenant_queue(tenant);
                        inner.overloads.fetch_add(1, Ordering::Relaxed);
                        obs.add("serve.overloaded", 1);
                        return Err(ServeError::Overloaded);
                    }
                    queue.push_back(Job {
                        canon,
                        machine,
                        tenant: tenant.to_owned(),
                        flight: Arc::clone(&flight),
                    });
                }
                worker.queue_cv.notify_one();
                inflight.insert(key, Arc::clone(&flight));
                flight
            }
        };

        let mut done = flight.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = done.clone() {
                return result;
            }
            let now = Instant::now();
            if now >= deadline_at {
                inner.timeouts.fetch_add(1, Ordering::Relaxed);
                obs.add("serve.timeout", 1);
                return Err(ServeError::Timeout);
            }
            let (guard, _) = flight
                .cv
                .wait_timeout(done, deadline_at - now)
                .unwrap_or_else(PoisonError::into_inner);
            done = guard;
        }
    }

    /// Handles one NDJSON request line and renders the response line
    /// (no trailing newline). Never panics on malformed input.
    pub fn handle_line(&self, line: &str) -> String {
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return error_line(
                    "null",
                    &ServeError::BadRequest(format!("invalid JSON: {e}")),
                )
            }
        };
        let id = parsed
            .get("id")
            .map(render_value)
            .unwrap_or_else(|| "null".to_owned());

        if let Some(cmd) = parsed.get("cmd").and_then(Value::as_str) {
            return match cmd {
                "stats" => format!(
                    "{{\"id\":{id},\"ok\":true,\"stats\":{}}}",
                    self.stats_json()
                ),
                "clear_cache" => {
                    self.clear_cache();
                    format!("{{\"id\":{id},\"ok\":true}}")
                }
                "obs.snapshot" => match &self.inner.config.fleet {
                    Some(fleet) => format!(
                        "{{\"id\":{id},\"ok\":true,\"obs\":{}}}",
                        fleet.snapshot().to_json()
                    ),
                    None => error_line(
                        &id,
                        &ServeError::BadRequest(
                            "no fleet aggregator attached (start with --obs)".to_owned(),
                        ),
                    ),
                },
                "obs.reset" => match &self.inner.config.fleet {
                    Some(fleet) => {
                        fleet.reset();
                        format!("{{\"id\":{id},\"ok\":true}}")
                    }
                    None => error_line(
                        &id,
                        &ServeError::BadRequest(
                            "no fleet aggregator attached (start with --obs)".to_owned(),
                        ),
                    ),
                },
                "session.register" => self.session_register(&id, &parsed),
                "session.edit" => self.session_edit(&id, &parsed),
                "session.close" => self.session_close(&id, &parsed),
                other => error_line(
                    &id,
                    &ServeError::BadRequest(format!("unknown command `{other}`")),
                ),
            };
        }

        if let Some(key_field) = parsed.get("key") {
            let result = match key_field.as_str().and_then(canon::parse_key_hex) {
                None => Err(ServeError::BadRequest(
                    "`key` must be a 32-hex-digit string".to_owned(),
                )),
                Some(key) => self.submit_key(key),
            };
            return match result {
                Ok(served) => success_line(&id, &served),
                Err(e) => error_line(&id, &e),
            };
        }

        let Some(src) = parsed.get("src").and_then(Value::as_str) else {
            return error_line(
                &id,
                &ServeError::BadRequest("request needs `src`, `key`, or `cmd`".to_owned()),
            );
        };
        let machine = match parsed.get("machine") {
            None => self.inner.config.machine.clone(),
            Some(overrides) => {
                match machine_with_overrides(&self.inner.config.machine, overrides) {
                    Ok(m) => m,
                    Err(msg) => return error_line(&id, &ServeError::BadRequest(msg)),
                }
            }
        };
        let deadline = match parsed.get("deadline_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                None => {
                    return error_line(
                        &id,
                        &ServeError::BadRequest(
                            "`deadline_ms` must be a non-negative integer".to_owned(),
                        ),
                    )
                }
                Some(ms) if ms > self.inner.config.max_deadline_ms => {
                    return error_line(
                        &id,
                        &ServeError::DeadlineTooLarge {
                            max_ms: self.inner.config.max_deadline_ms,
                        },
                    )
                }
                Some(ms) => Some(Duration::from_millis(ms)),
            },
        };
        let tenant = match parsed.get("tenant") {
            None => DEFAULT_TENANT,
            Some(v) => match v.as_str() {
                Some(t) if t.len() <= MAX_TENANT_BYTES && !t.is_empty() => t,
                _ => {
                    return error_line(
                        &id,
                        &ServeError::BadRequest(format!(
                        "`tenant` must be a non-empty string of at most {MAX_TENANT_BYTES} bytes"
                    )),
                    )
                }
            },
        };
        let canon = match Self::canon_src(src, &machine) {
            Ok(c) => c,
            Err(e) => return error_line(&id, &e),
        };
        let names = canon.names.clone();
        match self.submit_canon_tenant(canon, machine, deadline, tenant) {
            Ok(served) => success_line_named(&id, &served, &names),
            Err(e) => error_line(&id, &e),
        }
    }

    /// Handles `session.register`: parse + lower the source, compile it
    /// cold (retaining the solve trace), pin the session, and publish
    /// the plan into the shared cache.
    fn session_register(&self, id: &str, parsed: &Value) -> String {
        let tenant = match tenant_field(parsed) {
            Ok(t) => t,
            Err(e) => return error_line(id, &e),
        };
        let Some(src) = parsed.get("src").and_then(Value::as_str) else {
            return error_line(
                id,
                &ServeError::BadRequest("`session.register` needs `src`".to_owned()),
            );
        };
        let machine = match parsed.get("machine") {
            None => self.inner.config.machine.clone(),
            Some(overrides) => {
                match machine_with_overrides(&self.inner.config.machine, overrides) {
                    Ok(m) => m,
                    Err(msg) => return error_line(id, &ServeError::BadRequest(msg)),
                }
            }
        };
        let flat = match aqua_lang::compile_to_flat(src) {
            Ok(f) => f,
            Err(e) => return error_line(id, &ServeError::BadRequest(e.to_string())),
        };
        let (dag, map) = match aqua_compiler::lower_to_dag(&flat) {
            Ok(x) => x,
            Err(e) => return error_line(id, &ServeError::BadRequest(e.to_string())),
        };
        match self.inner.sessions.register(
            tenant,
            dag,
            map.output_weights,
            machine,
            self.inner.config.tenant_max_sessions,
            self.obs(),
        ) {
            Ok(reg) => {
                self.publish_session_plan(reg.key, &reg.encoding, &reg.plan);
                let mut names = String::from("[");
                for (i, name) in reg.names.iter().enumerate() {
                    if i > 0 {
                        names.push(',');
                    }
                    names.push_str(&quote(name));
                }
                names.push(']');
                format!(
                    "{{\"id\":{id},\"ok\":true,\"session\":{},\"key\":\"{}\",\
                     \"names\":{names},\"plan\":{}}}",
                    quote(&reg.id),
                    canon::key_hex(reg.key),
                    reg.plan
                )
            }
            Err(e) => error_line(id, &e),
        }
    }

    /// Handles `session.edit`: replan the session's DAG under one edit
    /// (dirty-slice replay when possible, typed cold fallback
    /// otherwise) and answer with a plan delta.
    fn session_edit(&self, id: &str, parsed: &Value) -> String {
        let tenant = match tenant_field(parsed) {
            Ok(t) => t,
            Err(e) => return error_line(id, &e),
        };
        let Some(sid) = parsed.get("session").and_then(Value::as_str) else {
            return error_line(
                id,
                &ServeError::BadRequest("`session.edit` needs `session`".to_owned()),
            );
        };
        let Some(edit) = parsed.get("edit") else {
            return error_line(
                id,
                &ServeError::BadRequest("`session.edit` needs `edit`".to_owned()),
            );
        };
        match self.inner.sessions.edit(sid, tenant, edit, self.obs()) {
            Ok(ed) => {
                if ed.changed {
                    self.publish_session_plan(ed.key, &ed.encoding, &ed.plan);
                }
                let mut out = format!(
                    "{{\"id\":{id},\"ok\":true,\"session\":{},\"key\":\"{}\",\"incremental\":{}",
                    quote(sid),
                    canon::key_hex(ed.key),
                    ed.incremental
                );
                if ed.incremental {
                    let _ = write!(out, ",\"slice\":{}", ed.slice);
                } else if let Some(cause) = ed.cause {
                    let _ = write!(out, ",\"cause\":\"{cause}\"");
                }
                let _ = write!(out, ",\"delta\":{}", ed.delta);
                out.push('}');
                out
            }
            Err(e) => error_line(id, &e),
        }
    }

    /// Handles `session.close`: drop the session's pinned state.
    fn session_close(&self, id: &str, parsed: &Value) -> String {
        let tenant = match tenant_field(parsed) {
            Ok(t) => t,
            Err(e) => return error_line(id, &e),
        };
        let Some(sid) = parsed.get("session").and_then(Value::as_str) else {
            return error_line(
                id,
                &ServeError::BadRequest("`session.close` needs `session`".to_owned()),
            );
        };
        match self.inner.sessions.close(sid, tenant, self.obs()) {
            Ok(()) => format!("{{\"id\":{id},\"ok\":true,\"closed\":{}}}", quote(sid)),
            Err(e) => error_line(id, &e),
        }
    }

    /// Number of live push-mode sessions across all tenants.
    pub fn session_count(&self) -> usize {
        self.inner.sessions.len()
    }

    /// Publishes a session-compiled plan into the shared cache (and the
    /// persistent store, when configured) so key-addressed requests for
    /// the same canonical form hit without recompiling. Session state
    /// itself is pinned in the registry — eviction from this cache
    /// never degrades a session to the full-recompile path.
    fn publish_session_plan(&self, key: u128, encoding: &Arc<[u8]>, plan: &Arc<str>) {
        let obs = self.obs();
        if let Some(store) = &self.inner.store {
            let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
            match store.append(key, encoding, plan) {
                Ok(true) => obs.add("serve.store.appends", 1),
                Ok(false) => {}
                Err(e) => {
                    obs.add("serve.store.errors", 1);
                    eprintln!("aqua-serve: store append failed: {e}");
                }
            }
        }
        let served = Served {
            key,
            plan: Arc::clone(plan),
        };
        self.inner
            .worker(key)
            .cache
            .insert(key, Arc::clone(encoding), served);
    }

    /// Drops every cached plan from memory (bench cold path; counters
    /// and the persistent store survive — a restart would rehydrate).
    pub fn clear_cache(&self) {
        for worker in &self.inner.workers {
            worker.cache.clear();
        }
    }

    /// Number of plans held by the persistent store (`0` without one).
    pub fn store_len(&self) -> usize {
        match &self.inner.store {
            None => 0,
            Some(store) => store.lock().unwrap_or_else(PoisonError::into_inner).len(),
        }
    }

    /// Compacts the persistent store's segments, if one is configured.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] on I/O failure.
    pub fn compact_store(&self) -> Result<usize, ServeError> {
        match &self.inner.store {
            None => Ok(0),
            Some(store) => store
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .compact()
                .map_err(|e| ServeError::Store(e.to_string())),
        }
    }

    /// Current counters as a JSON object (fixed member order), summed
    /// across all worker shards.
    pub fn stats_json(&self) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let sum = |f: fn(&crate::cache::CacheStats) -> &AtomicU64| -> u64 {
            self.inner
                .workers
                .iter()
                .map(|w| load(f(&w.cache.stats)))
                .sum()
        };
        let cached: usize = self.inner.workers.iter().map(|w| w.cache.len()).sum();
        format!(
            "{{\"cached_plans\":{},\"hits\":{},\"misses\":{},\"inserts\":{},\
             \"evictions\":{},\"collisions\":{},\"singleflight_dedups\":{},\
             \"timeouts\":{},\"overloads\":{},\"sheds\":{}}}",
            cached,
            sum(|c| &c.hits),
            sum(|c| &c.misses),
            sum(|c| &c.inserts),
            sum(|c| &c.evictions),
            sum(|c| &c.collisions),
            load(&self.inner.dedups),
            load(&self.inner.timeouts),
            load(&self.inner.overloads),
            load(&self.inner.sheds),
        )
    }

    /// Number of single-flight deduplications so far.
    pub fn dedup_count(&self) -> u64 {
        self.inner.dedups.load(Ordering::Relaxed)
    }

    /// Number of requests shed by tenant admission so far.
    pub fn shed_count(&self) -> u64 {
        self.inner.sheds.load(Ordering::Relaxed)
    }

    /// The configured request-line byte cap (used by the transports).
    pub fn max_line_bytes(&self) -> usize {
        self.inner.config.max_line_bytes
    }

    pub(crate) fn obs(&self) -> &Obs {
        &self.inner.config.obs
    }
}

impl Inner {
    /// Charges a miss to `tenant`'s concurrency quota, or sheds.
    fn admit_tenant<'a>(&'a self, tenant: &'a str) -> Result<TenantGuard<'a>, ServeError> {
        let obs = &self.config.obs;
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let state = tenants.entry(tenant.to_owned()).or_default();
        if state.inflight >= self.config.tenant_max_inflight {
            if state.inflight == 0 && state.queued == 0 {
                tenants.remove(tenant);
            }
            drop(tenants);
            self.sheds.fetch_add(1, Ordering::Relaxed);
            obs.add("serve.tenant.shed", 1);
            return Err(ServeError::Shedding);
        }
        state.inflight += 1;
        drop(tenants);
        obs.add("serve.tenant.admitted", 1);
        Ok(TenantGuard {
            inner: self,
            tenant,
        })
    }

    /// Charges a leader enqueue to `tenant`'s queue quota, or sheds.
    fn charge_tenant_queue(&self, tenant: &str) -> Result<(), ServeError> {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let state = tenants.entry(tenant.to_owned()).or_default();
        if state.queued >= self.config.tenant_max_queued {
            drop(tenants);
            self.sheds.fetch_add(1, Ordering::Relaxed);
            self.config.obs.add("serve.tenant.queue_shed", 1);
            self.config.obs.add("serve.tenant.shed", 1);
            return Err(ServeError::Shedding);
        }
        state.queued += 1;
        Ok(())
    }

    /// Releases one queued-job slot for `tenant` (enqueue failed or the
    /// batcher drained the job).
    fn release_tenant_queue(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(state) = tenants.get_mut(tenant) {
            state.queued = state.queued.saturating_sub(1);
            if state.inflight == 0 && state.queued == 0 {
                tenants.remove(tenant);
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for worker in &self.inner.workers {
            worker.queue_cv.notify_all();
        }
        for batcher in self.batchers.drain(..) {
            let _ = batcher.join();
        }
    }
}

/// One worker's batcher: drains up to `max_batch` jobs per flush and
/// fans them out on the work-stealing pool. Results are appended to the
/// persistent store (when configured), published cache-first, then the
/// in-flight entry is retired, then waiters are woken — so at every
/// instant a request either hits the cache or finds the flight.
fn batch_loop(inner: &Inner, worker_index: usize) {
    let obs = &inner.config.obs;
    let worker = &inner.workers[worker_index];
    loop {
        let jobs: Vec<Job> = {
            let mut queue = worker.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !queue.is_empty() {
                    break;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = worker
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let take = queue.len().min(inner.config.max_batch.max(1));
            queue.drain(..take).collect()
        };
        // The drained jobs no longer occupy tenant queue slots.
        for job in &jobs {
            inner.release_tenant_queue(&job.tenant);
        }
        obs.add("serve.batch.flushes", 1);
        obs.record("serve.batch.size", jobs.len() as u64);
        let threads = if inner.config.solver_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            inner.config.solver_threads
        };
        let _span = obs.span("serve.batch.solve");
        let plans = aqua_lp::batch::run_parallel_threads(jobs.len(), threads, |i| {
            compile_plan(&jobs[i].canon, &jobs[i].machine, obs)
        });
        for (job, plan) in jobs.into_iter().zip(plans) {
            if let Some(store) = &inner.store {
                let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
                match store.append(job.canon.key, &job.canon.encoding, &plan) {
                    Ok(true) => obs.add("serve.store.appends", 1),
                    Ok(false) => {}
                    Err(e) => {
                        // Durability is best-effort: keep serving from
                        // memory, but say so loudly.
                        obs.add("serve.store.errors", 1);
                        eprintln!("aqua-serve: store append failed: {e}");
                    }
                }
            }
            let served = Served {
                key: job.canon.key,
                plan: Arc::from(plan),
            };
            worker.cache.insert(
                job.canon.key,
                Arc::clone(&job.canon.encoding),
                served.clone(),
            );
            worker
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&job.canon.key);
            job.flight.complete(Ok(served));
        }
    }
}

fn success_line(id: &str, served: &Served) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"key\":\"{}\",\"plan\":{}}}",
        canon::key_hex(served.key),
        served.plan
    )
}

/// Success line with the request's `names` array (canonical node id →
/// the request's own name for it). Attached outside the cached plan, so
/// renamed-but-isomorphic requests share plan bytes while each client
/// still gets its own mapping.
fn success_line_named(id: &str, served: &Served, names: &[String]) -> String {
    let mut rendered = String::from("[");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            rendered.push(',');
        }
        rendered.push_str(&quote(name));
    }
    rendered.push(']');
    format!(
        "{{\"id\":{id},\"ok\":true,\"key\":\"{}\",\"names\":{rendered},\"plan\":{}}}",
        canon::key_hex(served.key),
        served.plan
    )
}

/// Extracts the request's tenant (same rules as the compile front
/// door: optional, non-empty, bounded length).
fn tenant_field(parsed: &Value) -> Result<&str, ServeError> {
    match parsed.get("tenant") {
        None => Ok(DEFAULT_TENANT),
        Some(v) => match v.as_str() {
            Some(t) if t.len() <= MAX_TENANT_BYTES && !t.is_empty() => Ok(t),
            _ => Err(ServeError::BadRequest(format!(
                "`tenant` must be a non-empty string of at most {MAX_TENANT_BYTES} bytes"
            ))),
        },
    }
}

pub(crate) fn error_line(id: &str, error: &ServeError) -> String {
    let tag = match error {
        ServeError::BadRequest(_) => "bad_request",
        ServeError::Overloaded => "overloaded",
        ServeError::Timeout => "timeout",
        ServeError::UnknownKey => "unknown_key",
        ServeError::Shedding => "shedding",
        ServeError::DeadlineTooLarge { .. } => "deadline_too_large",
        ServeError::TooLarge { .. } => "too_large",
        ServeError::Store(_) => "store",
        ServeError::UnknownSession => "unknown_session",
        ServeError::SessionQuota { .. } => "session_quota",
    };
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":\"{tag}\",\"message\":{}}}",
        quote(&error.to_string())
    )
}

/// Re-renders a parsed value (used to echo request ids verbatim).
fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(x) => format!("{x}"),
        Value::Str(s) => quote(s),
        Value::Arr(items) => {
            let mut out = String::from("[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&render_value(item));
            }
            out.push(']');
            out
        }
        Value::Obj(members) => {
            let mut out = String::from("{");
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", quote(k), render_value(item));
            }
            out.push('}');
            out
        }
    }
}

fn ratio_field(v: &Value, what: &str) -> Result<Ratio, String> {
    match v {
        Value::Int(n) => Ratio::new(*n as i128, 1).map_err(|e| format!("{what}: {e}")),
        Value::Str(s) => {
            let (num, den) = match s.split_once('/') {
                Some((n, d)) => (n, d),
                None => (s.as_str(), "1"),
            };
            let num: i128 = num
                .trim()
                .parse()
                .map_err(|_| format!("{what}: bad ratio `{s}`"))?;
            let den: i128 = den
                .trim()
                .parse()
                .map_err(|_| format!("{what}: bad ratio `{s}`"))?;
            Ratio::new(num, den).map_err(|e| format!("{what}: {e}"))
        }
        _ => Err(format!("{what} must be an integer or a `num/den` string")),
    }
}

fn count_field(v: &Value, what: &str) -> Result<usize, String> {
    match v.as_int() {
        Some(n) if n >= 0 => Ok(n as usize),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

/// Builds a request machine from the configured base plus a `machine`
/// override object. Every overridable field participates in the cache
/// key (see `canon`), so overrides can never be served a stale plan.
pub(crate) fn machine_with_overrides(base: &Machine, overrides: &Value) -> Result<Machine, String> {
    if !matches!(overrides, Value::Obj(_)) {
        return Err("`machine` must be an object".to_owned());
    }
    let cap = match overrides.get("max_capacity_nl") {
        Some(v) => ratio_field(v, "machine.max_capacity_nl")?,
        None => base.max_capacity_nl(),
    };
    let lc = match overrides.get("least_count_nl") {
        Some(v) => ratio_field(v, "machine.least_count_nl")?,
        None => base.least_count_nl(),
    };
    let mut machine = Machine::new(cap, lc).map_err(|e| e.to_string())?;
    machine.reservoirs = base.reservoirs;
    machine.mixers = base.mixers;
    machine.heaters = base.heaters;
    machine.separators = base.separators;
    machine.sensors = base.sensors;
    machine.input_ports = base.input_ports;
    if let Some(v) = overrides.get("reservoirs") {
        machine.reservoirs = count_field(v, "reservoirs")?;
    }
    if let Some(v) = overrides.get("mixers") {
        machine.mixers = count_field(v, "mixers")?;
    }
    if let Some(v) = overrides.get("heaters") {
        machine.heaters = count_field(v, "heaters")?;
    }
    if let Some(v) = overrides.get("separators") {
        machine.separators = count_field(v, "separators")?;
    }
    if let Some(v) = overrides.get("sensors") {
        machine.sensors = count_field(v, "sensors")?;
    }
    if let Some(v) = overrides.get("input_ports") {
        machine.input_ports = count_field(v, "input_ports")?;
    }
    Ok(machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

    fn service(config: ServiceConfig) -> Service {
        Service::new(config)
    }

    fn total_hits(svc: &Service) -> u64 {
        svc.inner
            .workers
            .iter()
            .map(|w| w.cache.stats.hits.load(Ordering::Relaxed))
            .sum()
    }

    #[test]
    fn warm_hit_is_byte_identical_to_cold() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        let cold = svc.submit_src(TINY, &machine, None).unwrap();
        let warm = svc.submit_src(TINY, &machine, None).unwrap();
        assert_eq!(cold.key, warm.key);
        assert_eq!(cold.plan, warm.plan);
        assert_eq!(total_hits(&svc), 1);
    }

    #[test]
    fn key_lookup_serves_without_compiling() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        let cold = svc.submit_src(TINY, &machine, None).unwrap();
        let by_key = svc.submit_key(cold.key).unwrap();
        assert_eq!(by_key.plan, cold.plan);
        assert_eq!(
            svc.submit_key(cold.key ^ 1).unwrap_err(),
            ServeError::UnknownKey
        );
    }

    #[test]
    fn zero_capacity_queue_rejects_with_overloaded() {
        let svc = service(ServiceConfig {
            queue_capacity: 0,
            ..ServiceConfig::default()
        });
        let machine = Machine::paper_default();
        let err = svc.submit_src(TINY, &machine, None).unwrap_err();
        assert_eq!(err, ServeError::Overloaded);
    }

    #[test]
    fn zero_deadline_times_out_before_enqueueing() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        let err = svc
            .submit_src(TINY, &machine, Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::Timeout);
        // ...but a cache hit is served even with no time budget.
        svc.submit_src(TINY, &machine, None).unwrap();
        svc.submit_src(TINY, &machine, Some(Duration::ZERO))
            .unwrap();
    }

    #[test]
    fn huge_programmatic_deadline_is_clamped_not_panicking() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        // Pre-fix this paniced in `Instant::now() + Duration`.
        let served = svc
            .submit_src(TINY, &machine, Some(Duration::from_millis(u64::MAX)))
            .unwrap();
        assert!(!served.plan.is_empty());
    }

    #[test]
    fn tenant_inflight_quota_sheds() {
        let svc = service(ServiceConfig {
            tenant_max_inflight: 0,
            ..ServiceConfig::default()
        });
        let machine = Machine::paper_default();
        let canon = Service::canon_src(TINY, &machine).unwrap();
        let err = svc
            .submit_canon_tenant(canon.clone(), machine.clone(), None, "acme")
            .unwrap_err();
        assert_eq!(err, ServeError::Shedding);
        assert_eq!(svc.shed_count(), 1);
        // The default tenant is bound by the same config; a hit would
        // still be served — warm the cache via a permissive service
        // config instead to prove hits bypass admission.
        let warm_svc = service(ServiceConfig {
            tenant_max_inflight: 1,
            ..ServiceConfig::default()
        });
        warm_svc
            .submit_canon_tenant(canon.clone(), machine.clone(), None, "acme")
            .unwrap();
        // Hot path: quota exhausted would not matter, hits bypass.
        warm_svc
            .submit_canon_tenant(canon, machine, None, "acme")
            .unwrap();
    }

    #[test]
    fn tenant_state_is_reclaimed_when_idle() {
        let svc = service(ServiceConfig::default());
        let machine = Machine::paper_default();
        let canon = Service::canon_src(TINY, &machine).unwrap();
        svc.submit_canon_tenant(canon, machine, None, "ephemeral")
            .unwrap();
        let tenants = svc
            .inner
            .tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        assert!(
            tenants.is_empty(),
            "tenant table must not grow without bound"
        );
    }

    #[test]
    fn handle_line_roundtrips_the_protocol() {
        let svc = service(ServiceConfig::default());
        let resp = svc.handle_line(&format!("{{\"id\":1,\"src\":{}}}", quote(TINY)));
        let v = json::parse(&resp).expect("response is valid JSON");
        assert_eq!(v.get("id").unwrap().as_int(), Some(1));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let key = v.get("key").unwrap().as_str().unwrap().to_owned();
        let replay = svc.handle_line(&format!("{{\"id\":2,\"key\":{}}}", quote(&key)));
        let rv = json::parse(&replay).unwrap();
        assert_eq!(rv.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(rv.get("plan"), v.get("plan"));
    }

    #[test]
    fn machine_override_changes_the_key() {
        let svc = service(ServiceConfig::default());
        let r1 = svc.handle_line(&format!("{{\"id\":1,\"src\":{}}}", quote(TINY)));
        let r2 = svc.handle_line(&format!(
            "{{\"id\":2,\"src\":{},\"machine\":{{\"least_count_nl\":\"1/5\"}}}}",
            quote(TINY)
        ));
        let k1 = json::parse(&r1)
            .unwrap()
            .get("key")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        let k2 = json::parse(&r2)
            .unwrap()
            .get("key")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert_ne!(k1, k2);
    }

    #[test]
    fn malformed_lines_get_bad_request() {
        let svc = service(ServiceConfig::default());
        for line in ["not json", "{}", "{\"id\":3,\"key\":\"zz\"}"] {
            let resp = svc.handle_line(line);
            let v = json::parse(&resp).expect("error response is valid JSON");
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        }
    }

    #[test]
    fn single_worker_config_still_works() {
        let svc = service(ServiceConfig {
            worker_shards: 1,
            ..ServiceConfig::default()
        });
        let machine = Machine::paper_default();
        let cold = svc.submit_src(TINY, &machine, None).unwrap();
        let warm = svc.submit_src(TINY, &machine, None).unwrap();
        assert_eq!(cold.plan, warm.plan);
    }
}
