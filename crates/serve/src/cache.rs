//! A sharded, collision-checked LRU cache for compiled plans.
//!
//! The cache maps a 128-bit content key (see [`crate::canon`]) to the
//! rendered plan bytes. Design points:
//!
//! * **Sharding** — keys are spread over `shards` independent
//!   mutex-protected shards, so concurrent hits on different keys never
//!   contend on one lock. A shard is picked from the key's high bits
//!   (the key is already a hash, so no re-mixing is needed).
//! * **True LRU per shard** — each shard keeps an index-linked list
//!   over a slab of slots: `get` unlinks and re-pushes at the front in
//!   O(1), `insert` evicts the tail in O(1).
//! * **Collision rejection** — every entry stores the exact canonical
//!   encoding its key was hashed from. A lookup whose encoding differs
//!   is reported as a miss (and counted), and an insert over a
//!   different encoding is refused: a 128-bit collision can cost a
//!   recompile, never a wrong plan.
//! * **Counters** — hits / misses / inserts / evictions / collisions
//!   accumulate in [`CacheStats`] atomics and are mirrored into
//!   `aqua-obs` counters (`serve.cache.*`) at the event site.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use aqua_obs::Obs;

use crate::service::Served;

const NIL: usize = usize::MAX;

/// Monotonic cache counters (relaxed atomics; read for reporting only).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: AtomicU64,
    /// Lookups that found nothing (or rejected a collision).
    pub misses: AtomicU64,
    /// Entries stored.
    pub inserts: AtomicU64,
    /// Entries evicted to make room.
    pub evictions: AtomicU64,
    /// Same-key lookups/inserts whose canonical encodings differed —
    /// true 128-bit hash collisions, refused rather than served.
    pub collisions: AtomicU64,
}

impl CacheStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

struct Slot {
    key: u128,
    encoding: Arc<[u8]>,
    value: Served,
    prev: usize,
    next: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            head: NIL,
            tail: NIL,
            ..Shard::default()
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// The sharded LRU plan cache. See the module docs.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    obs: Obs,
    /// Counter block (shared with [`crate::service::Service`] reports).
    pub stats: CacheStats,
}

impl ShardedLru {
    /// A cache holding at most ~`capacity` entries over `shards` shards
    /// (each shard holds `ceil(capacity / shards)`, minimum 1).
    pub fn new(capacity: usize, shards: usize, obs: Obs) -> ShardedLru {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity,
            obs,
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, key: u128) -> MutexGuard<'_, Shard> {
        let idx = ((key >> 64) as u64 ^ key as u64) as usize % self.shards.len();
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`, verifying the canonical `encoding` byte-for-byte.
    /// A hit refreshes recency.
    pub fn get(&self, key: u128, encoding: &[u8]) -> Option<Served> {
        let mut shard = self.shard(key);
        match shard.map.get(&key).copied() {
            None => {
                CacheStats::bump(&self.stats.misses);
                self.obs.add("serve.cache.miss", 1);
                None
            }
            Some(i) if shard.slots[i].encoding.as_ref() != encoding => {
                CacheStats::bump(&self.stats.collisions);
                CacheStats::bump(&self.stats.misses);
                self.obs.add("serve.cache.collision", 1);
                self.obs.add("serve.cache.miss", 1);
                None
            }
            Some(i) => {
                shard.unlink(i);
                shard.push_front(i);
                CacheStats::bump(&self.stats.hits);
                self.obs.add("serve.cache.hit", 1);
                Some(shard.slots[i].value.clone())
            }
        }
    }

    /// Looks up `key` without an encoding to verify (the key-addressed
    /// protocol path, where the client replays a key it was handed by a
    /// previous response). A hit refreshes recency.
    pub fn get_by_key(&self, key: u128) -> Option<Served> {
        let mut shard = self.shard(key);
        match shard.map.get(&key).copied() {
            None => {
                CacheStats::bump(&self.stats.misses);
                self.obs.add("serve.cache.miss", 1);
                None
            }
            Some(i) => {
                shard.unlink(i);
                shard.push_front(i);
                CacheStats::bump(&self.stats.hits);
                self.obs.add("serve.cache.hit", 1);
                Some(shard.slots[i].value.clone())
            }
        }
    }

    /// Stores `value` under `key`, evicting the shard's LRU entry if
    /// full. An insert over an existing entry with a *different*
    /// encoding (a hash collision) is refused; re-inserting the same
    /// encoding refreshes the value and its recency.
    pub fn insert(&self, key: u128, encoding: Arc<[u8]>, value: Served) {
        let mut shard = self.shard(key);
        if let Some(i) = shard.map.get(&key).copied() {
            if shard.slots[i].encoding.as_ref() != encoding.as_ref() {
                CacheStats::bump(&self.stats.collisions);
                self.obs.add("serve.cache.collision", 1);
                return;
            }
            shard.slots[i].value = value;
            shard.unlink(i);
            shard.push_front(i);
            return;
        }
        if shard.map.len() >= self.per_shard_capacity {
            let tail = shard.tail;
            debug_assert_ne!(tail, NIL);
            let old_key = shard.slots[tail].key;
            shard.unlink(tail);
            shard.map.remove(&old_key);
            shard.free.push(tail);
            CacheStats::bump(&self.stats.evictions);
            self.obs.add("serve.cache.eviction", 1);
        }
        let slot = Slot {
            key,
            encoding,
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match shard.free.pop() {
            Some(i) => {
                shard.slots[i] = slot;
                i
            }
            None => {
                shard.slots.push(slot);
                shard.slots.len() - 1
            }
        };
        shard.map.insert(key, i);
        shard.push_front(i);
        CacheStats::bump(&self.stats.inserts);
        self.obs.add("serve.cache.insert", 1);
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            *s = Shard::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served(tag: &str) -> Served {
        Served {
            key: 0,
            plan: Arc::from(tag),
        }
    }

    fn enc(tag: u8) -> Arc<[u8]> {
        Arc::from(vec![tag].into_boxed_slice())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard, capacity 2, so recency order is observable.
        let cache = ShardedLru::new(2, 1, Obs::off());
        cache.insert(1, enc(1), served("one"));
        cache.insert(2, enc(2), served("two"));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(1, &[1]).is_some());
        cache.insert(3, enc(3), served("three"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2, &[2]).is_none(), "2 should have been evicted");
        assert!(cache.get(1, &[1]).is_some());
        assert!(cache.get(3, &[3]).is_some());
        assert_eq!(cache.stats.evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn collisions_are_rejected_not_served() {
        let cache = ShardedLru::new(8, 1, Obs::off());
        cache.insert(7, enc(1), served("first"));
        // Same 128-bit key, different canonical encoding: a true hash
        // collision. The lookup must miss and the insert must refuse.
        assert!(cache.get(7, &[2]).is_none());
        cache.insert(7, enc(2), served("impostor"));
        let hit = cache.get(7, &[1]).expect("original entry intact");
        assert_eq!(&*hit.plan, "first");
        assert_eq!(cache.stats.collisions.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn reinsert_same_encoding_refreshes_value_and_recency() {
        let cache = ShardedLru::new(2, 1, Obs::off());
        cache.insert(1, enc(1), served("v1"));
        cache.insert(2, enc(2), served("v2"));
        cache.insert(1, enc(1), served("v1b"));
        cache.insert(3, enc(3), served("v3")); // evicts 2, not 1
        assert_eq!(&*cache.get(1, &[1]).unwrap().plan, "v1b");
        assert!(cache.get(2, &[2]).is_none());
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache = ShardedLru::new(16, 4, Obs::off());
        for k in 0..10u128 {
            cache.insert(k, enc(k as u8), served("x"));
        }
        assert_eq!(cache.len(), 10);
        cache.clear();
        assert!(cache.is_empty());
        // Reinsert works after clear (free lists were reset).
        cache.insert(1, enc(1), served("y"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sharding_distributes_and_caps_per_shard() {
        let cache = ShardedLru::new(8, 4, Obs::off()); // 2 per shard
        for k in 0..64u128 {
            // Spread keys across shards via distinct high bits too.
            cache.insert(k << 64 | k, enc(k as u8), served("x"));
        }
        assert!(cache.len() <= 8, "len {} exceeds capacity", cache.len());
    }
}
