//! NDJSON transport fronts: stdin and TCP.
//!
//! Both fronts speak the same line protocol (see [`crate::service`]):
//! one JSON request per line in, one JSON response per line out, in
//! request order per connection. The TCP front spawns one thread per
//! connection — connection counts for a plan-compilation service are
//! tiny compared to its per-request compute, so thread-per-connection
//! is the simple and sufficient choice.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::service::Service;

/// Serves requests from `input` line-by-line, writing responses to
/// `output`. Returns when the input is exhausted.
///
/// # Errors
///
/// Propagates I/O errors from either stream.
pub fn serve_lines(
    service: &Service,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(())
}

/// Serves requests from stdin to stdout until EOF.
///
/// # Errors
///
/// Propagates I/O errors from the standard streams.
pub fn serve_stdin(service: &Service) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

fn handle_conn(service: &Service, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

/// Binds `addr` and serves each connection on its own thread. Returns
/// the bound address (useful with port 0) and the accept-loop handle;
/// the loop runs until the process exits or the listener errors.
///
/// # Errors
///
/// Returns the bind error, if any. Per-connection errors are logged to
/// stderr and do not stop the accept loop.
pub fn spawn_tcp(service: Arc<Service>, addr: &str) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("aqua-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                match conn {
                    Ok(stream) => {
                        let service = Arc::clone(&service);
                        let spawned = std::thread::Builder::new()
                            .name("aqua-serve-conn".into())
                            .spawn(move || {
                                if let Err(e) = handle_conn(&service, stream) {
                                    eprintln!("aqua-serve: connection error: {e}");
                                }
                            });
                        if let Err(e) = spawned {
                            eprintln!("aqua-serve: cannot spawn connection thread: {e}");
                        }
                    }
                    Err(e) => {
                        eprintln!("aqua-serve: accept error: {e}");
                        return;
                    }
                }
            }
        })?;
    Ok((local, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

    #[test]
    fn line_front_answers_in_order() {
        let service = Service::new(ServiceConfig::default());
        let req = format!(
            "{{\"id\":1,\"src\":{}}}\n\n{{\"id\":2,\"cmd\":\"stats\"}}\n",
            crate::json::quote(TINY)
        );
        let mut out = Vec::new();
        serve_lines(&service, req.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank line is skipped: {text}");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":true,"));
        assert!(lines[1].starts_with("{\"id\":2,\"ok\":true,\"stats\":"));
    }

    #[test]
    fn tcp_front_round_trips() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let (addr, _accept) = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();
        let req = format!("{{\"id\":\"t1\",\"src\":{}}}\n", crate::json::quote(TINY));
        conn.write_all(req.as_bytes()).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"id\":\"t1\",\"ok\":true,"), "{line}");
    }
}
