//! NDJSON transport fronts: stdin and TCP.
//!
//! Both fronts speak the same line protocol (see [`crate::service`]):
//! one JSON request per line in, one JSON response per line out, in
//! request order per connection. The TCP front spawns one thread per
//! connection — connection counts for a plan-compilation service are
//! tiny compared to its per-request compute, so thread-per-connection
//! is the simple and sufficient choice.
//!
//! The fronts are hardened against hostile or broken clients:
//!
//! * request lines are read through a bounded reader — a line past
//!   [`crate::ServiceConfig::max_line_bytes`] gets the typed
//!   `too_large` rejection and the rest of the oversized line is
//!   *streamed* to the trash (never buffered), so a client pouring
//!   gigabytes with no newline cannot OOM the server;
//! * invalid UTF-8 gets a `bad_request` parse error on that line and
//!   the connection keeps serving — it no longer tears the whole
//!   connection down;
//! * the TCP accept loop survives transient `accept(2)` failures
//!   (ECONNABORTED, EMFILE, …) with bounded exponential backoff and a
//!   `serve.accept_errors` counter, exiting only on fatal errors.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::{error_line, ServeError, Service};

/// Outcome of one bounded line read.
enum Line {
    /// A complete line (without the trailing `\n`, `\r\n` stripped).
    Full(Vec<u8>),
    /// The line exceeded the cap; its tail was discarded unbuffered.
    TooLong,
    /// Input exhausted with no pending bytes.
    Eof,
}

/// Reads one `\n`-terminated line, buffering at most `max_bytes` of it.
/// The oversized remainder is consumed and dropped chunk-by-chunk
/// straight out of the reader's internal buffer, so memory stays
/// bounded no matter how long the client's "line" is.
fn read_bounded_line(input: &mut impl BufRead, max_bytes: usize) -> io::Result<Line> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return if line.is_empty() {
                Ok(Line::Eof)
            } else {
                Ok(Line::Full(line))
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if line.len() + nl > max_bytes {
                    input.consume(nl + 1);
                    return Ok(Line::TooLong);
                }
                line.extend_from_slice(&chunk[..nl]);
                input.consume(nl + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Line::Full(line));
            }
            None => {
                let len = chunk.len();
                if line.len() + len > max_bytes {
                    // Cap blown with no newline in sight: discard the
                    // rest of this line without buffering it.
                    input.consume(len);
                    discard_until_newline(input)?;
                    return Ok(Line::TooLong);
                }
                line.extend_from_slice(chunk);
                input.consume(len);
            }
        }
    }
}

/// Consumes input up to and including the next `\n` (or EOF) without
/// retaining any of it.
fn discard_until_newline(input: &mut impl BufRead) -> io::Result<()> {
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                input.consume(nl + 1);
                return Ok(());
            }
            None => {
                let len = chunk.len();
                input.consume(len);
            }
        }
    }
}

/// Serves requests from `input` line-by-line, writing responses to
/// `output`. Returns when the input is exhausted. Oversized lines get a
/// `too_large` response, invalid UTF-8 a `bad_request` — both leave the
/// stream in sync for the next line.
///
/// # Errors
///
/// Propagates I/O errors from either stream.
pub fn serve_lines(
    service: &Service,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    let max_bytes = service.max_line_bytes();
    loop {
        let response = match read_bounded_line(&mut input, max_bytes)? {
            Line::Eof => return Ok(()),
            Line::TooLong => {
                service.obs().add("serve.line.too_large", 1);
                error_line("null", &ServeError::TooLarge { max_bytes })
            }
            Line::Full(bytes) => match std::str::from_utf8(&bytes) {
                Err(e) => error_line(
                    "null",
                    &ServeError::BadRequest(format!("request line is not valid UTF-8: {e}")),
                ),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => service.handle_line(line),
            },
        };
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
}

/// Serves requests from stdin to stdout until EOF.
///
/// # Errors
///
/// Propagates I/O errors from the standard streams.
pub fn serve_stdin(service: &Service) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

fn handle_conn(service: &Service, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

/// Whether an `accept(2)` error should stop the listener. Transient
/// per-connection and resource-pressure failures (the client aborted
/// mid-handshake, the process is briefly out of fds) are retried;
/// anything else — the listener socket itself is broken — is fatal.
pub fn accept_error_is_fatal(e: &io::Error) -> bool {
    use io::ErrorKind;
    match e.kind() {
        ErrorKind::ConnectionAborted
        | ErrorKind::ConnectionReset
        | ErrorKind::Interrupted
        | ErrorKind::WouldBlock
        | ErrorKind::TimedOut => false,
        _ => !matches!(
            e.raw_os_error(),
            // ENFILE(23) / EMFILE(24): fd exhaustion — ours or the
            // system's — passes; ECONNABORTED(103) for kinds that
            // didn't map.
            Some(23) | Some(24) | Some(103)
        ),
    }
}

/// Backoff schedule for transient accept errors: exponential from 1 ms,
/// capped at 1 s, reset by any successful accept.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Binds `addr` and serves each connection on its own thread. Returns
/// the bound address (useful with port 0) and the accept-loop handle.
/// Transient accept errors are retried with bounded backoff (counted
/// under `serve.accept_errors`); the loop exits only on a fatal
/// listener error or process exit.
///
/// # Errors
///
/// Returns the bind error, if any. Per-connection errors are logged to
/// stderr and do not stop the accept loop.
pub fn spawn_tcp(service: Arc<Service>, addr: &str) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("aqua-serve-accept".into())
        .spawn(move || {
            let mut backoff = ACCEPT_BACKOFF_START;
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        backoff = ACCEPT_BACKOFF_START;
                        let service = Arc::clone(&service);
                        let spawned = std::thread::Builder::new()
                            .name("aqua-serve-conn".into())
                            .spawn(move || {
                                if let Err(e) = handle_conn(&service, stream) {
                                    eprintln!("aqua-serve: connection error: {e}");
                                }
                            });
                        if let Err(e) = spawned {
                            eprintln!("aqua-serve: cannot spawn connection thread: {e}");
                        }
                    }
                    Err(e) => {
                        service.obs().add("serve.accept_errors", 1);
                        if accept_error_is_fatal(&e) {
                            eprintln!("aqua-serve: fatal accept error, stopping listener: {e}");
                            return;
                        }
                        eprintln!("aqua-serve: transient accept error (retrying): {e}");
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
                    }
                }
            }
        })?;
    Ok((local, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    const TINY: &str = "
ASSAY tiny START
fluid A, B, m;
VAR Result[1];
m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[1];
END
";

    #[test]
    fn line_front_answers_in_order() {
        let service = Service::new(ServiceConfig::default());
        let req = format!(
            "{{\"id\":1,\"src\":{}}}\n\n{{\"id\":2,\"cmd\":\"stats\"}}\n",
            crate::json::quote(TINY)
        );
        let mut out = Vec::new();
        serve_lines(&service, req.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank line is skipped: {text}");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":true,"));
        assert!(lines[1].starts_with("{\"id\":2,\"ok\":true,\"stats\":"));
    }

    #[test]
    fn tcp_front_round_trips() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let (addr, _accept) = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();
        let req = format!("{{\"id\":\"t1\",\"src\":{}}}\n", crate::json::quote(TINY));
        conn.write_all(req.as_bytes()).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"id\":\"t1\",\"ok\":true,"), "{line}");
    }

    #[test]
    fn bounded_reader_handles_exact_and_overflow_lines() {
        // max 8 bytes: "12345678\n" fits, "123456789\n" does not.
        let mut input: &[u8] = b"12345678\n123456789\nok\n";
        match read_bounded_line(&mut input, 8).unwrap() {
            Line::Full(l) => assert_eq!(l, b"12345678"),
            _ => panic!("exact-cap line must pass"),
        }
        assert!(matches!(
            read_bounded_line(&mut input, 8).unwrap(),
            Line::TooLong
        ));
        match read_bounded_line(&mut input, 8).unwrap() {
            Line::Full(l) => assert_eq!(l, b"ok"),
            _ => panic!("stream must resync after an oversized line"),
        }
        assert!(matches!(
            read_bounded_line(&mut input, 8).unwrap(),
            Line::Eof
        ));
    }

    #[test]
    fn accept_error_classification() {
        use io::{Error, ErrorKind};
        assert!(!accept_error_is_fatal(&Error::from(
            ErrorKind::ConnectionAborted
        )));
        assert!(!accept_error_is_fatal(&Error::from_raw_os_error(24))); // EMFILE
        assert!(!accept_error_is_fatal(&Error::from_raw_os_error(23))); // ENFILE
        assert!(accept_error_is_fatal(&Error::from(ErrorKind::InvalidInput)));
        assert!(accept_error_is_fatal(&Error::from_raw_os_error(9))); // EBADF
    }
}
