//! Consistent-hash routing of content keys onto worker shards.
//!
//! The serve tier routes every content key (already an FNV-1a-128 hash
//! of the request's canonical encoding, see [`crate::canon`]) to one of
//! N worker shards, each of which owns its own LRU cache, single-flight
//! table, queue, and batcher thread — shards never contend on a shared
//! lock. Routing is a classic consistent-hash ring:
//!
//! * each worker contributes `REPLICAS` virtual points, placed at
//!   `fnv1a64("aqua-serve-ring" ‖ worker ‖ replica)`;
//! * a key routes to the owner of the first ring point at or after the
//!   key's own 64-bit projection (its low half — the key is already a
//!   uniform hash, so no re-mixing is needed), wrapping at the top.
//!
//! Consistent hashing (rather than `key % N`) keeps the map stable as
//! the fleet is resized: growing from N to N+1 workers moves only
//! ~1/(N+1) of the keyspace, so a rolling resize invalidates a sliver
//! of each worker's warm set instead of reshuffling all of it. The
//! [`Ring::moved_fraction`] helper (used by the tests) measures exactly
//! that.

/// Virtual points per worker. 64 keeps the worst/best worker load
/// spread within a few percent for small fleets while the ring stays a
/// cache-friendly sorted `Vec`.
const REPLICAS: usize = 64;

/// FNV-1a 64-bit, the ring's point hash (dependency-free, stable),
/// finished with a splitmix64 mix: raw FNV of short structured labels
/// clusters in the low bits, which would leave the ring badly
/// unbalanced.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// splitmix64 finalizer: full-avalanche bijection on `u64`.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring over `workers` shards. Construction is
/// deterministic: the same worker count always yields the same ring,
/// so routing is reproducible across processes and restarts.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, worker)` sorted by point (ties broken by worker id,
    /// which keeps construction order-independent).
    points: Vec<(u64, u32)>,
    workers: u32,
}

impl Ring {
    /// Builds the ring for `workers` shards (clamped to at least 1).
    pub fn new(workers: usize) -> Ring {
        let workers = workers.max(1) as u32;
        let mut points = Vec::with_capacity(workers as usize * REPLICAS);
        for w in 0..workers {
            for r in 0..REPLICAS as u32 {
                let mut label = [0u8; 23];
                label[..15].copy_from_slice(b"aqua-serve-ring");
                label[15..19].copy_from_slice(&w.to_le_bytes());
                label[19..].copy_from_slice(&r.to_le_bytes());
                points.push((fnv1a64(&label), w));
            }
        }
        points.sort_unstable();
        Ring { points, workers }
    }

    /// Number of workers the ring routes over.
    pub fn workers(&self) -> usize {
        self.workers as usize
    }

    /// Routes a content key to its owning worker shard.
    pub fn route(&self, key: u128) -> usize {
        let point = key as u64; // low half; the key is already uniform
        let i = self.points.partition_point(|&(p, _)| p < point);
        let (_, worker) = self.points[i % self.points.len()];
        worker as usize
    }

    /// Fraction of `sample` keys that route differently on `other`
    /// (test/diagnostic helper for resize stability).
    pub fn moved_fraction(&self, other: &Ring, sample: impl Iterator<Item = u128>) -> f64 {
        let mut total = 0usize;
        let mut moved = 0usize;
        for key in sample {
            total += 1;
            if self.route(key) != other.route(key) {
                moved += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            moved as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_rational::rng::XorShift64Star;

    fn sample_keys(n: usize, seed: u64) -> Vec<u128> {
        let mut rng = XorShift64Star::new(seed);
        (0..n)
            .map(|_| (rng.next_u64() as u128) << 64 | rng.next_u64() as u128)
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = Ring::new(5);
        let again = Ring::new(5);
        for key in sample_keys(1000, 7) {
            let w = ring.route(key);
            assert!(w < 5);
            assert_eq!(w, again.route(key));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(8);
        let mut counts = [0usize; 8];
        let keys = sample_keys(20_000, 42);
        for &key in &keys {
            counts[ring.route(key)] += 1;
        }
        let expected = keys.len() / 8;
        for (w, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 3 && c < expected * 3,
                "worker {w} got {c} of {} keys (expected ~{expected})",
                keys.len()
            );
        }
    }

    #[test]
    fn resize_moves_only_a_fraction_of_the_keyspace() {
        let before = Ring::new(8);
        let after = Ring::new(9);
        let moved = before.moved_fraction(&after, sample_keys(20_000, 99).into_iter());
        // Ideal is 1/9 ≈ 0.11; allow generous slack, but far below the
        // ~0.89 a modulo router would reshuffle.
        assert!(moved < 0.35, "resize moved {moved:.2} of the keyspace");
        assert!(moved > 0.0);
    }

    #[test]
    fn single_worker_takes_everything() {
        let ring = Ring::new(1);
        assert_eq!(ring.workers(), 1);
        for key in sample_keys(100, 3) {
            assert_eq!(ring.route(key), 0);
        }
        // Zero clamps to one.
        assert_eq!(Ring::new(0).workers(), 1);
    }
}
