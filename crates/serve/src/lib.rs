//! `aqua-serve` — the plan-compilation service.
//!
//! The paper's pipeline (assay DAG → Fig. 6 hierarchy → dispensing
//! plan) is recomputed from scratch on every compiler invocation, but
//! deployments re-run the same assays thousands of times. This crate
//! turns the pipeline into a multi-threaded service:
//!
//! * [`canon`] — canonicalizes a request (deterministic node order,
//!   fluid-name interning, machine-spec folding) into a
//!   content-addressed cache key;
//! * [`cache`] — a sharded LRU over compiled plans with exact-encoding
//!   collision rejection;
//! * [`shard`] — consistent-hash routing of content keys onto worker
//!   shards, each owning its own LRU + single-flight + batcher;
//! * [`service`] — single-flight admission, bounded queues with typed
//!   `Overloaded`/`Timeout`/`Shedding` rejections, per-tenant quotas,
//!   and per-worker batchers feeding `aqua_lp::batch`'s work-stealing
//!   pool;
//! * [`store`] — a disk-backed content-addressed plan store (CRC-guarded
//!   append-only segment log with torn-tail recovery and compaction)
//!   that rehydrates the caches across restarts;
//! * [`server`] — NDJSON request/response fronts over stdin and TCP,
//!   with bounded line lengths and a transient-error-tolerant accept
//!   loop;
//! * [`plan`] / [`json`] — deterministic plan rendering and the
//!   dependency-free JSON layer beneath the protocol.
//!
//! Warm responses are byte-identical to cold compiles *by
//! construction*: plans are compiled from the canonical DAG, so any
//! request mapping to the same canonical form gets the same bytes
//! whether it hit or missed.
//!
//! # Examples
//!
//! ```
//! use aqua_serve::{Service, ServiceConfig};
//! use aqua_volume::Machine;
//!
//! let service = Service::new(ServiceConfig::default());
//! let src = "
//! ASSAY doc START
//! fluid A, B, m;
//! VAR Result[1];
//! m = MIX A AND B IN RATIOS 1 : 4 FOR 10;
//! SENSE OPTICAL it INTO Result[1];
//! END
//! ";
//! let machine = Machine::paper_default();
//! let cold = service.submit_src(src, &machine, None)?;
//! let warm = service.submit_src(src, &machine, None)?;
//! assert_eq!(cold.plan, warm.plan); // byte-identical
//! # Ok::<(), aqua_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod canon;
pub mod json;
pub mod plan;
pub mod server;
pub mod service;
pub mod session;
pub mod shard;
pub mod store;

pub use canon::{canonicalize, key_hex, parse_key_hex, Canon, CanonError};
pub use plan::compile_plan;
pub use server::{serve_stdin, spawn_tcp};
pub use service::{ServeError, Served, Service, ServiceConfig};
pub use session::apply_delta;
pub use shard::Ring;
pub use store::{PlanStore, Record, RecoveryReport, StoreConfig};
