//! Push-mode sessions: register a DAG once, then push edits and get
//! plan deltas back.
//!
//! The cold front door recompiles from scratch on every request. A
//! *session* instead retains the client's DAG, the canonical form it
//! was compiled under, the compiled plan bytes, and (when the solve was
//! replayable) the hierarchy's round trace ([`aqua_volume::incr`]).
//! Pushing an edit then costs a dirty-slice replay plus a mapped
//! re-canonicalization instead of a full compile — and the resulting
//! plan is **byte-identical to a cold compile of the edited DAG**,
//! because replays render through the same `plan::render_outcome`
//! path on the same canonical DAG a cold compile would build.
//!
//! Edits that cannot be replayed (machine-parameter changes, node
//! add/remove, replay divergences, non-replayable traces) fall back to
//! a cold compile *inside the session* and say so with a typed
//! `"cause"`; the client still gets a correct plan either way.
//!
//! Session state is pinned here, not in the plan LRU: cache pressure
//! from other tenants can evict a session's plan bytes from the shared
//! cache without ever forcing the session down the full-recompile path.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use aqua_dag::{set_mix_ratio, Dag, EdgeId, NodeId};
use aqua_obs::Obs;
use aqua_rational::Ratio;
use aqua_volume::hierarchy::ManagedVolumes;
use aqua_volume::{IncrEdit, IncrSolver, Machine, ManagedOutcome, Method, ReplayOutcome};

use crate::canon::{self, Canon};
use crate::json::{quote, Value};
use crate::plan;
use crate::service::ServeError;

/// One registered session: the client's DAG in its own node numbering,
/// the pinned canonical form + plan of the last full compile, and the
/// incremental solver when the last full compile left a replayable
/// trace.
struct Session {
    machine: Machine,
    /// The client's DAG, current (edits are applied here first).
    dag: Dag,
    /// Client-space output weights.
    weights: HashMap<NodeId, u64>,
    /// Canonical form at the last full compile (full: dag + perms).
    base: Canon,
    /// Base-canonical index → node id in `base.dag`.
    base_ids: Vec<NodeId>,
    /// Base-canonical index → edge id in `base.dag`.
    base_edge_ids: Vec<EdgeId>,
    /// Base-canonical node index → client node index.
    base_inv: Vec<usize>,
    /// Pinned plan bytes for the session's current DAG.
    plan: Arc<str>,
    /// Content key of the pinned plan.
    key: u128,
    /// Encoding behind `key` (for publishing into the shared cache).
    encoding: Arc<[u8]>,
    /// Replay solver; `None` when the last compile wasn't replayable.
    solver: Option<IncrSolver>,
    /// Memoized canonical mappings for this topology (see [`CanonMemo`]).
    memo: CanonMemo,
}

/// The exact client-DAG state a memoized canonical mapping was
/// computed from: every live edge's fraction (in edge-id order; dead
/// edges pinned to `(0, 0)`) plus the sorted output weights.
#[derive(PartialEq)]
struct CanonState {
    fractions: Vec<(i128, i128)>,
    weights: Vec<(usize, u64)>,
}

impl CanonState {
    fn of(dag: &Dag, weights: &HashMap<NodeId, u64>) -> CanonState {
        let fractions = dag
            .edge_ids()
            .map(|e| {
                if dag.edge_is_live(e) {
                    let f = dag.edge(e).fraction;
                    (f.numer(), f.denom())
                } else {
                    (0, 0)
                }
            })
            .collect();
        let mut w: Vec<(usize, u64)> = weights.iter().map(|(&n, &v)| (n.index(), v)).collect();
        w.sort_unstable();
        CanonState {
            fractions,
            weights: w,
        }
    }
}

/// Exact memo of canonical mappings for the session's fixed topology.
///
/// Between structural and machine edits, the canonical mapping (node
/// and edge permutations, key, encoding) is a pure function of the
/// client DAG's edge fractions and output weights — topology, node
/// kinds, and machine are all frozen. Interactive editors revisit
/// states constantly (parameter wiggling, undo/redo), and mapped
/// re-canonicalization of a multi-thousand-node DAG is the dominant
/// cost of the replay path, so a tiny exact-match memo pays for itself
/// on the first revisit. Entries are compared by *value* — every
/// fraction and weight — never by hash, so a hit cannot alias a
/// different state and byte-identity is preserved unconditionally.
struct CanonMemo {
    entries: Vec<(CanonState, Arc<Canon>)>,
}

/// Distinct recent states a session retains mappings for. Editors flip
/// between a handful of candidate values; the memo only needs to cover
/// that working set, and each entry holds two permutation vectors of
/// the DAG's size, so small is right.
const CANON_MEMO_CAPACITY: usize = 4;

impl CanonMemo {
    fn new() -> CanonMemo {
        CanonMemo {
            entries: Vec::new(),
        }
    }

    /// Exact-match lookup; a hit moves the entry to the front.
    fn lookup(&mut self, state: &CanonState) -> Option<Arc<Canon>> {
        let at = self.entries.iter().position(|(s, _)| s == state)?;
        let hit = self.entries.remove(at);
        let canon = Arc::clone(&hit.1);
        self.entries.insert(0, hit);
        Some(canon)
    }

    fn insert(&mut self, state: CanonState, canon: Arc<Canon>) {
        self.entries.insert(0, (state, canon));
        self.entries.truncate(CANON_MEMO_CAPACITY);
    }
}

/// A parsed `session.edit` request, client-space.
enum SessionEdit {
    SetRatio {
        node: NodeId,
        parts: Vec<(NodeId, u64)>,
    },
    SetOutputVolume {
        node: NodeId,
        weight: u64,
    },
    SetMachine(Machine),
    AddNode(NewNode),
    RemoveNode {
        node: NodeId,
    },
}

/// Payload of an `add_node` edit.
enum NewNode {
    Input {
        name: String,
    },
    Mix {
        name: String,
        parts: Vec<(NodeId, u64)>,
        seconds: u64,
    },
    Process {
        name: String,
        op: String,
        from: NodeId,
    },
    Output {
        name: String,
        from: NodeId,
        weight: Option<u64>,
    },
}

/// What `session.register` hands back to the wire layer.
pub(crate) struct Registered {
    /// The new session's id (`"s1"`, `"s2"`, ...).
    pub id: String,
    /// Content key of the compiled plan.
    pub key: u128,
    /// Encoding behind `key` (for cache publication).
    pub encoding: Arc<[u8]>,
    /// The compiled plan bytes.
    pub plan: Arc<str>,
    /// Canonical node index → the request's own fluid name.
    pub names: Vec<String>,
}

/// What `session.edit` hands back to the wire layer.
pub(crate) struct Edited {
    /// Content key of the session's plan after the edit.
    pub key: u128,
    /// Encoding behind `key`.
    pub encoding: Arc<[u8]>,
    /// The full plan bytes after the edit (pinned; also the delta base
    /// for the next edit).
    pub plan: Arc<str>,
    /// Rendered delta document: `{"replace":{...}}` or `{"full":...}`.
    pub delta: String,
    /// Whether the dirty-slice replay produced the plan.
    pub incremental: bool,
    /// Why the session fell back to a cold compile (when it did).
    pub cause: Option<&'static str>,
    /// Dirty-slice size in nodes (0 on the full-recompile path).
    pub slice: usize,
    /// Whether the plan changed (no-op edits skip cache publication).
    pub changed: bool,
}

/// The session registry: id → session, with per-tenant quotas.
///
/// The registry lock is held only for lookup/insert/remove; each
/// session carries its own lock for the (milliseconds-long) edit work,
/// so concurrent sessions never serialize on one mutex.
/// Registry slot: owning tenant + the session behind its own lock.
type SessionSlot = (String, Arc<Mutex<Session>>);

pub(crate) struct SessionStore {
    sessions: Mutex<HashMap<String, SessionSlot>>,
    next: AtomicU64,
}

impl SessionStore {
    pub(crate) fn new() -> SessionStore {
        SessionStore {
            sessions: Mutex::new(HashMap::new()),
            next: AtomicU64::new(0),
        }
    }

    /// Number of live sessions (all tenants).
    pub(crate) fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Registers `dag` (+ client-space `weights`) under `tenant` and
    /// compiles it cold, retaining the trace when replayable.
    pub(crate) fn register(
        &self,
        tenant: &str,
        dag: Dag,
        weights: HashMap<NodeId, u64>,
        machine: Machine,
        max_per_tenant: usize,
        obs: &Obs,
    ) -> Result<Registered, ServeError> {
        {
            let sessions = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
            let held = sessions.values().filter(|(t, _)| t == tenant).count();
            if held >= max_per_tenant {
                obs.add("serve.session.quota_rejects", 1);
                return Err(ServeError::SessionQuota {
                    max: max_per_tenant,
                });
            }
        }
        let (session, key, encoding, plan, names) =
            compile_full(dag, weights, machine, obs).map_err(ServeError::BadRequest)?;
        let id = format!("s{}", self.next.fetch_add(1, Ordering::Relaxed) + 1);
        {
            // Re-check under the lock: two racing registers both passed
            // the early check while neither was inserted yet.
            let mut sessions = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
            let held = sessions.values().filter(|(t, _)| t == tenant).count();
            if held >= max_per_tenant {
                obs.add("serve.session.quota_rejects", 1);
                return Err(ServeError::SessionQuota {
                    max: max_per_tenant,
                });
            }
            sessions.insert(
                id.clone(),
                (tenant.to_owned(), Arc::new(Mutex::new(session))),
            );
        }
        obs.add("serve.session.registers", 1);
        Ok(Registered {
            id,
            key,
            encoding,
            plan,
            names,
        })
    }

    /// Applies one edit to session `id`, replanning incrementally when
    /// the retained trace allows it.
    pub(crate) fn edit(
        &self,
        id: &str,
        tenant: &str,
        edit: &Value,
        obs: &Obs,
    ) -> Result<Edited, ServeError> {
        let session = self.lookup(id, tenant)?;
        let mut session = session.lock().unwrap_or_else(PoisonError::into_inner);
        obs.add("serve.session.edits", 1);
        let parsed =
            parse_edit(&session.dag, &session.machine, edit).map_err(ServeError::BadRequest)?;
        apply_edit(&mut session, parsed, obs).map_err(ServeError::BadRequest)
    }

    /// Closes session `id`, dropping its pinned state.
    pub(crate) fn close(&self, id: &str, tenant: &str, obs: &Obs) -> Result<(), ServeError> {
        let mut sessions = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
        match sessions.get(id) {
            Some((t, _)) if t == tenant => {
                sessions.remove(id);
                obs.add("serve.session.closes", 1);
                Ok(())
            }
            _ => Err(ServeError::UnknownSession),
        }
    }

    fn lookup(&self, id: &str, tenant: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
        let sessions = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
        match sessions.get(id) {
            Some((t, s)) if t == tenant => Ok(Arc::clone(s)),
            _ => Err(ServeError::UnknownSession),
        }
    }
}

/// What [`compile_full`] produces: the session plus the
/// `(key, encoding, plan, names)` quadruple the wire layer returns.
type CompiledSession = (Session, u128, Arc<[u8]>, Arc<str>, Vec<String>);

/// Cold-compiles `(dag, weights, machine)` into a fresh [`Session`],
/// retaining the trace when replayable.
fn compile_full(
    dag: Dag,
    weights: HashMap<NodeId, u64>,
    machine: Machine,
    obs: &Obs,
) -> Result<CompiledSession, String> {
    let base = canon::canonicalize(&dag, &weights, &machine).map_err(|e| e.to_string())?;
    let (plan, rec) = plan::compile_plan_traced(&base, &machine, obs);
    let solver = rec.and_then(|rec| {
        let solver_weights: HashMap<NodeId, Ratio> = base
            .weights
            .iter()
            .map(|(&n, &w)| (n, Ratio::from_int(w as i128)))
            .collect();
        IncrSolver::new(machine.clone(), solver_weights, rec)
    });
    let base_ids: Vec<NodeId> = base.dag.node_ids().collect();
    let base_edge_ids: Vec<EdgeId> = base.dag.edge_ids().collect();
    let mut base_inv = vec![0usize; dag.num_nodes()];
    for (client, &canon_idx) in base.node_perm.iter().enumerate() {
        base_inv[canon_idx] = client;
    }
    let plan: Arc<str> = Arc::from(plan);
    let key = base.key;
    let encoding = Arc::clone(&base.encoding);
    let names = base.names.clone();
    // Prime the mapping memo with the base state, so the first edit
    // away and back (the undo case) already hits.
    let mut memo = CanonMemo::new();
    memo.insert(
        CanonState::of(&dag, &weights),
        Arc::new(Canon {
            dag: Dag::new(),
            names: Vec::new(),
            node_perm: base.node_perm.clone(),
            edge_perm: base.edge_perm.clone(),
            weights: HashMap::new(),
            encoding: Arc::clone(&base.encoding),
            key: base.key,
        }),
    );
    Ok((
        Session {
            machine,
            dag,
            weights,
            base,
            base_ids,
            base_edge_ids,
            base_inv,
            plan: Arc::clone(&plan),
            key,
            encoding: Arc::clone(&encoding),
            solver: None,
            memo,
        }
        .with_solver(solver),
        key,
        encoding,
        plan,
        names,
    ))
}

impl Session {
    fn with_solver(mut self, solver: Option<IncrSolver>) -> Session {
        self.solver = solver;
        self
    }
}

/// Parses the wire `edit` object against the session's current DAG
/// (nodes are addressed by the client's own fluid names).
fn parse_edit(dag: &Dag, machine: &Machine, edit: &Value) -> Result<SessionEdit, String> {
    if !matches!(edit, Value::Obj(_)) {
        return Err("`edit` must be an object".to_owned());
    }
    if let Some(v) = edit.get("set_ratio") {
        let node = node_field(dag, v, "node")?;
        let parts = parts_field(dag, v.get("parts"), "set_ratio.parts")?;
        return Ok(SessionEdit::SetRatio { node, parts });
    }
    if let Some(v) = edit.get("set_output_volume") {
        let node = node_field(dag, v, "node")?;
        let weight = u64_field(v.get("weight"), "set_output_volume.weight")?;
        return Ok(SessionEdit::SetOutputVolume { node, weight });
    }
    if let Some(v) = edit.get("set_machine") {
        let machine = crate::service::machine_with_overrides(machine, v)?;
        return Ok(SessionEdit::SetMachine(machine));
    }
    if let Some(v) = edit.get("add_node") {
        return Ok(SessionEdit::AddNode(parse_new_node(dag, v)?));
    }
    if let Some(v) = edit.get("remove_node") {
        let node = node_field(dag, v, "node")?;
        return Ok(SessionEdit::RemoveNode { node });
    }
    Err(
        "`edit` needs one of `set_ratio`, `set_output_volume`, `set_machine`, \
         `add_node`, `remove_node`"
            .to_owned(),
    )
}

fn parse_new_node(dag: &Dag, v: &Value) -> Result<NewNode, String> {
    let name = match v.get("name").and_then(Value::as_str) {
        Some(n) if !n.is_empty() => n.to_owned(),
        _ => return Err("add_node.name must be a non-empty string".to_owned()),
    };
    if dag.find_node(&name).is_some() {
        return Err(format!("add_node: fluid `{name}` already exists"));
    }
    if let Some(m) = v.get("mix") {
        let parts = parts_field(dag, m.get("parts"), "add_node.mix.parts")?;
        let seconds = match m.get("seconds") {
            None => 0,
            Some(s) => u64_field(Some(s), "add_node.mix.seconds")?,
        };
        return Ok(NewNode::Mix {
            name,
            parts,
            seconds,
        });
    }
    if let Some(p) = v.get("process") {
        let op = match p.get("op").and_then(Value::as_str) {
            Some(op) if !op.is_empty() => op.to_owned(),
            _ => return Err("add_node.process.op must be a non-empty string".to_owned()),
        };
        let from = node_field(dag, p, "from")?;
        return Ok(NewNode::Process { name, op, from });
    }
    if let Some(o) = v.get("output") {
        let from = node_field(dag, o, "from")?;
        let weight = match o.get("weight") {
            None => None,
            Some(w) => Some(u64_field(Some(w), "add_node.output.weight")?),
        };
        return Ok(NewNode::Output { name, from, weight });
    }
    if v.get("input").is_some() {
        return Ok(NewNode::Input { name });
    }
    Err("add_node needs one of `mix`, `process`, `output`, `input`".to_owned())
}

fn node_field(dag: &Dag, v: &Value, what: &str) -> Result<NodeId, String> {
    let name = v
        .get(what)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("`{what}` must be a fluid name"))?;
    dag.find_node(name)
        .ok_or_else(|| format!("unknown fluid `{name}`"))
}

fn u64_field(v: Option<&Value>, what: &str) -> Result<u64, String> {
    v.and_then(Value::as_u64)
        .ok_or_else(|| format!("`{what}` must be a non-negative integer"))
}

fn parts_field(dag: &Dag, v: Option<&Value>, what: &str) -> Result<Vec<(NodeId, u64)>, String> {
    let items = match v {
        Some(Value::Arr(items)) if !items.is_empty() => items,
        _ => return Err(format!("`{what}` must be a non-empty array")),
    };
    let mut parts = Vec::with_capacity(items.len());
    for item in items {
        let pair = match item {
            Value::Arr(pair) if pair.len() == 2 => pair,
            _ => return Err(format!("`{what}` entries must be [name, parts] pairs")),
        };
        let name = pair[0]
            .as_str()
            .ok_or_else(|| format!("`{what}` entries must name a fluid"))?;
        let node = dag
            .find_node(name)
            .ok_or_else(|| format!("unknown fluid `{name}`"))?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| format!("`{what}` parts must be non-negative integers"))?;
        parts.push((node, count));
    }
    Ok(parts)
}

/// Applies one parsed edit, preferring the dirty-slice replay and
/// falling back to a cold compile (with a typed cause) when the edit —
/// or the trace — cannot support it. Session state is only committed
/// on success.
fn apply_edit(s: &mut Session, edit: SessionEdit, obs: &Obs) -> Result<Edited, String> {
    match edit {
        SessionEdit::SetRatio { node, parts } => {
            let mut dag = s.dag.clone();
            let changed = set_mix_ratio(&mut dag, node, &parts).map_err(|e| e.to_string())?;
            if changed.is_empty() {
                return Ok(noop_response(s));
            }
            // Lift the client-space edge edits into the base canonical
            // namespace the trace was recorded in.
            let mut base_changes = Vec::with_capacity(changed.len());
            for &(e, f) in &changed {
                match s.base.edge_perm.get(e.index()).copied().flatten() {
                    Some(be) => base_changes.push((s.base_edge_ids[be], f)),
                    None => return full_recompile(s, dag, None, None, "divergence", obs),
                }
            }
            let base_node = s.base_ids[s.base.node_perm[node.index()]];
            let edit = IncrEdit::Fractions {
                node: base_node,
                changes: base_changes,
            };
            replay_or_recompile(s, dag, edit, obs)
        }
        SessionEdit::SetOutputVolume { node, weight } => {
            if s.weights.get(&node).copied().unwrap_or(0) == weight {
                return Ok(noop_response(s));
            }
            let mut weights = s.weights.clone();
            weights.insert(node, weight);
            let base_node = s.base_ids[s.base.node_perm[node.index()]];
            let edit = IncrEdit::Weight {
                node: base_node,
                weight: Ratio::from_int(weight as i128),
            };
            let dag = s.dag.clone();
            s.weights = weights;
            replay_or_recompile(s, dag, edit, obs)
        }
        SessionEdit::SetMachine(machine) => {
            // Machine parameters shape every recorded decision (least
            // count, capacity, unit inventory): always a typed full
            // recompile (the paper's feasibility checks are not
            // machine-monotone, so no slice is sound).
            let dag = s.dag.clone();
            full_recompile(s, dag, None, Some(machine), "machine_parameter", obs)
        }
        SessionEdit::AddNode(new_node) => {
            let mut dag = s.dag.clone();
            let mut weights = s.weights.clone();
            match new_node {
                NewNode::Input { name } => {
                    dag.add_input(name);
                }
                NewNode::Mix {
                    name,
                    parts,
                    seconds,
                } => {
                    dag.add_mix(name, &parts, seconds)
                        .map_err(|e| e.to_string())?;
                }
                NewNode::Process { name, op, from } => {
                    dag.add_process(name, op, from);
                }
                NewNode::Output { name, from, weight } => {
                    let id = dag.add_output(name, from);
                    if let Some(w) = weight {
                        weights.insert(id, w);
                    }
                }
            }
            full_recompile(s, dag, Some(weights), None, "structural", obs)
        }
        SessionEdit::RemoveNode { node } => {
            let (dag, remap) =
                aqua_dag::rebuild_without(&s.dag, node).map_err(|e| e.to_string())?;
            let mut weights = HashMap::with_capacity(s.weights.len());
            for (&id, &w) in &s.weights {
                if let Some(new_id) = remap[id.index()] {
                    weights.insert(new_id, w);
                }
            }
            full_recompile(s, dag, Some(weights), None, "structural", obs)
        }
    }
}

/// The response for an edit that changed nothing.
fn noop_response(s: &Session) -> Edited {
    Edited {
        key: s.key,
        encoding: Arc::clone(&s.encoding),
        plan: Arc::clone(&s.plan),
        delta: "{\"replace\":{}}".to_owned(),
        incremental: true,
        cause: None,
        slice: 0,
        changed: false,
    }
}

/// Tries the dirty-slice replay for `edit` (already lifted to base
/// space); on divergence — or with no retained trace — recompiles cold.
/// `dag` is the edited client DAG, not yet committed to the session.
fn replay_or_recompile(
    s: &mut Session,
    dag: Dag,
    edit: IncrEdit,
    obs: &Obs,
) -> Result<Edited, String> {
    if s.solver.is_none() {
        return full_recompile(s, dag, None, None, "no_trace", obs);
    }
    // Re-derive the canonical mapping of the *edited* DAG: fractions
    // and weights participate in canonical ordering, so node ranks can
    // move under an edit even though the topology is fixed. The memo
    // short-circuits re-canonicalization when the state was seen
    // before (exact value compare, so the bytes cannot differ).
    let _span = obs.span("incr.replay");
    let state = CanonState::of(&dag, &s.weights);
    let cur = match s.memo.lookup(&state) {
        Some(hit) => {
            obs.add("incr.canon.hit", 1);
            hit
        }
        None => {
            obs.add("incr.canon.miss", 1);
            let canon_span = obs.span("incr.canon");
            let computed = match canon::canonicalize_mapped(&dag, &s.weights, &s.machine) {
                Ok(cur) => Arc::new(cur),
                Err(e) => return Err(e.to_string()),
            };
            canon_span.end();
            s.memo.insert(state, Arc::clone(&computed));
            computed
        }
    };
    let solver = s.solver.as_mut().expect("checked above");
    let base_n = solver.base_nodes();
    let mut base_to_cur = vec![0usize; base_n];
    for (b, slot) in base_to_cur.iter_mut().enumerate() {
        *slot = cur.node_perm[s.base_inv[b]];
    }
    let solve_span = obs.span("incr.solve");
    let replayed = solver.replay_edit(&edit, &base_to_cur);
    solve_span.end();
    match replayed {
        Ok((outcome, slice)) => {
            obs.add("incr.fast_path", 1);
            obs.record("incr.slice_nodes", slice as u64);
            let render_span = obs.span("incr.render");
            let rendered = render_replay(s, &dag, &cur, outcome);
            let plan: Arc<str> = Arc::from(rendered);
            let delta = render_delta(&s.plan, &plan);
            render_span.end();
            s.dag = dag;
            s.key = cur.key;
            s.encoding = Arc::clone(&cur.encoding);
            s.plan = Arc::clone(&plan);
            Ok(Edited {
                key: cur.key,
                encoding: Arc::clone(&cur.encoding),
                plan,
                delta,
                incremental: true,
                cause: None,
                slice,
                changed: true,
            })
        }
        Err(divergence) => {
            obs.add("incr.divergence_fallback", 1);
            obs.add(
                match divergence.0 {
                    "underflow-flipped" => "incr.diverge.underflow",
                    "extreme-flipped" | "shape-mismatch" => "incr.diverge.shape",
                    _ => "incr.diverge.other",
                },
                1,
            );
            // The solver mutated its stored rounds before diverging;
            // it is poisoned by contract.
            s.solver = None;
            full_recompile(s, dag, None, None, "divergence", obs)
        }
    }
}

/// Renders a successful replay outcome as plan bytes, byte-identical
/// to a cold compile of `dag`: the replay's base-space volumes are
/// permuted into the edited DAG's canonical namespace and pushed
/// through the shared [`plan::render_outcome`] path.
fn render_replay(s: &Session, dag: &Dag, cur: &Canon, outcome: ReplayOutcome) -> String {
    match outcome {
        ReplayOutcome::Blocked { reason, log } => {
            let outcome = ManagedOutcome::ResourcesExceeded { reason, log };
            plan::render_outcome(&outcome, &s.machine)
        }
        ReplayOutcome::Solved {
            node_volumes_nl,
            edge_volumes_nl,
        } => {
            let cur_dag = build_canonical_dag(dag, cur);
            let n = dag.num_nodes();
            let zero = Ratio::from_int(0);
            let mut node_vols = vec![zero; n];
            for client in 0..n {
                node_vols[cur.node_perm[client]] = node_volumes_nl[s.base.node_perm[client]];
            }
            let mut edge_vols = vec![zero; cur_dag.num_edges()];
            for e in dag.edge_ids() {
                if let Some(cur_idx) = cur.edge_perm[e.index()] {
                    let base_idx =
                        s.base.edge_perm[e.index()].expect("base and edited DAG share live edges");
                    edge_vols[cur_idx] = edge_volumes_nl[s.base_edge_ids[base_idx].index()];
                }
            }
            let outcome = ManagedOutcome::Solved {
                dag: cur_dag,
                volumes: ManagedVolumes {
                    edge_volumes_nl: edge_vols,
                    node_volumes_nl: node_vols,
                    method: Method::DagSolve,
                },
                log: vec!["round 0: DAGSolve succeeded".to_owned()],
            };
            plan::render_outcome(&outcome, &s.machine)
        }
    }
}

/// Rebuilds the canonical DAG of `dag` from a mapped-only [`Canon`] —
/// the same nodes (named `f0..fN`, canonical order) and the same edge
/// order a full `canonicalize` would produce.
fn build_canonical_dag(dag: &Dag, cur: &Canon) -> Dag {
    let n = dag.num_nodes();
    let ids: Vec<NodeId> = dag.node_ids().collect();
    let mut order = vec![0usize; n];
    for (client, &canon_idx) in cur.node_perm.iter().enumerate() {
        order[canon_idx] = client;
    }
    let mut canon_dag = Dag::new();
    let mut new_ids = Vec::with_capacity(n);
    for (new_idx, &client) in order.iter().enumerate() {
        new_ids.push(canon_dag.add_node(format!("f{new_idx}"), dag.node(ids[client]).kind.clone()));
    }
    let mut sorted: Vec<(usize, EdgeId)> = dag
        .edge_ids()
        .filter_map(|e| cur.edge_perm[e.index()].map(|idx| (idx, e)))
        .collect();
    sorted.sort_unstable_by_key(|&(idx, _)| idx);
    for (_, e) in sorted {
        let edge = dag.edge(e);
        canon_dag.add_edge(
            new_ids[cur.node_perm[edge.src.index()]],
            new_ids[cur.node_perm[edge.dst.index()]],
            edge.fraction,
        );
    }
    canon_dag
}

/// Cold-compiles the session's edited state and re-pins everything
/// (canonical form, plan, trace). `cause` names why the fast path was
/// unavailable; it travels back to the client in the response.
fn full_recompile(
    s: &mut Session,
    dag: Dag,
    weights: Option<HashMap<NodeId, u64>>,
    machine: Option<Machine>,
    cause: &'static str,
    obs: &Obs,
) -> Result<Edited, String> {
    obs.add("incr.full_recompile", 1);
    let weights = weights.unwrap_or_else(|| s.weights.clone());
    let machine = machine.unwrap_or_else(|| s.machine.clone());
    let (session, key, encoding, plan, _names) = compile_full(dag, weights, machine, obs)?;
    // Full recompiles always carry the fresh plan whole: the client
    // may be resynchronizing after a structural or machine change and
    // a member-wise patch against its old plan buys nothing.
    let delta = format!("{{\"full\":{plan}}}");
    *s = session;
    Ok(Edited {
        key,
        encoding,
        plan,
        delta,
        incremental: false,
        cause: Some(cause),
        slice: 0,
        changed: true,
    })
}

/// Renders the member-level difference between two plan documents.
///
/// Plans are JSON objects with a fixed member order, so the delta is a
/// `{"replace":{member: value, ...}}` carrying only the members whose
/// bytes changed. When the two documents do not share a member layout
/// (e.g. the status flipped), the delta degrades to `{"full": plan}`.
pub(crate) fn render_delta(old: &str, new: &str) -> String {
    let (Some(old_members), Some(new_members)) = (top_level_members(old), top_level_members(new))
    else {
        return format!("{{\"full\":{new}}}");
    };
    if old_members.len() != new_members.len()
        || old_members
            .iter()
            .zip(&new_members)
            .any(|((ka, _), (kb, _))| ka != kb)
    {
        return format!("{{\"full\":{new}}}");
    }
    let mut out = String::from("{\"replace\":{");
    let mut first = true;
    for ((name, old_raw), (_, new_raw)) in old_members.iter().zip(&new_members) {
        if old_raw == new_raw {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{new_raw}", quote(name));
    }
    out.push_str("}}");
    out
}

/// Applies a delta produced by `render_delta` to `old`, returning the
/// reconstructed plan document. Returns `None` on a malformed pair.
pub fn apply_delta(old: &str, delta: &str) -> Option<String> {
    let members = top_level_members(delta)?;
    match members.as_slice() {
        [("full", plan)] => Some((*plan).to_owned()),
        [("replace", patch)] => {
            let patch: HashMap<&str, &str> = top_level_members(patch)?.into_iter().collect();
            let old_members = top_level_members(old)?;
            let mut out = String::with_capacity(old.len());
            out.push('{');
            for (i, (name, raw)) in old_members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{}:{}",
                    quote(name),
                    patch.get(name).copied().unwrap_or(raw)
                );
            }
            out.push('}');
            Some(out)
        }
        _ => None,
    }
}

/// Splits a compact JSON object (as this crate renders them: no
/// inter-token whitespace) into `(member name, raw value bytes)` pairs.
fn top_level_members(s: &str) -> Option<Vec<(&str, &str)>> {
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let bytes = inner.as_bytes();
    let mut members = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Member name.
        if bytes[i] != b'"' {
            return None;
        }
        let name_end = scan_string(bytes, i)?;
        let name = &inner[i + 1..name_end - 1];
        if bytes.get(name_end) != Some(&b':') {
            return None;
        }
        // Member value: scan to the next top-level comma.
        let start = name_end + 1;
        let mut j = start;
        let mut depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'"' => j = scan_string(bytes, j)? - 1,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth = depth.checked_sub(1)?,
                b',' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j == start {
            return None;
        }
        members.push((name, &inner[start..j]));
        i = j + 1;
    }
    Some(members)
}

/// Returns the index one past a JSON string's closing quote.
fn scan_string(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_members_splits_compact_objects() {
        let s = r#"{"a":1,"b":"x,\"y}","c":[1,{"d":2}],"e":{"f":[3]}}"#;
        let members = top_level_members(s).unwrap();
        assert_eq!(
            members,
            vec![
                ("a", "1"),
                ("b", r#""x,\"y}""#),
                ("c", r#"[1,{"d":2}]"#),
                ("e", r#"{"f":[3]}"#),
            ]
        );
    }

    #[test]
    fn delta_roundtrips_member_replacement() {
        let old = r#"{"status":"solved","edges":[1,2],"log":["a"]}"#;
        let new = r#"{"status":"solved","edges":[1,3],"log":["a"]}"#;
        let delta = render_delta(old, new);
        assert_eq!(delta, r#"{"replace":{"edges":[1,3]}}"#);
        assert_eq!(apply_delta(old, &delta).unwrap(), new);
    }

    #[test]
    fn delta_degrades_to_full_on_layout_change() {
        let old = r#"{"status":"solved","edges":[1,2]}"#;
        let new = r#"{"status":"resources_exceeded","reason":"x"}"#;
        let delta = render_delta(old, new);
        assert_eq!(delta, format!("{{\"full\":{new}}}"));
        assert_eq!(apply_delta(old, &delta).unwrap(), new);
    }

    #[test]
    fn identical_plans_produce_empty_replace() {
        let plan = r#"{"status":"solved","edges":[1,2]}"#;
        let delta = render_delta(plan, plan);
        assert_eq!(delta, r#"{"replace":{}}"#);
        assert_eq!(apply_delta(plan, &delta).unwrap(), plan);
    }
}
