//! Canonicalization of assay DAGs into content-addressed cache keys.
//!
//! Two requests that describe the *same computation* must map to the
//! same cache entry even when they spell it differently: fluids renamed
//! (`Glucose` vs `fluidX`), nodes declared in a different order, or the
//! same DAG rebuilt by a different front end. Conversely, anything that
//! changes the dispensing plan — a mix ratio, an output weight, any
//! field of the [`Machine`] — must change the key.
//!
//! The pipeline is:
//!
//! 1. **Structural coloring** — two memoized Merkle passes over the
//!    DAG. The *down* hash of a node digests its [`NodeKind`] payload
//!    (ratios, yields, op vocabulary, output weight — never its name)
//!    together with the sorted multiset of its in-edges'
//!    `(fraction, down(src))` pairs, computed in one topological pass;
//!    the *up* hash does the same over out-edges in one reverse pass.
//!    A node's color combines both, capturing its entire ancestry and
//!    its entire cone of influence in `O(V + E)` work. The pair misses
//!    sibling correlations that cross *between* the directions (a
//!    parent distinguished solely by its up-hash never reaches a
//!    child's down-hash), so the still-tied color classes are polished
//!    with classic refinement rounds — seeded this close to discrete,
//!    they touch only the tied nodes and terminate in a round or two
//!    instead of ~depth full-graph rounds. (The sessions layer
//!    re-canonicalizes on every edit, which is why this pass must be
//!    cheap: the old fixpoint refinement cost more than the solve on
//!    large assays.)
//! 2. **Canonical order** — Kahn's topological sort with the ready set
//!    ordered by color (rank-compressed to `u32` so the heap compares
//!    integers, not 128-bit hashes). Structure-identical inputs
//!    therefore produce the same order no matter how their nodes were
//!    numbered. (Nodes that remain color-tied are structurally
//!    symmetric under both hashes; for genuinely automorphic nodes
//!    either choice yields the identical canonical DAG, and in the rare
//!    non-automorphic tie the key merely splits — a missed cache share,
//!    never a wrong hit.)
//! 3. **Rebuild + interning** — the DAG is rebuilt with nodes in
//!    canonical order, fluid names interned to `f0..fN`, and edges
//!    sorted by `(dst, src, fraction)`. The node and edge permutations
//!    are kept on the [`Canon`] so incremental replanning can translate
//!    between a session's client-numbered DAG and the canonical one;
//!    the edit path skips the rebuild entirely via
//!    `canonicalize_mapped`.
//! 4. **Encoding + key** — the canonical structure, the output weights,
//!    and *every* field of the machine description are serialized into
//!    a byte string whose word-at-a-time mixing hash is the cache key.
//!    The exact encoding is kept alongside the key so the cache can
//!    reject true hash collisions by comparing bytes (see `cache`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;

use aqua_dag::{Dag, EdgeId, NodeId, NodeKind};
use aqua_volume::Machine;

/// Version tag folded into every key: bump when the encoding, the plan
/// format, or the solver semantics change incompatibly, so stale caches
/// (in-process or persisted) can never serve plans from another era.
pub(crate) const KEY_VERSION: &str = "aqua-serve-key/v2";

/// The canonical form of one plan-compilation request.
#[derive(Debug, Clone)]
pub struct Canon {
    /// The relabeled DAG: nodes in canonical order named `f0..fN`,
    /// edges sorted by `(dst, src, fraction)`. Empty when produced by
    /// the mapping-only path.
    pub dag: Dag,
    /// The request's original node names in canonical order:
    /// `names[i]` is what the request called canonical node `i`. Not
    /// part of the encoding or key (keys are rename-invariant); the
    /// protocol layer attaches it to responses so clients can map plan
    /// node ids back to their own fluid names. Empty when produced by
    /// the mapping-only path.
    pub names: Vec<String>,
    /// Node permutation: `node_perm[i]` is the canonical index of the
    /// request's node `i`. Incremental replanning uses it to rename
    /// client-space solve artifacts into canonical plan coordinates.
    pub node_perm: Vec<usize>,
    /// Edge permutation: `edge_perm[e]` is the canonical edge index of
    /// the request's edge `e`, or `None` for dead (cut) edges, which
    /// the canonical DAG omits.
    pub edge_perm: Vec<Option<usize>>,
    /// Output weights, re-keyed to canonical node ids. Empty when
    /// produced by the mapping-only path (replay works in client
    /// coordinates and never needs them).
    pub weights: HashMap<NodeId, u64>,
    /// The exact canonical encoding the key was hashed from; the cache
    /// compares this on lookup to reject 128-bit hash collisions.
    pub encoding: Arc<[u8]>,
    /// The content-addressed cache key (word-mixing hash of
    /// `encoding`).
    pub key: u128,
}

/// Error canonicalizing a request (structurally invalid DAG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonError(pub String);

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot canonicalize assay DAG: {}", self.0)
    }
}

impl std::error::Error for CanonError {}

/// Renders a key as the 32-hex-digit wire form.
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

/// Parses the 32-hex-digit wire form of a key.
pub fn parse_key_hex(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Incremental FNV-1a over 128 bits: tiny, dependency-free, and good
/// enough for content addressing once the cache verifies encodings on
/// hit (so a collision can only cost a miss, never a wrong plan).
pub(crate) struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub(crate) fn new() -> Fnv128 {
        Fnv128(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(&self) -> u128 {
        self.0
    }
}

/// Word-at-a-time mixing hash over 128-bit lanes: one xor-multiply-
/// rotate per word instead of FNV's one multiply per *byte*. Used for
/// the structural Merkle hashes and the encoding key, both of which
/// run on every session edit; collisions can only merge colors (a
/// split key / missed share — the cache verifies encodings byte-wise
/// on hit) so speed wins over cryptographic strength.
#[derive(Clone, Copy)]
struct Mix128(u128);

impl Mix128 {
    const SEED: u128 = 0x9e3779b97f4a7c15f39cc0605cedc835;
    const MUL: u128 = 0x2360ed051fc65da44385df649fccf645;

    fn new() -> Mix128 {
        Mix128(Self::SEED)
    }

    #[inline]
    fn add(&mut self, v: u128) {
        self.0 = (self.0 ^ v).wrapping_mul(Self::MUL).rotate_left(47);
    }

    #[inline]
    fn add_i128(&mut self, v: i128) {
        self.add(v as u128);
    }

    fn finish(self) -> u128 {
        let mut x = self.0;
        x ^= x >> 71;
        x = x.wrapping_mul(Self::MUL);
        x ^ (x >> 64)
    }
}

/// Hashes a byte string 16 bytes at a time (length-tagged, so padding
/// cannot alias).
fn hash_words(bytes: &[u8]) -> u128 {
    let mut h = Mix128::new();
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        h.add(u128::from_le_bytes(c.try_into().expect("16-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 16];
        last[..rem.len()].copy_from_slice(rem);
        h.add(u128::from_le_bytes(last));
    }
    h.add(bytes.len() as u128);
    h.finish()
}

/// Serializes a node kind's *semantic* payload (no names) into `buf`.
/// The op vocabulary of `Process` nodes is fixed by the lowering
/// (`incubate`, `concentrate`, `sense.OD`, ...), never user text, so
/// including it does not break rename-invariance.
fn push_kind(buf: &mut Vec<u8>, kind: &NodeKind) {
    match kind {
        NodeKind::Input => buf.push(0),
        NodeKind::Mix { seconds } => {
            buf.push(1);
            buf.extend_from_slice(&seconds.to_le_bytes());
        }
        NodeKind::Process { op } => {
            buf.push(2);
            buf.extend_from_slice(&(op.len() as u64).to_le_bytes());
            buf.extend_from_slice(op.as_bytes());
        }
        NodeKind::Separate { fraction } => {
            buf.push(3);
            match fraction {
                None => buf.push(0),
                Some(f) => {
                    buf.push(1);
                    buf.extend_from_slice(&f.numer().to_le_bytes());
                    buf.extend_from_slice(&f.denom().to_le_bytes());
                }
            }
        }
        NodeKind::Output => buf.push(4),
        NodeKind::Excess => buf.push(5),
        NodeKind::ConstrainedInput => buf.push(6),
    }
}

fn initial_color(kind: &NodeKind, weight: u64) -> u128 {
    let mut buf = Vec::with_capacity(32);
    push_kind(&mut buf, kind);
    buf.extend_from_slice(&weight.to_le_bytes());
    let mut h = Fnv128::new();
    h.write(&buf);
    h.finish()
}

/// Canonicalizes a request: DAG + explicit output weights + machine.
///
/// # Errors
///
/// Returns [`CanonError`] if the DAG fails validation (cycles, empty
/// graphs, unnormalized fractions) — such requests are rejected before
/// they reach the cache or the solver.
pub fn canonicalize(
    dag: &Dag,
    weights: &HashMap<NodeId, u64>,
    machine: &Machine,
) -> Result<Canon, CanonError> {
    dag.validate().map_err(|e| CanonError(e.to_string()))?;
    canonicalize_impl(dag, weights, machine, true)
}

/// Mapping-only canonicalization for *pre-validated* DAGs: computes the
/// key, encoding, and node/edge permutations but leaves `Canon::dag`,
/// `Canon::names`, and `Canon::weights` empty. The session edit path
/// runs this on every push edit — the canonical DAG itself is only
/// needed on a full recompile, and rebuilding it costs more than the
/// rest of the pipeline combined.
pub(crate) fn canonicalize_mapped(
    dag: &Dag,
    weights: &HashMap<NodeId, u64>,
    machine: &Machine,
) -> Result<Canon, CanonError> {
    canonicalize_impl(dag, weights, machine, false)
}

fn canonicalize_impl(
    dag: &Dag,
    weights: &HashMap<NodeId, u64>,
    machine: &Machine,
    build_dag: bool,
) -> Result<Canon, CanonError> {
    let n = dag.num_nodes();
    let ids: Vec<NodeId> = dag.node_ids().collect();

    // --- 1. Merkle structural coloring (down + up + tied polish) -------
    let topo = dag
        .topological_order()
        .map_err(|e| CanonError(e.to_string()))?;
    let kind_hash: Vec<u128> = ids
        .iter()
        .map(|&id| initial_color(&dag.node(id).kind, weights.get(&id).copied().unwrap_or(0)))
        .collect();
    let mut scratch: Vec<(i128, i128, u128)> = Vec::with_capacity(8);
    let mut down = vec![0u128; n];
    for &id in &topo {
        scratch.clear();
        scratch.extend(dag.in_edges(id).iter().map(|&e| {
            let edge = dag.edge(e);
            (
                edge.fraction.numer(),
                edge.fraction.denom(),
                down[edge.src.index()],
            )
        }));
        scratch.sort_unstable();
        let mut h = Mix128::new();
        h.add(kind_hash[id.index()]);
        h.add(scratch.len() as u128);
        for &(num, den, c) in scratch.iter() {
            h.add_i128(num);
            h.add_i128(den);
            h.add(c);
        }
        down[id.index()] = h.finish();
    }
    let mut up = vec![0u128; n];
    for &id in topo.iter().rev() {
        scratch.clear();
        scratch.extend(dag.out_edges(id).iter().map(|&e| {
            let edge = dag.edge(e);
            (
                edge.fraction.numer(),
                edge.fraction.denom(),
                up[edge.dst.index()],
            )
        }));
        scratch.sort_unstable();
        let mut h = Mix128::new();
        h.add(kind_hash[id.index()]);
        h.add(scratch.len() as u128);
        for &(num, den, c) in scratch.iter() {
            h.add_i128(num);
            h.add_i128(den);
            h.add(c);
        }
        up[id.index()] = h.finish();
    }
    let mut colors: Vec<u128> = (0..n)
        .map(|i| {
            let mut h = Mix128::new();
            h.add(down[i]);
            h.add(up[i]);
            h.finish()
        })
        .collect();

    // Rank-sort colors; nodes sharing a color with a sorted neighbor
    // form the tied classes the polish refines.
    let mut by_color: Vec<(u128, u32)> = (0..n).map(|i| (colors[i], i as u32)).collect();
    by_color.sort_unstable();
    let mut tied: Vec<u32> = Vec::new();
    {
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && by_color[j].0 == by_color[i].0 {
                j += 1;
            }
            if j - i > 1 {
                tied.extend(by_color[i..j].iter().map(|&(_, idx)| idx));
            }
            i = j;
        }
    }
    let had_ties = !tied.is_empty();
    // A singleton class can never split, and its (frozen) color remains
    // a deterministic function of structure, so refining only the tied
    // nodes yields the same final partition as full rounds at a
    // fraction of the cost.
    while !tied.is_empty() {
        // (old color, new color, node) — sorting groups classes, then
        // subclasses, so split detection is two linear scans.
        let mut next: Vec<(u128, u128, u32)> = Vec::with_capacity(tied.len());
        for &idx in &tied {
            let id = ids[idx as usize];
            let mut h = Mix128::new();
            h.add(colors[idx as usize]);
            for (edges, dir) in [(dag.in_edges(id), 0u128), (dag.out_edges(id), 1u128)] {
                scratch.clear();
                scratch.extend(edges.iter().map(|&e| {
                    let edge = dag.edge(e);
                    let other = if dir == 0 { edge.src } else { edge.dst };
                    (
                        edge.fraction.numer(),
                        edge.fraction.denom(),
                        colors[other.index()],
                    )
                }));
                scratch.sort_unstable();
                h.add(dir);
                h.add(scratch.len() as u128);
                for &(num, den, c) in scratch.iter() {
                    h.add_i128(num);
                    h.add_i128(den);
                    h.add(c);
                }
            }
            next.push((colors[idx as usize], h.finish(), idx));
        }
        next.sort_unstable();
        let mut split = false;
        let mut still_tied: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < next.len() {
            let mut j = i + 1;
            while j < next.len() && next[j].0 == next[i].0 {
                j += 1;
            }
            let mut k = i;
            while k < j {
                let mut m = k + 1;
                while m < j && next[m].1 == next[k].1 {
                    m += 1;
                }
                if m - k < j - i {
                    split = true;
                }
                if m - k > 1 {
                    still_tied.extend(next[k..m].iter().map(|&(_, _, idx)| idx));
                }
                k = m;
            }
            i = j;
        }
        for &(_, new, idx) in &next {
            colors[idx as usize] = new;
        }
        if !split {
            break; // fixpoint: no class split this round
        }
        tied = still_tied;
    }
    if had_ties {
        by_color.clear();
        by_color.extend((0..n).map(|i| (colors[i], i as u32)));
        by_color.sort_unstable();
    }

    // --- 2. canonical topological order -------------------------------
    // Rank-compress colors so Kahn's priority heap compares u32 ranks
    // instead of (u128, usize) pairs; (color, original index) is a
    // total order, so the rank is too.
    let mut rank = vec![0u32; n];
    for (r, &(_, idx)) in by_color.iter().enumerate() {
        rank[idx as usize] = r as u32;
    }
    let mut indegree: Vec<u32> = ids
        .iter()
        .map(|&id| dag.in_edges(id).len() as u32)
        .collect();
    let mut heap: BinaryHeap<Reverse<u32>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| Reverse(rank[i]))
        .collect();
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    while let Some(Reverse(r)) = heap.pop() {
        let id = ids[by_color[r as usize].1 as usize];
        order.push(id);
        for &e in dag.out_edges(id) {
            let dst = dag.edge(e).dst;
            indegree[dst.index()] -= 1;
            if indegree[dst.index()] == 0 {
                heap.push(Reverse(rank[dst.index()]));
            }
        }
    }
    if order.len() != n {
        return Err(CanonError("cycle survived validation".to_owned()));
    }
    let mut old_to_new: Vec<usize> = vec![usize::MAX; n];
    for (new_idx, &old) in order.iter().enumerate() {
        old_to_new[old.index()] = new_idx;
    }

    // --- 3. canonical edge order ---------------------------------------
    // Packed (dst << 32 | src) keys resolve almost every comparison with
    // one u64; fractions (then the original edge id, which makes the
    // order total even for parallel equal-fraction edges — the canonical
    // bytes are identical either way, the tiebreak just pins `edge_perm`
    // deterministically) break the rare same-endpoint ties.
    let orig_edges: Vec<EdgeId> = dag.edge_ids().collect();
    let mut sorted_edges: Vec<(u64, u32)> = orig_edges
        .iter()
        .filter(|&&e| dag.edge_is_live(e))
        .map(|&e| {
            let edge = dag.edge(e);
            (
                ((old_to_new[edge.dst.index()] as u64) << 32) | old_to_new[edge.src.index()] as u64,
                e.index() as u32,
            )
        })
        .collect();
    sorted_edges.sort_unstable_by(|a, b| {
        a.0.cmp(&b.0).then_with(|| {
            let fa = dag.edge(orig_edges[a.1 as usize]).fraction;
            let fb = dag.edge(orig_edges[b.1 as usize]).fraction;
            (fa.numer(), fa.denom(), a.1).cmp(&(fb.numer(), fb.denom(), b.1))
        })
    });
    let mut edge_perm: Vec<Option<usize>> = vec![None; dag.num_edges()];
    for (canon_idx, &(_, orig)) in sorted_edges.iter().enumerate() {
        edge_perm[orig as usize] = Some(canon_idx);
    }

    // --- 4. encode and hash --------------------------------------------
    let mut buf: Vec<u8> = Vec::with_capacity(64 + 64 * n);
    buf.extend_from_slice(KEY_VERSION.as_bytes());
    buf.push(0);
    // Machine-spec folding: every field, so no spec change can ever be
    // served a stale plan (capacity, least count, and the full unit
    // inventory all shape rewrites and reservoir allocation).
    for r in [machine.max_capacity_nl(), machine.least_count_nl()] {
        buf.extend_from_slice(&r.numer().to_le_bytes());
        buf.extend_from_slice(&r.denom().to_le_bytes());
    }
    for count in [
        machine.reservoirs,
        machine.mixers,
        machine.heaters,
        machine.separators,
        machine.sensors,
        machine.input_ports,
    ] {
        buf.extend_from_slice(&(count as u64).to_le_bytes());
    }
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    for &old in &order {
        push_kind(&mut buf, &dag.node(old).kind);
        let w = weights.get(&old).copied().unwrap_or(0);
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf.extend_from_slice(&(sorted_edges.len() as u64).to_le_bytes());
    for &(key, orig) in &sorted_edges {
        let f = dag.edge(orig_edges[orig as usize]).fraction;
        let mut rec = [0u8; 48];
        rec[0..8].copy_from_slice(&(key & 0xffff_ffff).to_le_bytes());
        rec[8..16].copy_from_slice(&(key >> 32).to_le_bytes());
        rec[16..32].copy_from_slice(&f.numer().to_le_bytes());
        rec[32..48].copy_from_slice(&f.denom().to_le_bytes());
        buf.extend_from_slice(&rec);
    }
    let key = hash_words(&buf);

    // --- 5. rebuild (full path only) -----------------------------------
    let (canon_dag, names, canon_weights) = if build_dag {
        let mut canon_dag = Dag::new();
        let mut names: Vec<String> = Vec::with_capacity(n);
        let mut new_ids: Vec<NodeId> = Vec::with_capacity(n);
        for (new_idx, &old) in order.iter().enumerate() {
            names.push(dag.node(old).name.clone());
            new_ids.push(canon_dag.add_node(format!("f{new_idx}"), dag.node(old).kind.clone()));
        }
        for &(key, orig) in &sorted_edges {
            let src = (key & 0xffff_ffff) as usize;
            let dst = (key >> 32) as usize;
            canon_dag.add_edge(
                new_ids[src],
                new_ids[dst],
                dag.edge(orig_edges[orig as usize]).fraction,
            );
        }
        let mut canon_weights: HashMap<NodeId, u64> = HashMap::with_capacity(weights.len());
        for (&old, &w) in weights {
            if let Some(&new_idx) = old_to_new.get(old.index()) {
                if new_idx != usize::MAX {
                    canon_weights.insert(new_ids[new_idx], w);
                }
            }
        }
        (canon_dag, names, canon_weights)
    } else {
        (Dag::new(), Vec::new(), HashMap::new())
    };

    Ok(Canon {
        dag: canon_dag,
        names,
        node_perm: old_to_new,
        edge_perm,
        weights: canon_weights,
        encoding: Arc::from(buf.into_boxed_slice()),
        key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_rational::Ratio;

    fn mix_assay(parts: &[(u64, u64)]) -> Dag {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        for (i, &(pa, pb)) in parts.iter().enumerate() {
            let m = d.add_mix(format!("m{i}"), &[(a, pa), (b, pb)], 10).unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        d
    }

    fn key_of(dag: &Dag) -> u128 {
        canonicalize(dag, &HashMap::new(), &Machine::paper_default())
            .unwrap()
            .key
    }

    #[test]
    fn renaming_fluids_keeps_the_key() {
        let mut renamed = Dag::new();
        let a = renamed.add_input("SampleXYZ");
        let b = renamed.add_input("ReagentQ");
        let m = renamed.add_mix("weird", &[(a, 1), (b, 4)], 10).unwrap();
        renamed.add_process("out", "sense.OD", m);
        assert_eq!(key_of(&mix_assay(&[(1, 4)])), key_of(&renamed));
    }

    #[test]
    fn permuting_node_order_keeps_the_key() {
        // Same structure, inputs declared in the opposite order and the
        // mix parts swapped to match.
        let mut permuted = Dag::new();
        let b = permuted.add_input("B");
        let a = permuted.add_input("A");
        let m = permuted.add_mix("m0", &[(b, 4), (a, 1)], 10).unwrap();
        permuted.add_process("s0", "sense.OD", m);
        assert_eq!(key_of(&mix_assay(&[(1, 4)])), key_of(&permuted));
    }

    #[test]
    fn different_mix_ratios_change_the_key() {
        let k14 = key_of(&mix_assay(&[(1, 4)]));
        let k15 = key_of(&mix_assay(&[(1, 5)]));
        let k41 = key_of(&mix_assay(&[(4, 1)]));
        assert_ne!(k14, k15);
        assert_ne!(k15, k41);
        // 1:4 and 4:1 over two otherwise-identical inputs are the SAME
        // computation up to renaming (swap the inputs): canonicalization
        // deliberately quotients by that isomorphism, and the response's
        // `names` array tells each client which input became which
        // canonical node.
        assert_eq!(k14, k41);
    }

    #[test]
    fn names_map_canonical_ids_back_to_request_names() {
        let mut d = Dag::new();
        let a = d.add_input("SampleXYZ");
        let b = d.add_input("ReagentQ");
        let m = d.add_mix("weird", &[(a, 1), (b, 4)], 10).unwrap();
        d.add_process("out", "sense.OD", m);
        let canon = canonicalize(&d, &HashMap::new(), &Machine::paper_default()).unwrap();
        assert_eq!(canon.names.len(), canon.dag.num_nodes());
        let mut sorted = canon.names.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec!["ReagentQ", "SampleXYZ", "out", "weird"],
            "every request name appears exactly once"
        );
    }

    #[test]
    fn every_machine_field_is_folded_into_the_key() {
        let dag = mix_assay(&[(1, 4)]);
        let weights = HashMap::new();
        let base = Machine::paper_default();
        let base_key = canonicalize(&dag, &weights, &base).unwrap().key;
        let variants: Vec<Machine> = vec![
            Machine::new(Ratio::from_int(50), base.least_count_nl()).unwrap(),
            Machine::new(base.max_capacity_nl(), Ratio::new(1, 5).unwrap()).unwrap(),
            base.clone().with_reservoirs(4),
            base.clone().with_input_ports(2),
            {
                let mut m = base.clone();
                m.mixers = 1;
                m
            },
            {
                let mut m = base.clone();
                m.heaters = 7;
                m
            },
            {
                let mut m = base.clone();
                m.separators = 9;
                m
            },
            {
                let mut m = base.clone();
                m.sensors = 5;
                m
            },
        ];
        for (i, m) in variants.iter().enumerate() {
            let k = canonicalize(&dag, &weights, m).unwrap().key;
            assert_ne!(k, base_key, "machine variant {i} did not change the key");
        }
    }

    #[test]
    fn output_weights_change_the_key() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 1)], 0).unwrap();
        let o = d.add_output("out", m);
        let unweighted = canonicalize(&d, &HashMap::new(), &Machine::paper_default()).unwrap();
        let mut w = HashMap::new();
        w.insert(o, 3u64);
        let weighted = canonicalize(&d, &w, &Machine::paper_default()).unwrap();
        assert_ne!(unweighted.key, weighted.key);
    }

    #[test]
    fn canonical_dag_is_valid_and_interned() {
        let canon = canonicalize(
            &mix_assay(&[(1, 4), (2, 3)]),
            &HashMap::new(),
            &Machine::paper_default(),
        )
        .unwrap();
        assert!(canon.dag.validate().is_ok());
        for (i, id) in canon.dag.node_ids().enumerate() {
            assert_eq!(canon.dag.node(id).name, format!("f{i}"));
        }
        // Canonical order is topological.
        let order = canon.dag.topological_order().unwrap();
        assert_eq!(order.len(), canon.dag.num_nodes());
    }

    #[test]
    fn mapped_variant_matches_full_canonicalization() {
        let dag = mix_assay(&[(1, 4), (2, 3), (1, 999)]);
        let weights = HashMap::new();
        let machine = Machine::paper_default();
        let full = canonicalize(&dag, &weights, &machine).unwrap();
        let mapped = canonicalize_mapped(&dag, &weights, &machine).unwrap();
        assert_eq!(full.key, mapped.key);
        assert_eq!(full.encoding, mapped.encoding);
        assert_eq!(full.node_perm, mapped.node_perm);
        assert_eq!(full.edge_perm, mapped.edge_perm);
        assert!(mapped.dag.num_nodes() == 0 && mapped.names.is_empty());
    }

    #[test]
    fn permutations_translate_client_ids_to_canonical_ids() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 4)], 10).unwrap();
        d.add_process("s", "sense.OD", m);
        let canon = canonicalize(&d, &HashMap::new(), &Machine::paper_default()).unwrap();
        // node_perm: canonical node node_perm[i] must have the client's
        // name for node i in `names`.
        for (client_idx, &canon_idx) in canon.node_perm.iter().enumerate() {
            assert_eq!(
                canon.names[canon_idx],
                d.node(d.node_ids().nth(client_idx).unwrap()).name
            );
        }
        // edge_perm: the mapped canonical edge must carry the same
        // fraction and map endpoints through node_perm.
        let canon_edges: Vec<_> = canon.dag.edge_ids().collect();
        for (client_idx, e) in d.edge_ids().enumerate() {
            let mapped = canon.edge_perm[client_idx].unwrap();
            let ce = canon.dag.edge(canon_edges[mapped]);
            let oe = d.edge(e);
            assert_eq!(ce.fraction, oe.fraction);
            assert_eq!(ce.src.index(), canon.node_perm[oe.src.index()]);
            assert_eq!(ce.dst.index(), canon.node_perm[oe.dst.index()]);
        }
    }

    #[test]
    fn key_hex_round_trips() {
        let k = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        assert_eq!(parse_key_hex(&key_hex(k)), Some(k));
        assert_eq!(parse_key_hex("zz"), None);
        assert_eq!(parse_key_hex("123"), None);
    }
}
