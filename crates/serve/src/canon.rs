//! Canonicalization of assay DAGs into content-addressed cache keys.
//!
//! Two requests that describe the *same computation* must map to the
//! same cache entry even when they spell it differently: fluids renamed
//! (`Glucose` vs `fluidX`), nodes declared in a different order, or the
//! same DAG rebuilt by a different front end. Conversely, anything that
//! changes the dispensing plan — a mix ratio, an output weight, any
//! field of the [`Machine`] — must change the key.
//!
//! The pipeline is:
//!
//! 1. **Structural coloring** — an iterated Weisfeiler–Leman refinement
//!    over the DAG. Each node starts from a hash of its
//!    [`NodeKind`] payload (ratios, yields, op vocabulary, output
//!    weight — never its name) and is repeatedly re-hashed with the
//!    sorted multiset of its in/out neighbors' `(fraction, color)`
//!    pairs until the color partition stops refining.
//! 2. **Canonical order** — Kahn's topological sort with the ready set
//!    ordered by color. Structure-identical inputs therefore produce
//!    the same order no matter how their nodes were numbered. (Nodes
//!    that remain color-tied are WL-symmetric; for genuinely automorphic
//!    nodes either choice yields the identical canonical DAG, and in the
//!    rare non-automorphic tie the key merely splits — a missed cache
//!    share, never a wrong hit.)
//! 3. **Rebuild + interning** — the DAG is rebuilt with nodes in
//!    canonical order, fluid names interned to `f0..fN`, and edges
//!    sorted by `(dst, src, fraction)`.
//! 4. **Encoding + key** — the canonical structure, the output weights,
//!    and *every* field of the machine description are serialized into
//!    a byte string whose FNV-1a-128 hash is the cache key. The exact
//!    encoding is kept alongside the key so the cache can reject true
//!    hash collisions by comparing bytes (see `cache`).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use aqua_dag::{Dag, NodeId, NodeKind};
use aqua_volume::Machine;

/// Version tag folded into every key: bump when the encoding, the plan
/// format, or the solver semantics change incompatibly, so stale caches
/// (in-process or persisted) can never serve plans from another era.
pub(crate) const KEY_VERSION: &str = "aqua-serve-key/v1";

/// Upper bound on WL refinement rounds; practical assay DAGs stabilize
/// within (depth + 2) rounds, this is a safety valve for adversarial
/// shapes.
const MAX_REFINE_ROUNDS: usize = 64;

/// The canonical form of one plan-compilation request.
#[derive(Debug, Clone)]
pub struct Canon {
    /// The relabeled DAG: nodes in canonical order named `f0..fN`,
    /// edges sorted by `(dst, src, fraction)`.
    pub dag: Dag,
    /// The request's original node names in canonical order:
    /// `names[i]` is what the request called canonical node `i`. Not
    /// part of the encoding or key (keys are rename-invariant); the
    /// protocol layer attaches it to responses so clients can map plan
    /// node ids back to their own fluid names.
    pub names: Vec<String>,
    /// Output weights, re-keyed to canonical node ids.
    pub weights: HashMap<NodeId, u64>,
    /// The exact canonical encoding the key was hashed from; the cache
    /// compares this on lookup to reject 128-bit hash collisions.
    pub encoding: Arc<[u8]>,
    /// The content-addressed cache key (FNV-1a-128 of `encoding`).
    pub key: u128,
}

/// Error canonicalizing a request (structurally invalid DAG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonError(pub String);

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot canonicalize assay DAG: {}", self.0)
    }
}

impl std::error::Error for CanonError {}

/// Renders a key as the 32-hex-digit wire form.
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

/// Parses the 32-hex-digit wire form of a key.
pub fn parse_key_hex(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Incremental FNV-1a over 128 bits: tiny, dependency-free, and good
/// enough for content addressing once the cache verifies encodings on
/// hit (so a collision can only cost a miss, never a wrong plan).
pub(crate) struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub(crate) fn new() -> Fnv128 {
        Fnv128(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    fn write_i128(&mut self, v: i128) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u128 {
        self.0
    }
}

/// Serializes a node kind's *semantic* payload (no names) into `buf`.
/// The op vocabulary of `Process` nodes is fixed by the lowering
/// (`incubate`, `concentrate`, `sense.OD`, ...), never user text, so
/// including it does not break rename-invariance.
fn push_kind(buf: &mut Vec<u8>, kind: &NodeKind) {
    match kind {
        NodeKind::Input => buf.push(0),
        NodeKind::Mix { seconds } => {
            buf.push(1);
            buf.extend_from_slice(&seconds.to_le_bytes());
        }
        NodeKind::Process { op } => {
            buf.push(2);
            buf.extend_from_slice(&(op.len() as u64).to_le_bytes());
            buf.extend_from_slice(op.as_bytes());
        }
        NodeKind::Separate { fraction } => {
            buf.push(3);
            match fraction {
                None => buf.push(0),
                Some(f) => {
                    buf.push(1);
                    buf.extend_from_slice(&f.numer().to_le_bytes());
                    buf.extend_from_slice(&f.denom().to_le_bytes());
                }
            }
        }
        NodeKind::Output => buf.push(4),
        NodeKind::Excess => buf.push(5),
        NodeKind::ConstrainedInput => buf.push(6),
    }
}

fn initial_color(kind: &NodeKind, weight: u64) -> u128 {
    let mut buf = Vec::with_capacity(32);
    push_kind(&mut buf, kind);
    buf.extend_from_slice(&weight.to_le_bytes());
    let mut h = Fnv128::new();
    h.write(&buf);
    h.finish()
}

fn distinct_colors(colors: &[u128]) -> usize {
    let mut sorted: Vec<u128> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Canonicalizes a request: DAG + explicit output weights + machine.
///
/// # Errors
///
/// Returns [`CanonError`] if the DAG fails validation (cycles, empty
/// graphs, unnormalized fractions) — such requests are rejected before
/// they reach the cache or the solver.
pub fn canonicalize(
    dag: &Dag,
    weights: &HashMap<NodeId, u64>,
    machine: &Machine,
) -> Result<Canon, CanonError> {
    dag.validate().map_err(|e| CanonError(e.to_string()))?;
    let n = dag.num_nodes();
    let ids: Vec<NodeId> = dag.node_ids().collect();

    // --- 1. WL color refinement ---------------------------------------
    let mut colors: Vec<u128> = ids
        .iter()
        .map(|&id| initial_color(&dag.node(id).kind, weights.get(&id).copied().unwrap_or(0)))
        .collect();
    let mut partition = distinct_colors(&colors);
    for _ in 0..MAX_REFINE_ROUNDS.min(n) {
        if partition == n {
            break;
        }
        let mut next = Vec::with_capacity(n);
        for &id in &ids {
            let mut h = Fnv128::new();
            h.write_u128(colors[id.index()]);
            let mut ins: Vec<(i128, i128, u128)> = dag
                .in_edges(id)
                .iter()
                .map(|&e| {
                    let edge = dag.edge(e);
                    (
                        edge.fraction.numer(),
                        edge.fraction.denom(),
                        colors[edge.src.index()],
                    )
                })
                .collect();
            ins.sort_unstable();
            h.write_u64(ins.len() as u64);
            for (num, den, c) in ins {
                h.write_i128(num);
                h.write_i128(den);
                h.write_u128(c);
            }
            let mut outs: Vec<(i128, i128, u128)> = dag
                .out_edges(id)
                .iter()
                .map(|&e| {
                    let edge = dag.edge(e);
                    (
                        edge.fraction.numer(),
                        edge.fraction.denom(),
                        colors[edge.dst.index()],
                    )
                })
                .collect();
            outs.sort_unstable();
            h.write_u64(outs.len() as u64);
            for (num, den, c) in outs {
                h.write_i128(num);
                h.write_i128(den);
                h.write_u128(c);
            }
            next.push(h.finish());
        }
        colors = next;
        let refined = distinct_colors(&colors);
        if refined == partition {
            break; // fixpoint: no round can refine further
        }
        partition = refined;
    }

    // --- 2. canonical topological order -------------------------------
    let mut indegree: Vec<usize> = ids.iter().map(|&id| dag.in_edges(id).len()).collect();
    let mut ready: BTreeSet<(u128, usize)> = ids
        .iter()
        .filter(|id| indegree[id.index()] == 0)
        .map(|id| (colors[id.index()], id.index()))
        .collect();
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    while let Some(&(color, idx)) = ready.iter().next() {
        ready.remove(&(color, idx));
        let id = ids[idx];
        order.push(id);
        for &e in dag.out_edges(id) {
            let dst = dag.edge(e).dst;
            indegree[dst.index()] -= 1;
            if indegree[dst.index()] == 0 {
                ready.insert((colors[dst.index()], dst.index()));
            }
        }
    }
    if order.len() != n {
        return Err(CanonError("cycle survived validation".to_owned()));
    }

    // --- 3. rebuild with interned names and sorted edges ---------------
    let mut canon_dag = Dag::new();
    let mut old_to_new: Vec<usize> = vec![usize::MAX; n];
    let mut new_ids: Vec<NodeId> = Vec::with_capacity(n);
    let mut names: Vec<String> = Vec::with_capacity(n);
    for (new_idx, &old) in order.iter().enumerate() {
        old_to_new[old.index()] = new_idx;
        names.push(dag.node(old).name.clone());
        new_ids.push(canon_dag.add_node(format!("f{new_idx}"), dag.node(old).kind.clone()));
    }
    let mut edges: Vec<(usize, usize, i128, i128)> = dag
        .edge_ids()
        .filter(|&e| dag.edge_is_live(e))
        .map(|e| {
            let edge = dag.edge(e);
            (
                old_to_new[edge.dst.index()],
                old_to_new[edge.src.index()],
                edge.fraction.numer(),
                edge.fraction.denom(),
            )
        })
        .collect();
    edges.sort_unstable();
    for &(dst, src, num, den) in &edges {
        let fraction = aqua_rational::Ratio::new(num, den)
            .map_err(|e| CanonError(format!("edge fraction: {e}")))?;
        canon_dag.add_edge(new_ids[src], new_ids[dst], fraction);
    }
    let mut canon_weights: HashMap<NodeId, u64> = HashMap::with_capacity(weights.len());
    for (&old, &w) in weights {
        if let Some(&new_idx) = old_to_new.get(old.index()) {
            if new_idx != usize::MAX {
                canon_weights.insert(new_ids[new_idx], w);
            }
        }
    }

    // --- 4. encode and hash --------------------------------------------
    let mut buf: Vec<u8> = Vec::with_capacity(64 + 64 * n);
    buf.extend_from_slice(KEY_VERSION.as_bytes());
    buf.push(0);
    // Machine-spec folding: every field, so no spec change can ever be
    // served a stale plan (capacity, least count, and the full unit
    // inventory all shape rewrites and reservoir allocation).
    for r in [machine.max_capacity_nl(), machine.least_count_nl()] {
        buf.extend_from_slice(&r.numer().to_le_bytes());
        buf.extend_from_slice(&r.denom().to_le_bytes());
    }
    for count in [
        machine.reservoirs,
        machine.mixers,
        machine.heaters,
        machine.separators,
        machine.sensors,
        machine.input_ports,
    ] {
        buf.extend_from_slice(&(count as u64).to_le_bytes());
    }
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    for &new_id in &new_ids {
        push_kind(&mut buf, &canon_dag.node(new_id).kind);
        let w = canon_weights.get(&new_id).copied().unwrap_or(0);
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf.extend_from_slice(&(edges.len() as u64).to_le_bytes());
    for &(dst, src, num, den) in &edges {
        buf.extend_from_slice(&(src as u64).to_le_bytes());
        buf.extend_from_slice(&(dst as u64).to_le_bytes());
        buf.extend_from_slice(&num.to_le_bytes());
        buf.extend_from_slice(&den.to_le_bytes());
    }
    let mut h = Fnv128::new();
    h.write(&buf);
    let key = h.finish();

    Ok(Canon {
        dag: canon_dag,
        names,
        weights: canon_weights,
        encoding: Arc::from(buf.into_boxed_slice()),
        key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_rational::Ratio;

    fn mix_assay(parts: &[(u64, u64)]) -> Dag {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        for (i, &(pa, pb)) in parts.iter().enumerate() {
            let m = d.add_mix(format!("m{i}"), &[(a, pa), (b, pb)], 10).unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        d
    }

    fn key_of(dag: &Dag) -> u128 {
        canonicalize(dag, &HashMap::new(), &Machine::paper_default())
            .unwrap()
            .key
    }

    #[test]
    fn renaming_fluids_keeps_the_key() {
        let mut renamed = Dag::new();
        let a = renamed.add_input("SampleXYZ");
        let b = renamed.add_input("ReagentQ");
        let m = renamed.add_mix("weird", &[(a, 1), (b, 4)], 10).unwrap();
        renamed.add_process("out", "sense.OD", m);
        assert_eq!(key_of(&mix_assay(&[(1, 4)])), key_of(&renamed));
    }

    #[test]
    fn permuting_node_order_keeps_the_key() {
        // Same structure, inputs declared in the opposite order and the
        // mix parts swapped to match.
        let mut permuted = Dag::new();
        let b = permuted.add_input("B");
        let a = permuted.add_input("A");
        let m = permuted.add_mix("m0", &[(b, 4), (a, 1)], 10).unwrap();
        permuted.add_process("s0", "sense.OD", m);
        assert_eq!(key_of(&mix_assay(&[(1, 4)])), key_of(&permuted));
    }

    #[test]
    fn different_mix_ratios_change_the_key() {
        let k14 = key_of(&mix_assay(&[(1, 4)]));
        let k15 = key_of(&mix_assay(&[(1, 5)]));
        let k41 = key_of(&mix_assay(&[(4, 1)]));
        assert_ne!(k14, k15);
        assert_ne!(k15, k41);
        // 1:4 and 4:1 over two otherwise-identical inputs are the SAME
        // computation up to renaming (swap the inputs): canonicalization
        // deliberately quotients by that isomorphism, and the response's
        // `names` array tells each client which input became which
        // canonical node.
        assert_eq!(k14, k41);
    }

    #[test]
    fn names_map_canonical_ids_back_to_request_names() {
        let mut d = Dag::new();
        let a = d.add_input("SampleXYZ");
        let b = d.add_input("ReagentQ");
        let m = d.add_mix("weird", &[(a, 1), (b, 4)], 10).unwrap();
        d.add_process("out", "sense.OD", m);
        let canon = canonicalize(&d, &HashMap::new(), &Machine::paper_default()).unwrap();
        assert_eq!(canon.names.len(), canon.dag.num_nodes());
        let mut sorted = canon.names.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec!["ReagentQ", "SampleXYZ", "out", "weird"],
            "every request name appears exactly once"
        );
    }

    #[test]
    fn every_machine_field_is_folded_into_the_key() {
        let dag = mix_assay(&[(1, 4)]);
        let weights = HashMap::new();
        let base = Machine::paper_default();
        let base_key = canonicalize(&dag, &weights, &base).unwrap().key;
        let variants: Vec<Machine> = vec![
            Machine::new(Ratio::from_int(50), base.least_count_nl()).unwrap(),
            Machine::new(base.max_capacity_nl(), Ratio::new(1, 5).unwrap()).unwrap(),
            base.clone().with_reservoirs(4),
            base.clone().with_input_ports(2),
            {
                let mut m = base.clone();
                m.mixers = 1;
                m
            },
            {
                let mut m = base.clone();
                m.heaters = 7;
                m
            },
            {
                let mut m = base.clone();
                m.separators = 9;
                m
            },
            {
                let mut m = base.clone();
                m.sensors = 5;
                m
            },
        ];
        for (i, m) in variants.iter().enumerate() {
            let k = canonicalize(&dag, &weights, m).unwrap().key;
            assert_ne!(k, base_key, "machine variant {i} did not change the key");
        }
    }

    #[test]
    fn output_weights_change_the_key() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 1)], 0).unwrap();
        let o = d.add_output("out", m);
        let unweighted = canonicalize(&d, &HashMap::new(), &Machine::paper_default()).unwrap();
        let mut w = HashMap::new();
        w.insert(o, 3u64);
        let weighted = canonicalize(&d, &w, &Machine::paper_default()).unwrap();
        assert_ne!(unweighted.key, weighted.key);
    }

    #[test]
    fn canonical_dag_is_valid_and_interned() {
        let canon = canonicalize(
            &mix_assay(&[(1, 4), (2, 3)]),
            &HashMap::new(),
            &Machine::paper_default(),
        )
        .unwrap();
        assert!(canon.dag.validate().is_ok());
        for (i, id) in canon.dag.node_ids().enumerate() {
            assert_eq!(canon.dag.node(id).name, format!("f{i}"));
        }
        // Canonical order is topological.
        let order = canon.dag.topological_order().unwrap();
        assert_eq!(order.len(), canon.dag.num_nodes());
    }

    #[test]
    fn key_hex_round_trips() {
        let k = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        assert_eq!(parse_key_hex(&key_hex(k)), Some(k));
        assert_eq!(parse_key_hex("zz"), None);
        assert_eq!(parse_key_hex("123"), None);
    }
}
