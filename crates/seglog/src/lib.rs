//! A CRC-guarded append-only segment log over opaque payloads.
//!
//! Extracted from `aqua-serve`'s plan store so any subsystem that needs
//! durable append-only records — the plan store, the replay service's
//! run-descriptor log — shares one crash-safety story:
//!
//! * **Append-only segments** — records are only ever appended to the
//!   active segment (`seg-NNNNNN.log`); when it passes
//!   [`LogConfig::segment_bytes`] a new segment is rotated in. No
//!   record is ever rewritten in place, so a crash can only damage the
//!   tail of the newest segment.
//! * **CRC-guarded records** — every record is framed as
//!   `[payload_len u32][payload][crc32 u32]` with the CRC taken over
//!   the length prefix and payload. A record that fails its CRC (or
//!   whose declared length runs past the file) is *torn*: recovery
//!   stops scanning that segment at the record's start.
//! * **Torn-tail truncation** — on [`SegmentLog::open`] the tail of the
//!   last segment is physically truncated back to the last intact
//!   record, so a half-written record can never shadow later appends.
//! * **Era fencing** — each segment leads with a header embedding the
//!   caller's [`LogConfig::version`] string. A segment written under
//!   another era is skipped wholesale on recovery and reclaimed by
//!   compaction.
//! * **Compaction** — [`SegmentLog::compact`] rewrites a caller-chosen
//!   live set into fresh segments and deletes every old file
//!   (reclaiming stale-era segments and torn tails). What "live" means
//!   — deduplication, key indexing — is the caller's policy; the log
//!   only stores bytes.
//!
//! The log is deliberately **not** internally synchronized: callers
//! wrap it in a `Mutex` when they share it (appends on their cold
//! paths dwarf the lock).
//!
//! # Examples
//!
//! ```
//! use aqua_seglog::{LogConfig, SegmentLog};
//!
//! let dir = std::env::temp_dir().join(format!("seglog-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = LogConfig::at(&dir, "doc/v1");
//! {
//!     let (mut log, records, _report) = SegmentLog::open(config.clone())?;
//!     assert!(records.is_empty());
//!     log.append(b"hello")?;
//!     log.append(b"world")?;
//! }
//! let (_log, records, report) = SegmentLog::open(config)?;
//! assert_eq!(report.records, 2);
//! assert_eq!(&records[0].payload[..], b"hello");
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Per-segment header magic; the full header is
/// `aqlog1 <version>\n` behind a little-endian u32 length prefix.
const SEGMENT_MAGIC: &str = "aqlog1";

/// Sanity bound on any single payload (64 MiB). A declared length
/// beyond this is treated as corruption, not an allocation request.
pub const MAX_PAYLOAD_BYTES: u32 = 64 << 20;

/// Bytes of framing around each payload: `payload_len u32` + `crc u32`.
pub const FRAME_BYTES: u64 = 8;

/// Log tuning knobs.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Rotate the active segment once it grows past this many bytes.
    pub segment_bytes: u64,
    /// `fsync` after every append. Off by default: most callers treat
    /// the log as a warm cache where a torn tail only costs recompute.
    pub fsync: bool,
    /// Era string embedded in every segment header. Segments written
    /// under a different version are skipped wholesale on recovery.
    pub version: String,
}

impl LogConfig {
    /// Defaults (4 MiB segments, no fsync) rooted at `dir` under `version`.
    pub fn at(dir: impl Into<PathBuf>, version: impl Into<String>) -> LogConfig {
        LogConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            fsync: false,
            version: version.into(),
        }
    }
}

/// Where a record's bytes live on disk (exposed so callers can build
/// indexes, and so recovery tests can truncate/corrupt exact offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// Segment id the record lives in.
    pub segment: u64,
    /// Byte offset of the record (its length prefix) within the segment.
    pub offset: u64,
    /// Total framed record length in bytes (length + payload + CRC).
    pub len: u64,
}

/// One recovered record: its payload plus where it lives.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The record's payload bytes, exactly as appended.
    pub payload: Vec<u8>,
    /// The record's on-disk location.
    pub span: RecordSpan,
}

/// What recovery found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records rehydrated.
    pub records: usize,
    /// Segments scanned (current-era, readable).
    pub segments: usize,
    /// Segments skipped because their header carried another era
    /// version (or no valid header at all).
    pub stale_segments: usize,
    /// Bytes dropped from the last segment's torn tail.
    pub truncated_bytes: u64,
    /// Torn or corrupt records abandoned mid-segment (each one ends
    /// its segment's scan).
    pub torn_records: usize,
}

struct ActiveSegment {
    id: u64,
    writer: BufWriter<File>,
    len: u64,
}

/// The append-only segment log. Not internally synchronized.
pub struct SegmentLog {
    config: LogConfig,
    /// Ids of every segment currently on disk (sorted ascending).
    segments: Vec<u64>,
    active: ActiveSegment,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

fn segment_header(version: &str) -> Vec<u8> {
    let text = format!("{SEGMENT_MAGIC} {version}\n");
    let mut out = Vec::with_capacity(4 + text.len());
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    out
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the classic zlib
/// polynomial, table-driven, dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Renders one framed record: `[payload_len u32][payload][crc32 u32]`,
/// CRC over everything before it.
fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_BYTES as usize + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

/// One segment's scan result.
struct SegmentScan {
    records: Vec<Recovered>,
    /// Offset of the first torn byte (== file len when the whole
    /// segment is intact).
    intact_len: u64,
    /// Whether the scan ended on a torn/corrupt record.
    torn: bool,
    /// Whether the header was missing or from another era.
    stale: bool,
}

fn scan_segment(path: &Path, id: u64, version: &str) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let header = segment_header(version);
    if bytes.len() < header.len() || bytes[..header.len()] != header[..] {
        return Ok(SegmentScan {
            records: Vec::new(),
            intact_len: 0,
            torn: false,
            stale: true,
        });
    }
    let mut records = Vec::new();
    let mut pos = header.len();
    let mut torn = false;
    while pos < bytes.len() {
        let start = pos;
        if bytes.len() - pos < FRAME_BYTES as usize {
            torn = true;
            break;
        }
        let payload_len = read_u32(&bytes, pos) as usize;
        if payload_len as u64 > MAX_PAYLOAD_BYTES as u64 {
            torn = true;
            break;
        }
        let total = FRAME_BYTES as usize + payload_len;
        if bytes.len() - pos < total {
            torn = true;
            break;
        }
        let body = &bytes[pos..pos + total - 4];
        let declared_crc = read_u32(&bytes, pos + total - 4);
        if crc32(body) != declared_crc {
            torn = true;
            break;
        }
        let payload = bytes[pos + 4..pos + 4 + payload_len].to_vec();
        pos += total;
        records.push(Recovered {
            payload,
            span: RecordSpan {
                segment: id,
                offset: start as u64,
                len: total as u64,
            },
        });
    }
    Ok(SegmentScan {
        records,
        intact_len: pos as u64,
        torn,
        stale: false,
    })
}

fn list_segment_ids(dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

fn open_for_append(path: &Path) -> io::Result<(BufWriter<File>, u64)> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let len = file.seek(SeekFrom::End(0))?;
    Ok((BufWriter::new(file), len))
}

impl SegmentLog {
    /// Opens (or creates) the log, recovering every intact record.
    ///
    /// Recovery scans segments in id order, stops each segment's scan
    /// at the first torn or corrupt record, truncates the *last*
    /// segment back to its intact prefix, and skips segments written
    /// under another era version. Returns the log, the recovered
    /// records in append order, and a report of what was repaired.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading/repairing the
    /// segment files.
    pub fn open(config: LogConfig) -> io::Result<(SegmentLog, Vec<Recovered>, RecoveryReport)> {
        fs::create_dir_all(&config.dir)?;
        let ids = list_segment_ids(&config.dir)?;
        let mut report = RecoveryReport::default();
        let mut records: Vec<Recovered> = Vec::new();
        let mut live_segments: Vec<u64> = Vec::new();
        // Can the last segment be reused as the active one? (Current
        // era, intact after any truncation, still under the size cap.)
        let mut reuse_last: Option<(u64, u64)> = None;
        for (i, &id) in ids.iter().enumerate() {
            let path = segment_path(&config.dir, id);
            let scan = scan_segment(&path, id, &config.version)?;
            let last = i + 1 == ids.len();
            if scan.stale {
                report.stale_segments += 1;
                live_segments.push(id); // kept on disk until compaction
                continue;
            }
            report.segments += 1;
            if scan.torn {
                report.torn_records += 1;
                if last {
                    // Torn tail of the newest segment: physically
                    // truncate so future appends start on a clean edge.
                    let file = OpenOptions::new().write(true).open(&path)?;
                    let full = file.metadata()?.len();
                    report.truncated_bytes += full - scan.intact_len;
                    file.set_len(scan.intact_len)?;
                    file.sync_all()?;
                }
            }
            if last && scan.intact_len < config.segment_bytes {
                reuse_last = Some((id, scan.intact_len));
            }
            records.extend(scan.records);
            live_segments.push(id);
        }
        report.records = records.len();

        let active = match reuse_last {
            Some((id, len)) => {
                let (writer, file_len) = open_for_append(&segment_path(&config.dir, id))?;
                debug_assert_eq!(file_len, len, "truncation left the intact prefix");
                ActiveSegment { id, writer, len }
            }
            None => {
                let id = ids.last().map_or(0, |last| last + 1);
                let header = segment_header(&config.version);
                let (mut writer, _) = open_for_append(&segment_path(&config.dir, id))?;
                writer.write_all(&header)?;
                writer.flush()?;
                live_segments.push(id);
                ActiveSegment {
                    id,
                    writer,
                    len: header.len() as u64,
                }
            }
        };
        let log = SegmentLog {
            config,
            segments: live_segments,
            active,
        };
        Ok((log, records, report))
    }

    /// Appends one payload, returning where its framed record landed.
    /// Rotates the active segment afterwards if it passed the size cap.
    ///
    /// # Errors
    ///
    /// I/O errors writing, flushing, or rotating the active segment.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<RecordSpan> {
        let record = encode_record(payload);
        let offset = self.active.len;
        self.active.writer.write_all(&record)?;
        self.active.writer.flush()?;
        if self.config.fsync {
            self.active.writer.get_ref().sync_data()?;
        }
        self.active.len += record.len() as u64;
        let span = RecordSpan {
            segment: self.active.id,
            offset,
            len: record.len() as u64,
        };
        if self.active.len >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok(span)
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.active.writer.flush()?;
        if self.config.fsync {
            self.active.writer.get_ref().sync_data()?;
        }
        let next_id = self.active.id + 1;
        let path = segment_path(&self.config.dir, next_id);
        let header = segment_header(&self.config.version);
        let (mut writer, _) = open_for_append(&path)?;
        writer.write_all(&header)?;
        writer.flush()?;
        self.segments.push(next_id);
        self.active = ActiveSegment {
            id: next_id,
            writer,
            len: header.len() as u64,
        };
        Ok(())
    }

    /// Reads one record's payload back from disk (CRC re-checked).
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` if the bytes at the span no longer
    /// frame a CRC-intact record.
    pub fn read(&self, span: RecordSpan) -> io::Result<Vec<u8>> {
        let mut file = File::open(segment_path(&self.config.dir, span.segment))?;
        file.seek(SeekFrom::Start(span.offset))?;
        let mut bytes = vec![0u8; span.len as usize];
        file.read_exact(&mut bytes)?;
        if span.len < FRAME_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "span too short"));
        }
        let body = &bytes[..bytes.len() - 4];
        let declared = read_u32(&bytes, bytes.len() - 4);
        if crc32(body) != declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record CRC mismatch on read-back",
            ));
        }
        let payload_len = read_u32(&bytes, 0) as usize;
        if payload_len + FRAME_BYTES as usize != bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record length mismatch on read-back",
            ));
        }
        Ok(bytes[4..4 + payload_len].to_vec())
    }

    /// Rewrites the given live payloads into fresh segments and deletes
    /// every old file (reclaiming stale-era segments and torn tails).
    /// Returns the new spans in payload order.
    ///
    /// # Errors
    ///
    /// I/O errors rewriting or deleting segment files.
    pub fn compact(&mut self, live: &[Vec<u8>]) -> io::Result<Vec<RecordSpan>> {
        self.active.writer.flush()?;
        let old_segments = std::mem::take(&mut self.segments);
        let header = segment_header(&self.config.version);
        let mut new_id = self.active.id + 1;
        let (mut writer, _) = open_for_append(&segment_path(&self.config.dir, new_id))?;
        writer.write_all(&header)?;
        let mut len = header.len() as u64;
        let mut new_segments = vec![new_id];
        let mut spans = Vec::with_capacity(live.len());
        for payload in live {
            if len >= self.config.segment_bytes {
                writer.flush()?;
                if self.config.fsync {
                    writer.get_ref().sync_data()?;
                }
                new_id += 1;
                let (w, _) = open_for_append(&segment_path(&self.config.dir, new_id))?;
                writer = w;
                writer.write_all(&header)?;
                len = header.len() as u64;
                new_segments.push(new_id);
            }
            let record = encode_record(payload);
            writer.write_all(&record)?;
            spans.push(RecordSpan {
                segment: new_id,
                offset: len,
                len: record.len() as u64,
            });
            len += record.len() as u64;
        }
        writer.flush()?;
        if self.config.fsync {
            writer.get_ref().sync_data()?;
        }
        for id in old_segments {
            let _ = fs::remove_file(segment_path(&self.config.dir, id));
        }
        self.segments = new_segments;
        self.active = ActiveSegment {
            id: new_id,
            writer,
            len,
        };
        Ok(spans)
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aqua-seglog-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Classic zlib test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_payloads_and_order() {
        let dir = tmp_dir("roundtrip");
        let cfg = LogConfig::at(&dir, "t/v1");
        {
            let (mut log, records, report) = SegmentLog::open(cfg.clone()).unwrap();
            assert!(records.is_empty());
            assert_eq!(report, RecoveryReport::default());
            log.append(b"one").unwrap();
            log.append(b"").unwrap(); // empty payloads are legal
            log.append(b"three").unwrap();
        }
        let (log, records, report) = SegmentLog::open(cfg).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
        let payloads: Vec<&[u8]> = records.iter().map(|r| &r.payload[..]).collect();
        assert_eq!(payloads, vec![&b"one"[..], &b""[..], &b"three"[..]]);
        // Read-back by span matches too.
        assert_eq!(log.read(records[2].span).unwrap(), b"three");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let cfg = LogConfig::at(&dir, "t/v1");
        let span = {
            let (mut log, _, _) = SegmentLog::open(cfg.clone()).unwrap();
            log.append(b"keep-me").unwrap();
            log.append(b"tear-me").unwrap()
        };
        let path = segment_path(&dir, span.segment);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(span.offset + span.len / 2).unwrap();
        drop(file);
        let (_log, records, report) = SegmentLog::open(cfg.clone()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"keep-me");
        assert_eq!(report.torn_records, 1);
        assert!(report.truncated_bytes > 0);
        // The truncation is physical: a third open sees a clean log.
        let (_, records, report) = SegmentLog::open(cfg).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.torn_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_compaction_preserve_live_records() {
        let dir = tmp_dir("compact");
        let mut cfg = LogConfig::at(&dir, "t/v1");
        cfg.segment_bytes = 64; // force rotation nearly every append
        let (mut log, _, _) = SegmentLog::open(cfg.clone()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..20u8)
            .map(|k| format!("payload-{k}").into_bytes())
            .collect();
        for p in &payloads {
            log.append(p).unwrap();
        }
        assert!(log.segment_count() > 3, "rotation must have happened");
        // Keep only the even payloads live.
        let live: Vec<Vec<u8>> = payloads.iter().step_by(2).cloned().collect();
        let spans = log.compact(&live).unwrap();
        assert_eq!(spans.len(), 10);
        for (span, payload) in spans.iter().zip(&live) {
            assert_eq!(&log.read(*span).unwrap(), payload);
        }
        // Appends keep working after compaction...
        log.append(b"after").unwrap();
        drop(log);
        // ...and a reopen sees the live set plus the new append.
        let (_, records, _) = SegmentLog::open(cfg).unwrap();
        assert_eq!(records.len(), 11);
        assert_eq!(records[10].payload, b"after");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_era_segments_are_skipped() {
        let dir = tmp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // A segment from "another era": valid-looking but wrong header.
        fs::write(
            dir.join("seg-000000.log"),
            b"\x10\x00\x00\x00aqlog1 old/v0!!\n",
        )
        .unwrap();
        let (log, records, report) = SegmentLog::open(LogConfig::at(&dir, "t/v2")).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.stale_segments, 1);
        // Compaction reclaims the stale file.
        let mut log = log;
        log.compact(&[]).unwrap();
        let ids = list_segment_ids(&dir).unwrap();
        assert_eq!(ids.len(), 1, "stale segment deleted, one fresh segment");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_byte_stops_the_scan_without_serving_bad_bytes() {
        let dir = tmp_dir("corrupt");
        let cfg = LogConfig::at(&dir, "t/v1");
        let (spans, payloads) = {
            let (mut log, _, _) = SegmentLog::open(cfg.clone()).unwrap();
            let payloads: Vec<Vec<u8>> = (0..8u8).map(|k| vec![k; 16 + k as usize]).collect();
            let spans: Vec<RecordSpan> = payloads.iter().map(|p| log.append(p).unwrap()).collect();
            (spans, payloads)
        };
        // Flip a byte in record 5's payload.
        let path = segment_path(&dir, spans[5].segment);
        let mut bytes = fs::read(&path).unwrap();
        bytes[(spans[5].offset + 6) as usize] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (_, records, report) = SegmentLog::open(cfg).unwrap();
        assert_eq!(records.len(), 5, "scan stops at the corrupt record");
        assert_eq!(report.torn_records, 1);
        for (r, p) in records.iter().zip(&payloads) {
            assert_eq!(&r.payload, p, "survivors are byte-identical");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
