// Compiled only with the `serde-tests` feature: the dependency it
// needs is not vendored, so the default offline build skips it.
#![cfg(feature = "serde-tests")]

//! Serde round-trips for AIS programs (requires the `serde` feature:
//! `cargo test -p aqua-ais --features serde`).

#![cfg(feature = "serde")]

use aqua_ais::Program;

#[test]
fn program_roundtrips_via_json() {
    let text = "demo{
  input s1, ip1
  move mixer1, s1, 3
  mix mixer1, 30
  incubate heater1, 37, 300
  separate.LC separator2, 2400
  sense.FL sensor2, R0
  dry-mov r0, temp
  output op1, s1
}";
    let p: Program = text.parse().unwrap();
    let json = serde_json::to_string_pretty(&p).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}
