// Compiled only with the `proptest-tests` feature: the dependency it
// needs is not vendored, so the default offline build skips it.
#![cfg(feature = "proptest-tests")]

//! Property test: every printable AIS program parses back identically.

use aqua_ais::{DryOp, DrySrc, Instr, Program, SenseKind, SepPort, SeparateKind, WetLoc};
use proptest::prelude::*;

fn wetloc() -> impl Strategy<Value = WetLoc> {
    prop_oneof![
        (1u32..64).prop_map(WetLoc::Reservoir),
        (1u32..4).prop_map(WetLoc::Mixer),
        (1u32..4).prop_map(WetLoc::Heater),
        (1u32..4).prop_map(WetLoc::Sensor),
        (1u32..16).prop_map(WetLoc::InputPort),
        (1u32..16).prop_map(WetLoc::OutputPort),
        (1u32..4, sep_port()).prop_map(|(n, p)| WetLoc::Separator(n, p)),
    ]
}

fn sep_port() -> impl Strategy<Value = SepPort> {
    prop_oneof![
        Just(SepPort::Main),
        Just(SepPort::Matrix),
        Just(SepPort::Pusher),
        Just(SepPort::Out1),
        Just(SepPort::Out2),
    ]
}

fn reg_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,10}(\\[[0-9]{1,2}\\]){0,2}"
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (wetloc(), 1u32..16).prop_map(|(dst, p)| Instr::Input {
            dst,
            port: WetLoc::InputPort(p)
        }),
        (1u32..16, wetloc()).prop_map(|(p, src)| Instr::Output {
            port: WetLoc::OutputPort(p),
            src
        }),
        (wetloc(), wetloc(), proptest::option::of(1u64..1000))
            .prop_map(|(dst, src, rel_vol)| Instr::Move { dst, src, rel_vol }),
        (wetloc(), wetloc(), 1u64..100_000).prop_map(|(dst, src, vol)| Instr::MoveAbs {
            dst,
            src,
            vol
        }),
        (1u32..4, 1u64..600).prop_map(|(m, seconds)| Instr::Mix {
            unit: WetLoc::Mixer(m),
            seconds
        }),
        (1u32..4, -20i64..200, 1u64..600).prop_map(|(h, temp_c, seconds)| Instr::Incubate {
            unit: WetLoc::Heater(h),
            temp_c,
            seconds
        }),
        (1u32..4, -20i64..200, 1u64..600).prop_map(|(h, temp_c, seconds)| {
            Instr::Concentrate {
                unit: WetLoc::Heater(h),
                temp_c,
                seconds,
            }
        }),
        (
            1u32..4,
            prop_oneof![
                Just(SeparateKind::Electrophoresis),
                Just(SeparateKind::Size),
                Just(SeparateKind::Affinity),
                Just(SeparateKind::LiquidChromatography)
            ],
            1u64..3600
        )
            .prop_map(|(s, kind, seconds)| Instr::Separate {
                unit: WetLoc::Separator(s, SepPort::Main),
                kind,
                seconds
            }),
        (
            1u32..4,
            prop_oneof![
                Just(SenseKind::OpticalDensity),
                Just(SenseKind::Fluorescence)
            ],
            reg_name()
        )
            .prop_map(|(s, kind, dst)| Instr::Sense {
                unit: WetLoc::Sensor(s),
                kind,
                dst: dst.as_str().into()
            }),
        (
            prop_oneof![
                Just(DryOp::Mov),
                Just(DryOp::Add),
                Just(DryOp::Sub),
                Just(DryOp::Mul)
            ],
            reg_name(),
            prop_oneof![
                (-1000i64..1000).prop_map(DrySrc::Imm),
                reg_name().prop_map(|r| DrySrc::Reg(r.as_str().into()))
            ]
        )
            .prop_map(|(op, dst, src)| Instr::Dry {
                op,
                dst: dst.as_str().into(),
                src
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(instrs in proptest::collection::vec(instr(), 0..40)) {
        let mut p = Program::new("fuzz");
        p.extend(instrs);
        let printed = p.to_string();
        let reparsed: Program = printed
            .parse()
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(p, reparsed);
    }
}
