//! Parser for textual AIS assembly (the printer's inverse).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::instr::{DryOp, DrySrc, Instr, SenseKind, SeparateKind};
use crate::loc::{DryReg, SepPort, WetLoc};
use crate::program::Program;

/// Error from parsing AIS assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAisError {
    line: usize,
    message: String,
}

impl ParseAisError {
    fn new(line: usize, message: impl Into<String>) -> ParseAisError {
        ParseAisError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseAisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AIS parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAisError {}

impl FromStr for Program {
    type Err = ParseAisError;

    /// Parses the `name{ ... }` block syntax produced by
    /// [`Program`]'s `Display` impl.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAisError`] with the offending line on malformed
    /// input.
    fn from_str(text: &str) -> Result<Program, ParseAisError> {
        let mut name: Option<String> = None;
        let mut prog: Option<Program> = None;
        let mut closed = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            match (&mut prog, line) {
                (None, l) => {
                    let Some(head) = l.strip_suffix('{') else {
                        return Err(ParseAisError::new(lineno, "expected `name{`"));
                    };
                    let head = head.trim();
                    if head.is_empty() || !head.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        return Err(ParseAisError::new(lineno, "invalid program name"));
                    }
                    name = Some(head.to_owned());
                    prog = Some(Program::new(name.clone().unwrap()));
                }
                (Some(_), "}") => {
                    closed = true;
                }
                (Some(p), l) => {
                    if closed {
                        return Err(ParseAisError::new(lineno, "text after closing `}`"));
                    }
                    p.push(parse_instr(l, lineno)?);
                }
            }
        }
        let _ = name;
        match (prog, closed) {
            (Some(p), true) => Ok(p),
            (Some(_), false) => Err(ParseAisError::new(text.lines().count(), "missing `}`")),
            (None, _) => Err(ParseAisError::new(1, "empty program")),
        }
    }
}

fn parse_instr(line: &str, lineno: usize) -> Result<Instr, ParseAisError> {
    if let Some(comment) = line.strip_prefix(';') {
        return Ok(Instr::Comment(comment.to_owned()));
    }
    // Inline comments: "input s1, ip1 ;Glucose" — keep only the code part.
    let code = line.split(';').next().unwrap_or("").trim();
    let (mnemonic, rest) = match code.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (code, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let err = |msg: &str| ParseAisError::new(lineno, format!("{msg} in `{line}`"));

    let wet = |s: &str| parse_wetloc(s).ok_or_else(|| err("invalid wet location"));
    let num = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| err("invalid unsigned integer"))
    };
    let inum = |s: &str| s.parse::<i64>().map_err(|_| err("invalid integer"));

    match mnemonic {
        "input" => match ops.as_slice() {
            [dst, port] => Ok(Instr::Input {
                dst: wet(dst)?,
                port: wet(port)?,
            }),
            _ => Err(err("input takes 2 operands")),
        },
        "output" => match ops.as_slice() {
            [port, src] => Ok(Instr::Output {
                port: wet(port)?,
                src: wet(src)?,
            }),
            _ => Err(err("output takes 2 operands")),
        },
        "move" => match ops.as_slice() {
            [dst, src] => Ok(Instr::Move {
                dst: wet(dst)?,
                src: wet(src)?,
                rel_vol: None,
            }),
            [dst, src, rel] => Ok(Instr::Move {
                dst: wet(dst)?,
                src: wet(src)?,
                rel_vol: Some(num(rel)?),
            }),
            _ => Err(err("move takes 2 or 3 operands")),
        },
        "move-abs" => match ops.as_slice() {
            [dst, src, vol] => Ok(Instr::MoveAbs {
                dst: wet(dst)?,
                src: wet(src)?,
                vol: num(vol)?,
            }),
            _ => Err(err("move-abs takes 3 operands")),
        },
        "mix" => match ops.as_slice() {
            [unit, secs] => Ok(Instr::Mix {
                unit: wet(unit)?,
                seconds: num(secs)?,
            }),
            _ => Err(err("mix takes 2 operands")),
        },
        "incubate" | "concentrate" => match ops.as_slice() {
            [unit, temp, secs] => {
                let unit = wet(unit)?;
                let temp_c = inum(temp)?;
                let seconds = num(secs)?;
                Ok(if mnemonic == "incubate" {
                    Instr::Incubate {
                        unit,
                        temp_c,
                        seconds,
                    }
                } else {
                    Instr::Concentrate {
                        unit,
                        temp_c,
                        seconds,
                    }
                })
            }
            _ => Err(err("expected unit, temp, seconds")),
        },
        m if m.starts_with("separate.") => {
            let kind = match &m["separate.".len()..] {
                "CE" => SeparateKind::Electrophoresis,
                "SIZE" => SeparateKind::Size,
                "AF" => SeparateKind::Affinity,
                "LC" => SeparateKind::LiquidChromatography,
                other => return Err(err(&format!("unknown separate kind `{other}`"))),
            };
            match ops.as_slice() {
                [unit, secs] => Ok(Instr::Separate {
                    unit: wet(unit)?,
                    kind,
                    seconds: num(secs)?,
                }),
                _ => Err(err("separate takes 2 operands")),
            }
        }
        m if m.starts_with("sense.") => {
            let kind = match &m["sense.".len()..] {
                "OD" => SenseKind::OpticalDensity,
                "FL" => SenseKind::Fluorescence,
                other => return Err(err(&format!("unknown sense kind `{other}`"))),
            };
            match ops.as_slice() {
                [unit, dst] => Ok(Instr::Sense {
                    unit: wet(unit)?,
                    kind,
                    dst: DryReg((*dst).to_owned()),
                }),
                _ => Err(err("sense takes 2 operands")),
            }
        }
        m if m.starts_with("dry-") => {
            let op = match &m["dry-".len()..] {
                "mov" => DryOp::Mov,
                "add" => DryOp::Add,
                "sub" => DryOp::Sub,
                "mul" => DryOp::Mul,
                other => return Err(err(&format!("unknown dry op `{other}`"))),
            };
            match ops.as_slice() {
                [dst, src] => {
                    let src = match src.parse::<i64>() {
                        Ok(i) => DrySrc::Imm(i),
                        Err(_) => DrySrc::Reg(DryReg((*src).to_owned())),
                    };
                    Ok(Instr::Dry {
                        op,
                        dst: DryReg((*dst).to_owned()),
                        src,
                    })
                }
                _ => Err(err("dry ops take 2 operands")),
            }
        }
        other => Err(err(&format!("unknown mnemonic `{other}`"))),
    }
}

fn parse_wetloc(s: &str) -> Option<WetLoc> {
    let (base, port) = match s.split_once('.') {
        Some((b, p)) => (b, Some(p)),
        None => (s, None),
    };
    let index_after = |prefix: &str| -> Option<u32> {
        base.strip_prefix(prefix)
            .and_then(|digits| digits.parse().ok())
    };
    let loc = if let Some(n) = index_after("separator") {
        let sep_port = match port {
            None => SepPort::Main,
            Some("matrix") => SepPort::Matrix,
            Some("pusher") => SepPort::Pusher,
            Some("out1") => SepPort::Out1,
            Some("out2") => SepPort::Out2,
            Some(_) => return None,
        };
        WetLoc::Separator(n, sep_port)
    } else {
        if port.is_some() {
            return None; // only separators have sub-ports
        }
        if let Some(n) = index_after("mixer") {
            WetLoc::Mixer(n)
        } else if let Some(n) = index_after("heater") {
            WetLoc::Heater(n)
        } else if let Some(n) = index_after("sensor") {
            WetLoc::Sensor(n)
        } else if let Some(n) = index_after("ip") {
            WetLoc::InputPort(n)
        } else if let Some(n) = index_after("op") {
            WetLoc::OutputPort(n)
        } else if let Some(n) = index_after("s") {
            WetLoc::Reservoir(n)
        } else {
            return None;
        }
    };
    Some(loc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_glucose_fragment() {
        let text = "glucose{
  input s1, ip1 ;Glucose
  input s2, ip2 ;Reagent
  move mixer1, s1, 1
  move mixer1, s2, 1
  mix mixer1, 10
  move sensor2, mixer1
  sense.OD sensor2, Result1
}";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.name(), "glucose");
        assert_eq!(p.instrs().len(), 7);
        assert_eq!(
            p.instrs()[2],
            Instr::Move {
                dst: WetLoc::Mixer(1),
                src: WetLoc::Reservoir(1),
                rel_vol: Some(1)
            }
        );
    }

    #[test]
    fn parses_separator_ports_and_lc() {
        let text = "g{
  move separator2.matrix, s7
  move separator2.pusher, s8
  separate.LC separator2, 2400
  move mixer1, separator2.out1, 1
}";
        let p: Program = text.parse().unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Move {
                dst: WetLoc::Separator(2, SepPort::Matrix),
                src: WetLoc::Reservoir(7),
                rel_vol: None
            }
        );
        assert!(matches!(
            p.instrs()[2],
            Instr::Separate {
                kind: SeparateKind::LiquidChromatography,
                seconds: 2400,
                ..
            }
        ));
    }

    #[test]
    fn parses_dry_ops() {
        let text = "e{
  dry-mov r0, temp
  dry-mul r0, 10
  dry-sub r0, 1
}";
        let p: Program = text.parse().unwrap();
        assert_eq!(
            p.instrs()[1],
            Instr::Dry {
                op: DryOp::Mul,
                dst: "r0".into(),
                src: DrySrc::Imm(10)
            }
        );
        assert_eq!(
            p.instrs()[0],
            Instr::Dry {
                op: DryOp::Mov,
                dst: "r0".into(),
                src: DrySrc::Reg("temp".into())
            }
        );
    }

    #[test]
    fn print_parse_roundtrip() {
        let text = "demo{
  input s1, ip1
  move mixer1, s1, 3
  mix mixer1, 30
  incubate heater1, 37, 300
  move sensor2, heater1
  sense.FL sensor2, R0
  output op1, s1
  move-abs s2, s1, 5000
  concentrate heater1, 90, 60
}";
        let p: Program = text.parse().unwrap();
        let printed = p.to_string();
        let reparsed: Program = printed.parse().unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "demo{
  frobnicate s1
}";
        let e = text.parse::<Program>().unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn rejects_malformed_blocks() {
        assert!("".parse::<Program>().is_err());
        assert!("x{".parse::<Program>().is_err());
        assert!("x{\n}\nmore".parse::<Program>().is_err());
        assert!("mix mixer1, 5".parse::<Program>().is_err());
    }

    #[test]
    fn rejects_bad_operands() {
        assert!("x{\n  mix notaunit, 5\n}".parse::<Program>().is_err());
        assert!("x{\n  mix mixer1\n}".parse::<Program>().is_err());
        assert!("x{\n  move s1.out1, s2\n}".parse::<Program>().is_err());
        assert!("x{\n  separate.XX separator1, 5\n}"
            .parse::<Program>()
            .is_err());
    }
}
