//! Operand spaces: wet (fluidic) locations and dry (controller) registers.

use std::fmt;

/// Sub-port of a separator functional unit.
///
/// `separate` instructions address the separator body plus dedicated
/// ports for the affinity matrix, the pusher buffer, and the separated
/// output streams (effluent and waste), following the paper's
/// `separator2.matrix` / `separator2.pusher` / `separator2.out1` syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SepPort {
    /// The separation chamber itself (load target).
    Main,
    /// The pre-loaded affinity/chromatography matrix.
    Matrix,
    /// The pusher/carrier buffer inlet.
    Pusher,
    /// First output stream (effluent).
    Out1,
    /// Second output stream (waste).
    Out2,
}

impl SepPort {
    fn suffix(self) -> &'static str {
        match self {
            SepPort::Main => "",
            SepPort::Matrix => ".matrix",
            SepPort::Pusher => ".pusher",
            SepPort::Out1 => ".out1",
            SepPort::Out2 => ".out2",
        }
    }
}

/// A wet-datapath location: a reservoir, functional unit, or port.
///
/// The operand id space deliberately includes functional units so one
/// instruction can feed another without an intervening store
/// (storage-less operands).
///
/// # Examples
///
/// ```
/// use aqua_ais::{SepPort, WetLoc};
///
/// assert_eq!(WetLoc::Reservoir(3).to_string(), "s3");
/// assert_eq!(
///     WetLoc::Separator(2, SepPort::Out1).to_string(),
///     "separator2.out1"
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WetLoc {
    /// On-chip storage reservoir `sN` (analogous to a register).
    Reservoir(u32),
    /// Mixer functional unit `mixerN`.
    Mixer(u32),
    /// Heater functional unit `heaterN`.
    Heater(u32),
    /// Separator functional unit `separatorN` with an optional sub-port.
    Separator(u32, SepPort),
    /// Sensor functional unit `sensorN`.
    Sensor(u32),
    /// Chip input port `ipN`.
    InputPort(u32),
    /// Chip output port `opN`.
    OutputPort(u32),
}

/// The allocatable resource class of a wet location — the scheduler's
/// analogue of a register class. Every location of one class is
/// interchangeable hardware (any mixer can run any mix), so a schedule
/// may *rename* a program's virtual unit indices onto whichever
/// physical slot of the class is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ResourceClass {
    /// Storage reservoirs (`sN`).
    Reservoir,
    /// Mixers.
    Mixer,
    /// Heaters.
    Heater,
    /// Separators (all sub-ports of `separatorN` move together).
    Separator,
    /// Sensors.
    Sensor,
    /// Chip input ports.
    InputPort,
    /// Chip output ports.
    OutputPort,
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ResourceClass::Reservoir => "reservoir",
            ResourceClass::Mixer => "mixer",
            ResourceClass::Heater => "heater",
            ResourceClass::Separator => "separator",
            ResourceClass::Sensor => "sensor",
            ResourceClass::InputPort => "input-port",
            ResourceClass::OutputPort => "output-port",
        };
        write!(f, "{name}")
    }
}

impl WetLoc {
    /// Whether this location is a functional unit (not storage or port).
    pub fn is_functional_unit(self) -> bool {
        matches!(
            self,
            WetLoc::Mixer(_) | WetLoc::Heater(_) | WetLoc::Separator(..) | WetLoc::Sensor(_)
        )
    }

    /// The resource class this location allocates from.
    pub fn class(self) -> ResourceClass {
        match self {
            WetLoc::Reservoir(_) => ResourceClass::Reservoir,
            WetLoc::Mixer(_) => ResourceClass::Mixer,
            WetLoc::Heater(_) => ResourceClass::Heater,
            WetLoc::Separator(..) => ResourceClass::Separator,
            WetLoc::Sensor(_) => ResourceClass::Sensor,
            WetLoc::InputPort(_) => ResourceClass::InputPort,
            WetLoc::OutputPort(_) => ResourceClass::OutputPort,
        }
    }

    /// The unit index within the class (`mixer2` → 2). Separator
    /// sub-ports share their unit's index.
    pub fn unit_index(self) -> u32 {
        match self {
            WetLoc::Reservoir(n)
            | WetLoc::Mixer(n)
            | WetLoc::Heater(n)
            | WetLoc::Separator(n, _)
            | WetLoc::Sensor(n)
            | WetLoc::InputPort(n)
            | WetLoc::OutputPort(n) => n,
        }
    }

    /// This location re-indexed onto another unit of the same class
    /// (sub-ports are preserved) — the renaming primitive.
    pub fn with_unit_index(self, n: u32) -> WetLoc {
        match self {
            WetLoc::Reservoir(_) => WetLoc::Reservoir(n),
            WetLoc::Mixer(_) => WetLoc::Mixer(n),
            WetLoc::Heater(_) => WetLoc::Heater(n),
            WetLoc::Separator(_, port) => WetLoc::Separator(n, port),
            WetLoc::Sensor(_) => WetLoc::Sensor(n),
            WetLoc::InputPort(_) => WetLoc::InputPort(n),
            WetLoc::OutputPort(_) => WetLoc::OutputPort(n),
        }
    }
}

impl fmt::Display for WetLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WetLoc::Reservoir(n) => write!(f, "s{n}"),
            WetLoc::Mixer(n) => write!(f, "mixer{n}"),
            WetLoc::Heater(n) => write!(f, "heater{n}"),
            WetLoc::Separator(n, port) => write!(f, "separator{n}{}", port.suffix()),
            WetLoc::Sensor(n) => write!(f, "sensor{n}"),
            WetLoc::InputPort(n) => write!(f, "ip{n}"),
            WetLoc::OutputPort(n) => write!(f, "op{n}"),
        }
    }
}

/// A named dry (electronic controller) register.
///
/// The controller's register file is symbolic: the compiler emits
/// registers like `r0`, `temp`, or `inh_dil` and the simulator binds
/// them on first write.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DryReg(pub String);

impl fmt::Display for DryReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for DryReg {
    fn from(s: &str) -> DryReg {
        DryReg(s.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(WetLoc::Reservoir(1).to_string(), "s1");
        assert_eq!(WetLoc::Mixer(1).to_string(), "mixer1");
        assert_eq!(WetLoc::Heater(1).to_string(), "heater1");
        assert_eq!(WetLoc::Sensor(2).to_string(), "sensor2");
        assert_eq!(WetLoc::InputPort(3).to_string(), "ip3");
        assert_eq!(WetLoc::OutputPort(1).to_string(), "op1");
        assert_eq!(
            WetLoc::Separator(2, SepPort::Matrix).to_string(),
            "separator2.matrix"
        );
        assert_eq!(
            WetLoc::Separator(1, SepPort::Main).to_string(),
            "separator1"
        );
    }

    #[test]
    fn functional_unit_classification() {
        assert!(WetLoc::Mixer(1).is_functional_unit());
        assert!(WetLoc::Separator(1, SepPort::Main).is_functional_unit());
        assert!(!WetLoc::Reservoir(1).is_functional_unit());
        assert!(!WetLoc::InputPort(1).is_functional_unit());
    }

    #[test]
    fn resource_class_and_reindexing() {
        assert_eq!(WetLoc::Mixer(1).class(), ResourceClass::Mixer);
        assert_eq!(
            WetLoc::Separator(2, SepPort::Out1).class(),
            ResourceClass::Separator
        );
        assert_eq!(WetLoc::Separator(2, SepPort::Out1).unit_index(), 2);
        // Renaming preserves the class and any sub-port.
        assert_eq!(
            WetLoc::Separator(2, SepPort::Out1).with_unit_index(5),
            WetLoc::Separator(5, SepPort::Out1)
        );
        assert_eq!(
            WetLoc::Reservoir(3).with_unit_index(7),
            WetLoc::Reservoir(7)
        );
    }
}
