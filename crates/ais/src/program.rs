//! Whole AIS programs.

use std::fmt;

use crate::instr::Instr;

/// A named sequence of AIS instructions, printed in the paper's
/// `name{ ... }` block syntax.
///
/// # Examples
///
/// ```
/// use aqua_ais::{Instr, Program, WetLoc};
///
/// let mut p = Program::new("demo");
/// p.push(Instr::Input {
///     dst: WetLoc::Reservoir(1),
///     port: WetLoc::InputPort(1),
/// });
/// assert_eq!(p.to_string(), "demo{\n  input s1, ip1\n}\n");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            instrs: Vec::new(),
        }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    /// Number of instructions, excluding comments.
    pub fn len_executable(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| !matches!(i, Instr::Comment(_)))
            .count()
    }

    /// Number of wet (fluidic datapath) instructions.
    pub fn len_wet(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_wet()).count()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }
}

impl Extend<Instr> for Program {
    fn extend<I: IntoIterator<Item = Instr>>(&mut self, iter: I) {
        self.instrs.extend(iter);
    }
}

impl IntoIterator for Program {
    type Item = Instr;
    type IntoIter = std::vec::IntoIter<Instr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}{{", self.name)?;
        for i in &self.instrs {
            writeln!(f, "  {i}")?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::loc::WetLoc;

    #[test]
    fn counts_exclude_comments_and_dry() {
        let mut p = Program::new("t");
        p.push(Instr::Comment(" header".into()));
        p.push(Instr::Mix {
            unit: WetLoc::Mixer(1),
            seconds: 5,
        });
        p.push(Instr::Dry {
            op: crate::DryOp::Mov,
            dst: "r0".into(),
            src: crate::instr::DrySrc::Imm(1),
        });
        assert_eq!(p.len_executable(), 2);
        assert_eq!(p.len_wet(), 1);
    }

    #[test]
    fn extend_and_iterate() {
        let mut p = Program::new("t");
        p.extend([
            Instr::Mix {
                unit: WetLoc::Mixer(1),
                seconds: 1,
            },
            Instr::Mix {
                unit: WetLoc::Mixer(1),
                seconds: 2,
            },
        ]);
        assert_eq!(p.iter().count(), 2);
        assert_eq!((&p).into_iter().count(), 2);
        assert_eq!(p.into_iter().count(), 2);
    }
}
