//! The AquaCore Instruction Set (AIS).
//!
//! AIS is the assembly-level target of the assay compiler, mirroring the
//! instruction set of the AquaCore programmable lab-on-a-chip (Amin et
//! al., ISCA 2007) as used by the PLDI 2008 volume-management paper:
//!
//! * **wet** instructions drive the fluidic datapath (`move`, `mix`,
//!   `incubate`, `separate.*`, `sense.*`, `input`, `output`,
//!   `concentrate`);
//! * **dry** instructions run on the electronic controller (`dry-mov`,
//!   `dry-add`, `dry-sub`, `dry-mul`) — orders of magnitude faster than
//!   the wet path, which is why run-time volume computation is cheap;
//! * operands are *storage-less*: a `move` may target a functional unit
//!   directly, so intermediate fluids need not round-trip through a
//!   reservoir;
//! * `move` takes an optional **relative volume** — the hook where
//!   automatic volume management plugs in: relative volumes are
//!   translated to absolute metered volumes by the compiler/runtime.
//!
//! The crate provides the typed instruction representation
//! ([`Instr`]), operand spaces ([`WetLoc`], [`DryReg`]), whole programs
//! ([`Program`]), a printer matching the paper's syntax, and a parser
//! for round-tripping.
//!
//! # Examples
//!
//! ```
//! use aqua_ais::{Instr, Program};
//!
//! let prog: Program = "\
//! glucose{
//!   input s1, ip1
//!   move mixer1, s1, 1
//!   mix mixer1, 10
//! }"
//! .parse()?;
//! assert_eq!(prog.name(), "glucose");
//! assert_eq!(prog.instrs().len(), 3);
//! assert!(matches!(prog.instrs()[2], Instr::Mix { .. }));
//! # Ok::<(), aqua_ais::ParseAisError>(())
//! ```

#![warn(missing_docs)]

mod instr;
mod loc;
mod parse;
mod program;

pub use instr::{DryOp, DrySrc, Instr, SenseKind, SeparateKind};
pub use loc::{DryReg, ResourceClass, SepPort, WetLoc};
pub use parse::ParseAisError;
pub use program::Program;

/// Absolute fluid volume in picoliters.
///
/// The paper's running hardware parameters are a maximum capacity of
/// 100 nl (`100_000` pl) and a least count of 100 pl; picoliter integers
/// represent every volume in the evaluation exactly.
pub type Picoliters = u64;
